"""Wall-clock evidence for the adaptive sweep executor (BENCH_adaptive.json).

Two measurements:

``interference_run``
    One interference-heavy simulation (fig4 cell with a *live* co-runner
    chain time-slicing core 0, plus the DVFS square wave) — the workload
    dominated by :class:`~repro.machine.speed.SpeedModel` re-timing.

``replicated_sweep``
    A replicated fig5-style sweep (matmul P=2 under the modelled
    co-runner, throughput metric, many seeds per scheduler cell) executed
    two ways at the same target CI width: fixed replication at
    ``max_seeds`` per cell versus variance-aware adaptive replication
    that stops each cell once its 95% CI half-width is below the target.

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive.py [--out out.json]

Run it on the commit before and after the change and merge the two JSON
payloads into ``BENCH_adaptive.json`` (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import time


def time_interference_run(repeats: int = 3) -> dict:
    """Best-of-N wall time of one interference-heavy fig4/fig7-style run.

    A live co-runner chain time-slices core 0 (shared-core re-timing on
    every chain task), a windowed modelled co-runner toggles the A57
    cluster (batched cpu-share + bandwidth transitions), and the §5.2
    DVFS square wave toggles the Denver cluster — every re-timing path
    of the speed model is exercised at once.
    """
    from repro.experiments.common import run_one
    from repro.graph.generators import layered_synthetic_dag
    from repro.interference.composite import CompositeScenario
    from repro.interference.corunner import CorunnerInterference
    from repro.interference.dvfs_events import DvfsInterference
    from repro.kernels.matmul import MatMulKernel
    from repro.machine.dvfs import PeriodicSquareWave
    from repro.machine.presets import jetson_tx2
    from repro.interference.live import LiveCorunner

    def scenario():
        return CompositeScenario([
            LiveCorunner(core=0, kernel=MatMulKernel()),
            CorunnerInterference(
                cores=(2, 3, 4, 5), cpu_share=0.5, memory_demand=2.0,
                start=0.05, end=0.25,
            ),
            DvfsInterference(
                cores=(0, 1),
                wave=PeriodicSquareWave(half_period=0.02),
            ),
        ])

    best = float("inf")
    result = None
    for _ in range(repeats):
        graph = layered_synthetic_dag(MatMulKernel(), 4, 1500)
        start = time.perf_counter()
        result = run_one(graph, jetson_tx2(), "dam-c", scenario=scenario())
        best = min(best, time.perf_counter() - start)
    return {"seconds": best, "throughput": result.throughput}


def _fig5_style_specs(seeds: int) -> list:
    """Matmul P=2 under the tx2 co-runner, replicated over ``seeds``."""
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.fig4_corunner import fig4_spec

    settings = ExperimentSettings(scale=0.02)
    out = []
    for sched in ("rws", "fa", "fam-c", "da", "dam-c"):
        base = fig4_spec(settings, "matmul", 2, sched)
        out.append(base)
    return out


def time_replicated_sweep(ci: float = 0.02, min_seeds: int = 3,
                          max_seeds: int = 12, jobs: int = 1) -> dict:
    """Fixed ``max_seeds`` replication vs adaptive at target ``ci``."""
    from repro.sweep import AdaptivePolicy, SweepRunner
    from repro.sweep.adaptive import replicate_spec

    cells = _fig5_style_specs(max_seeds)

    fixed_specs = [
        replicate_spec(spec, rep) for spec in cells for rep in range(max_seeds)
    ]
    runner = SweepRunner(jobs=jobs, use_cache=False, progress=False)
    start = time.perf_counter()
    runner.run(fixed_specs)
    fixed_elapsed = time.perf_counter() - start

    policy = AdaptivePolicy(ci=ci, min_seeds=min_seeds, max_seeds=max_seeds)
    runner = SweepRunner(jobs=jobs, use_cache=False, progress=False)
    start = time.perf_counter()
    runner.run_adaptive(cells, policy)
    adaptive_elapsed = time.perf_counter() - start
    stats = runner.last_stats
    return {
        "cells": len(cells),
        "ci": ci,
        "min_seeds": min_seeds,
        "max_seeds": max_seeds,
        "fixed_runs": len(fixed_specs),
        "fixed_seconds": fixed_elapsed,
        "adaptive_runs": stats.executed,
        "adaptive_seconds": adaptive_elapsed,
        "speedup": fixed_elapsed / adaptive_elapsed,
        "seeds_saved": stats.seeds_saved,
    }


def main(argv=None) -> int:
    """Run both measurements and print (or write) the JSON payload."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write JSON here")
    parser.add_argument("--skip-adaptive", action="store_true",
                        help="only the interference run (for 'before' "
                        "commits that predate the adaptive executor)")
    args = parser.parse_args(argv)

    payload = {"interference_run": time_interference_run()}
    if not args.skip_adaptive:
        payload["replicated_sweep"] = time_replicated_sweep()
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
