"""Per-cell dispatch overhead of the sweep fast lane.

Runs one overhead-dominated sweep — many tiny ``single`` cells differing
only in their seed — through each dispatch path (local process pool,
inproc cluster, 2-worker TCP cluster) with the dispatch fast lane on and
off (``REPRO_DISPATCH_FAST``), and reports wall clock, per-cell
overhead, and the fast/legacy throughput ratio per path.

Metrics are asserted **bit-identical** between the two lanes before any
timing is trusted: the fast lane is transport and scheduling only, it
must never change a result.

Usage::

    PYTHONPATH=src python benchmarks/bench_dispatch.py \
        --cells 40 --out BENCH_dispatch.json

``--modes pool,tcp`` restricts the paths (CI smoke uses a tiny
``--cells`` and all three).  The JSON lands at ``--out`` and is uploaded
as the ``dispatch-bench-smoke`` workflow artifact; the committed
``BENCH_dispatch.json`` is the evidence snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.sweep.engine import SweepRunner
from repro.sweep.spec import RunSpec

#: Workers per path — the acceptance scenario is a 2-worker TCP cluster.
JOBS = 2


def tiny_spec(seed: int, total: int) -> RunSpec:
    """One tiny cell: a short copy-kernel layered DAG, seed-varied.

    Replicates of one cell differ only in ``seed``, so every cell after
    the first delta-encodes to a few dozen bytes.
    """
    return RunSpec(
        kind="single",
        params={
            "workload": {
                "name": "layered",
                "kernel": "copy",
                "parallelism": 2,
                "total": total,
            },
            "machine": "jetson_tx2",
            "scheduler": "rws",
        },
        seed=seed,
        metrics=("throughput", "tasks_completed"),
    )


def _make_runner(mode: str, label: str) -> Tuple[SweepRunner, List[Any]]:
    """Build a runner (and, for TCP, its external workers) for ``mode``."""
    workers: List[Any] = []
    if mode == "pool":
        runner = SweepRunner(
            jobs=JOBS, use_cache=False, progress=False, label=label
        )
    elif mode == "inproc":
        runner = SweepRunner(
            jobs=JOBS, use_cache=False, progress=False, label=label,
            cluster="inproc",
        )
    elif mode == "tcp":
        from repro.cluster.worker import start_worker_thread

        runner = SweepRunner(
            jobs=JOBS, use_cache=False, progress=False, label=label,
            cluster="tcp://127.0.0.1:0",
        )
        coord = runner._ensure_coordinator()
        workers = [
            start_worker_thread(
                coord.address,
                name=f"bench-{i}",
                capacity=1,
                isolate=False,
                reconnect_timeout=10.0,
            )
            for i in range(JOBS)
        ]
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return runner, workers


def run_once(
    mode: str, fast: bool, specs: List[RunSpec]
) -> Tuple[List[Dict[str, Any]], float]:
    """One sweep through ``mode`` with the fast lane forced on/off."""
    os.environ["REPRO_DISPATCH_FAST"] = "1" if fast else "0"
    lane = "fast" if fast else "legacy"
    runner, workers = _make_runner(mode, label=f"dispatch-{mode}-{lane}")
    try:
        start = time.perf_counter()
        rows = runner.run(specs)
        wall = time.perf_counter() - start
    finally:
        runner.close()
        for worker in workers:
            worker.stop()
    return rows, wall


def bench_mode(
    mode: str,
    specs: List[RunSpec],
    reference: Optional[List[Dict[str, Any]]],
    exec_seconds_per_cell: float,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    n = len(specs)
    # Identity first (order swapped would hide a warmup asymmetry):
    # the lanes must agree with each other and with the serial run.
    rows_legacy, wall_legacy = run_once(mode, fast=False, specs=specs)
    rows_fast, wall_fast = run_once(mode, fast=True, specs=specs)
    if rows_fast != rows_legacy:
        raise SystemExit(
            f"FAIL: {mode}: fast-lane metrics differ from legacy"
        )
    if reference is not None and rows_fast != reference:
        raise SystemExit(
            f"FAIL: {mode}: metrics differ from the serial reference"
        )
    overhead_fast = max(0.0, wall_fast / n - exec_seconds_per_cell / JOBS)
    overhead_legacy = max(
        0.0, wall_legacy / n - exec_seconds_per_cell / JOBS
    )
    result = {
        "mode": mode,
        "cells": n,
        "workers": JOBS,
        "bit_identical": True,
        "wall_fast_s": wall_fast,
        "wall_legacy_s": wall_legacy,
        "throughput_fast_cells_per_s": n / wall_fast,
        "throughput_legacy_cells_per_s": n / wall_legacy,
        "speedup": wall_legacy / wall_fast,
        "per_cell_overhead_fast_ms": 1e3 * overhead_fast,
        "per_cell_overhead_legacy_ms": 1e3 * overhead_legacy,
    }
    return result, rows_fast


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=40,
                        help="tiny cells per sweep (default 40)")
    parser.add_argument("--total", type=int, default=16,
                        help="tasks per tiny cell's DAG (default 16)")
    parser.add_argument("--modes", default="pool,inproc,tcp",
                        help="comma-separated dispatch paths to measure")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the comparison JSON here")
    args = parser.parse_args(argv)

    specs = [tiny_spec(seed, args.total) for seed in range((args.cells))]
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]

    # Serial reference: the ground truth for bit-identity, and the pure
    # execution time that the overhead estimate subtracts out.
    serial = SweepRunner(
        jobs=1, use_cache=False, progress=False, label="dispatch-serial"
    )
    start = time.perf_counter()
    reference = serial.run(specs)
    exec_per_cell = (time.perf_counter() - start) / len(specs)

    results = []
    for mode in modes:
        result, _rows = bench_mode(mode, specs, reference, exec_per_cell)
        results.append(result)
        print(
            f"{mode:7s} {result['cells']} cells x {JOBS} workers: "
            f"legacy {result['wall_legacy_s']:.2f}s -> "
            f"fast {result['wall_fast_s']:.2f}s "
            f"({result['speedup']:.2f}x), per-cell overhead "
            f"{result['per_cell_overhead_legacy_ms']:.1f}ms -> "
            f"{result['per_cell_overhead_fast_ms']:.1f}ms, bit-identical"
        )

    out = {
        "benchmark": "dispatch",
        "cells": args.cells,
        "tasks_per_cell": args.total,
        "workers": JOBS,
        "exec_seconds_per_cell_serial": exec_per_cell,
        "bit_identical": all(r["bit_identical"] for r in results),
        "modes": results,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(out, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
