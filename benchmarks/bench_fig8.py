"""Fig. 8 — PTT weight ratio x tile size sensitivity."""

from benchmarks.conftest import run_once
from repro.experiments.fig8_sensitivity import run_fig8


def test_fig8(benchmark, settings):
    result = run_once(benchmark, run_fig8, settings)
    # Paper shape: the fold weight only matters for the smallest tile
    # (short tasks -> noisy observations); larger tiles are insensitive.
    assert result.spread(32) > 0.05
    assert result.spread(96) < 0.05
    assert result.spread(32) > result.spread(96)
    # The conservative 1/5 fold is (near-)best at tile 32 (the paper's
    # adopted setting).
    best = result.best_weight(32)
    assert result.throughput[32][1] >= 0.95 * result.throughput[32][best]
    benchmark.extra_info["spread"] = {
        t: round(result.spread(t), 3) for t in result.throughput
    }
    print()
    print(result.report())
