"""Fig. 7 — DVFS interference sweep (plus §5.2 headline ratios)."""

from benchmarks.conftest import run_once
from repro.experiments.fig7_dvfs import run_fig7


def test_fig7_copy(benchmark, settings):
    result = run_once(benchmark, run_fig7, settings, kernels=("copy",))
    data = result.throughput["copy"]
    ratios = result.headline_ratios("copy")
    # Paper §5.2 shape: dynamic schedulers beat RWS; DAM-P best at the
    # lowest parallelism (it spends cores to speed the critical path).
    assert ratios["dam-c/rws"] > 1.0
    assert data["dam-p"][2] >= data["dam-c"][2]
    benchmark.extra_info["headline"] = {k: round(v, 2) for k, v in ratios.items()}
    benchmark.extra_info["throughput"] = {
        s: {p: round(v, 1) for p, v in by.items()} for s, by in data.items()
    }
    print()
    print(result.report())


def test_fig7_matmul(benchmark, settings):
    result = run_once(benchmark, run_fig7, settings, kernels=("matmul",))
    data = result.throughput["matmul"]
    assert data["dam-c"][2] > data["rws"][2]
    benchmark.extra_info["throughput"] = {
        s: {p: round(v, 1) for p, v in by.items()} for s, by in data.items()
    }


def test_fig7_stencil(benchmark, settings):
    result = run_once(benchmark, run_fig7, settings, kernels=("stencil",))
    data = result.throughput["stencil"]
    assert data["dam-c"][2] > data["rws"][2]
    benchmark.extra_info["throughput"] = {
        s: {p: round(v, 1) for p, v in by.items()} for s, by in data.items()
    }
