"""Fig. 4 — co-runner interference sweep (plus §5.1 headline ratios)."""

from benchmarks.conftest import run_once
from repro.experiments.fig4_corunner import run_fig4


def test_fig4_matmul(benchmark, settings):
    result = run_once(benchmark, run_fig4, settings, kernels=("matmul",))
    data = result.throughput["matmul"]
    ratios = result.headline_ratios("matmul")
    # Paper §5.1 shape: dynamic schedulers dominate; RWS worst at P=2.
    assert data["rws"][2] < data["fa"][2] < data["dam-c"][2]
    assert ratios["dam-c/rws"] > 1.5
    benchmark.extra_info["throughput"] = {
        s: {p: round(v, 1) for p, v in by.items()} for s, by in data.items()
    }
    benchmark.extra_info["headline"] = {k: round(v, 2) for k, v in ratios.items()}
    print()
    print(result.report())


def test_fig4_copy(benchmark, settings):
    result = run_once(benchmark, run_fig4, settings, kernels=("copy",))
    data = result.throughput["copy"]
    assert data["dam-c"][2] > data["rws"][2]
    benchmark.extra_info["throughput"] = {
        s: {p: round(v, 1) for p, v in by.items()} for s, by in data.items()
    }


def test_fig4_stencil(benchmark, settings):
    result = run_once(benchmark, run_fig4, settings, kernels=("stencil",))
    data = result.throughput["stencil"]
    assert data["dam-c"][2] > data["rws"][2]
    benchmark.extra_info["throughput"] = {
        s: {p: round(v, 1) for p, v in by.items()} for s, by in data.items()
    }
