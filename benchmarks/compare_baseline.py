"""Gate micro-benchmark regressions against the committed baseline.

Usage::

    pytest benchmarks/bench_micro.py --benchmark-only \
        --benchmark-json=fresh.json
    python benchmarks/compare_baseline.py fresh.json [baseline.json] \
        [--json comparison.json]

``--json`` additionally writes the full comparison (per-benchmark ratios
and gate verdicts) as machine-readable JSON — CI uploads it as a
workflow artifact so regressions can be inspected without re-running.

Compares each benchmark's ``min`` (the most machine-noise-resistant
statistic) against ``benchmarks/baseline_micro.json``.  Exits non-zero
when any *gated* benchmark regressed beyond the baseline's
``max_regression`` ratio; other benchmarks are reported but only warn,
since absolute timings vary across CI hosts.

The baseline's ``relative_gates`` entries (``[candidate, reference,
max_ratio]``) compare two benchmarks *within the same fresh run* — both
measured on the same host seconds apart, so a tight ratio holds where an
absolute cross-host gate would flake.  The tracer-off overhead gate
(``test_runtime_task_throughput_tracer_off`` within 2% of
``test_runtime_task_throughput``) is enforced this way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

DEFAULT_BASELINE = Path(__file__).parent / "baseline_micro.json"


def compare(
    fresh_path: str,
    baseline_path: str = str(DEFAULT_BASELINE),
    json_out: Optional[str] = None,
) -> int:
    """Return a process exit code: 0 when no gated benchmark regressed."""
    with open(fresh_path, "r", encoding="utf-8") as fh:
        fresh = {
            b["name"]: b["stats"] for b in json.load(fh)["benchmarks"]
        }
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)

    threshold = baseline["max_regression"]
    gated = set(baseline["gated"])
    failures = []
    rows = []
    for name, base_stats in sorted(baseline["benchmarks"].items()):
        if name not in fresh:
            print(f"MISSING  {name}: not in fresh results")
            if name in gated:
                failures.append(name)
            continue
        ratio = fresh[name]["min"] / base_stats["min"]
        status = "ok"
        if ratio > threshold:
            status = "REGRESSED" if name in gated else "slower (ungated)"
            if name in gated:
                failures.append(name)
        rows.append({
            "benchmark": name,
            "kind": "absolute",
            "baseline_min": base_stats["min"],
            "fresh_min": fresh[name]["min"],
            "ratio": ratio,
            "gate": threshold,
            "gated": name in gated,
            "status": status,
        })
        print(
            f"{status:16s} {name}: min {base_stats['min']:.6g}s -> "
            f"{fresh[name]['min']:.6g}s ({ratio:.2f}x, gate {threshold}x"
            f"{' [gated]' if name in gated else ''})"
        )

    for candidate, reference, max_ratio in baseline.get("relative_gates", []):
        missing = [n for n in (candidate, reference) if n not in fresh]
        if missing:
            print(f"MISSING  relative gate: {', '.join(missing)} not in "
                  "fresh results")
            failures.append(candidate)
            continue
        ratio = fresh[candidate]["min"] / fresh[reference]["min"]
        status = "ok" if ratio <= max_ratio else "REGRESSED"
        if ratio > max_ratio:
            failures.append(candidate)
        rows.append({
            "benchmark": candidate,
            "kind": "relative",
            "reference": reference,
            "fresh_min": fresh[candidate]["min"],
            "reference_min": fresh[reference]["min"],
            "ratio": ratio,
            "gate": max_ratio,
            "gated": True,
            "status": status,
        })
        print(
            f"{status:16s} {candidate} vs {reference}: "
            f"{fresh[candidate]['min']:.6g}s / {fresh[reference]['min']:.6g}s "
            f"({ratio:.3f}x, gate {max_ratio}x [relative])"
        )

    if json_out:
        payload = {
            "baseline": str(baseline_path),
            "max_regression": threshold,
            "comparisons": rows,
            "failures": failures,
            "ok": not failures,
        }
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\ncomparison written to {json_out}")

    if failures:
        print(f"\nFAIL: gated benchmark(s) regressed: {', '.join(failures)}")
        return 1
    print("\nOK: no gated benchmark regression")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="fresh --benchmark-json output")
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the comparison as JSON (CI artifact)",
    )
    args = parser.parse_args(argv)
    return compare(args.fresh, args.baseline, json_out=args.json_out)


if __name__ == "__main__":
    sys.exit(main())
