"""Fig. 6 — per-core cumulative kernel work time."""

from benchmarks.conftest import run_once
from repro.experiments.fig6_worktime import run_fig6


def test_fig6(benchmark, settings):
    result = run_once(benchmark, run_fig6, settings)
    # Paper shape: FA (pinning criticals to the statically fast cores)
    # loads interfered core 0 far more than the dynamic schedulers, which
    # shift critical work to core 1 and finish faster overall.
    for sched in ("da", "dam-c", "dam-p"):
        assert result.work_time["fa"][0] > 1.5 * result.work_time[sched][0]
    assert result.makespan["dam-c"] < result.makespan["fa"]
    assert result.makespan["fa"] < result.makespan["rws"]
    benchmark.extra_info["makespan"] = {
        s: round(v, 4) for s, v in result.makespan.items()
    }
    print()
    print(result.report())
