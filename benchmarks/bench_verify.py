"""The full reproduction scorecard as a single benchmark.

Runs every harness and asserts that every qualitative claim of the
paper's evaluation holds — the one-command reproduction check.
"""

from benchmarks.conftest import run_once
from repro.experiments.verify import run_verify


def test_verify_scorecard(benchmark, settings):
    card = run_once(benchmark, run_verify, settings)
    print()
    print(card.report())
    failed = [c for c in card.claims if not c.holds]
    assert not failed, f"claims failed: {[c.text for c in failed]}"
    benchmark.extra_info["claims"] = f"{card.passed}/{len(card.claims)}"
