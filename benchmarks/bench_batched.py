"""Wall-clock evidence for batched replicate execution (BENCH_batched.json).

``--mode lockstep`` times the lockstep co-advance driver against the
legacy scalar-in-turn batch path on one batch (``execute_batch`` with
``REPRO_LOCKSTEP`` toggled), paired-interleaved, payloads asserted
bit-identical (``==``) before any timing is reported; this feeds
BENCH_lockstep.json.  The default ``--mode sweep`` is the original
whole-adaptive-sweep comparison below.

One measurement, two comparisons:

``batched_sweep``
    The fig5-style replicated sweep (matmul P=2 under the modelled TX2
    co-runner, five scheduler cells, adaptive at a 2%/95% CI target)
    executed twice in this tree — ``batch_runs="off"`` (scalar
    replicates) versus ``batch_runs="auto"`` (each adaptive round's
    same-cell replicates packed into one batched run).  The aggregated
    results are asserted **bit-identical** (``==``, not approx) before
    any timing is reported, so the speedup compares equal work at equal
    confidence.

``pre_pr`` (merged by hand)
    The same ``batch_runs="off"``-equivalent sweep timed on the commit
    before this change, alternating before/after processes to cancel
    host drift.  Reproduction recipe in docs/performance.md.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py [--out out.json]
    # on a pre-change tree (no --batch-runs support):
    PYTHONPATH=src python benchmarks/bench_batched.py --scalar-only
"""

from __future__ import annotations

import argparse
import json
import time


def _fig5_style_cells(scale: float) -> list:
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.fig4_corunner import fig4_spec

    settings = ExperimentSettings(scale=scale)
    return [
        fig4_spec(settings, "matmul", 2, sched)
        for sched in ("rws", "fa", "fam-c", "da", "dam-c")
    ]


def _run_adaptive(cells, batch_runs, ci, min_seeds, max_seeds):
    from repro.sweep import AdaptivePolicy, SweepRunner

    kwargs = {}
    if batch_runs is not None:
        kwargs["batch_runs"] = batch_runs
    runner = SweepRunner(jobs=1, use_cache=False, progress=False, **kwargs)
    policy = AdaptivePolicy(ci=ci, min_seeds=min_seeds, max_seeds=max_seeds)
    start = time.perf_counter()
    results = runner.run_adaptive(cells, policy)
    return results, time.perf_counter() - start, runner.last_stats


def time_batched_sweep(
    scale: float = 0.02,
    ci: float = 0.02,
    min_seeds: int = 3,
    max_seeds: int = 12,
    repeats: int = 3,
    scalar_only: bool = False,
) -> dict:
    """Best-of-N scalar vs batched adaptive sweep, interleaved.

    The two modes alternate within each repeat so host-load drift hits
    both equally; per-replicate aggregated metrics must compare equal
    before the timing counts.
    """
    cells = _fig5_style_cells(scale)
    best_off = best_auto = float("inf")
    stats = None
    for _ in range(repeats):
        ref, off_elapsed, _ = _run_adaptive(
            cells, "off" if not scalar_only else None, ci, min_seeds,
            max_seeds,
        )
        best_off = min(best_off, off_elapsed)
        if scalar_only:
            continue
        got, auto_elapsed, stats = _run_adaptive(
            cells, "auto", ci, min_seeds, max_seeds
        )
        if got != ref:
            raise AssertionError(
                "batched adaptive sweep diverged from the scalar path"
            )
        best_auto = min(best_auto, auto_elapsed)
    payload = {
        "cells": len(cells),
        "scale": scale,
        "ci": ci,
        "min_seeds": min_seeds,
        "max_seeds": max_seeds,
        "scalar_seconds": best_off,
    }
    if not scalar_only:
        payload.update(
            batched_seconds=best_auto,
            batched_speedup=best_off / best_auto,
            bit_identical=True,
            batches=stats.batches,
            batched_runs=stats.batched_runs,
            executed=stats.executed,
        )
    return payload


def time_lockstep_batch(
    scale: float = 0.02,
    runs: int = 8,
    repeats: int = 5,
    scheduler: str = "da",
    parallelism: int = 2,
    machine: str | None = None,
    lockstep_env: dict | None = None,
) -> dict:
    """Paired lockstep-vs-scalar timing of one ``execute_batch`` call.

    The two drivers alternate within each repeat (best-of-N each) so
    host-load drift hits both equally, and their per-replicate payloads
    are asserted bit-identical (``==``) before any timing is reported.
    ``machine`` swaps the fig4 cell's TX2 for a wider registry machine
    (e.g. ``haswell16``, 30 places); the TX2-specific co-runner scenario
    is dropped with it.
    ``lockstep_env`` optionally pins the driver knobs
    (``REPRO_LOCKSTEP_DECISIONS``/``_FOLDS``); default leaves the auto
    gates in charge, which is what a real sweep gets.
    """
    import dataclasses
    import os

    from repro.core.batched import execute_batch
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.fig4_corunner import fig4_spec
    from repro.sweep import replicate_spec

    cell = fig4_spec(
        ExperimentSettings(scale=scale), "matmul", parallelism, scheduler
    )
    if machine is not None:
        params = dict(cell.params)
        params["machine"] = machine
        params.pop("scenario", None)
        cell = dataclasses.replace(cell, params=params)
    members = [replicate_spec(cell, rep) for rep in range(runs)]
    saved = {
        key: os.environ.get(key)
        for key in (
            "REPRO_LOCKSTEP", "REPRO_LOCKSTEP_DECISIONS",
            "REPRO_LOCKSTEP_FOLDS", "REPRO_LOCKSTEP_LEAN",
        )
    }

    def _with_mode(lockstep: bool):
        os.environ["REPRO_LOCKSTEP"] = "1" if lockstep else "0"
        if lockstep:
            for key, value in (lockstep_env or {}).items():
                os.environ[key] = value
        start = time.perf_counter()
        payloads = execute_batch(members)
        return payloads, time.perf_counter() - start

    try:
        # Bit-identity first, outside the timed repeats (also warms the
        # numpy/template caches for both paths equally).
        scalar_payloads, _ = _with_mode(False)
        lockstep_payloads, _ = _with_mode(True)
        if lockstep_payloads != scalar_payloads:
            raise AssertionError(
                "lockstep payloads diverged from the scalar batch path"
            )
        best_scalar = best_lockstep = float("inf")
        for _ in range(repeats):
            _, scalar_elapsed = _with_mode(False)
            best_scalar = min(best_scalar, scalar_elapsed)
            _, lockstep_elapsed = _with_mode(True)
            best_lockstep = min(best_lockstep, lockstep_elapsed)
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old
    return {
        "scheduler": scheduler,
        "parallelism": parallelism,
        "machine": machine or "jetson_tx2",
        "scale": scale,
        "runs": runs,
        "repeats": repeats,
        "bit_identical": True,
        "scalar_seconds": best_scalar,
        "lockstep_seconds": best_lockstep,
        "lockstep_speedup": best_scalar / best_lockstep,
    }


_CELL_CHILD = """\
import json, sys, time
sys.path.insert(0, {src!r})
import dataclasses
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig4_corunner import fig4_spec
from repro.sweep import AdaptivePolicy, SweepRunner

cell = fig4_spec(
    ExperimentSettings(scale={scale}), "matmul", {parallelism}, {scheduler!r}
)
if {machine!r} != "jetson_tx2":
    params = dict(cell.params)
    params["machine"] = {machine!r}
    params.pop("scenario", None)
    cell = dataclasses.replace(cell, params=params)
runner = SweepRunner(
    jobs=1, use_cache=False, progress=False, batch_runs={batch_runs!r}
)
policy = AdaptivePolicy(ci=0.001, min_seeds={seeds}, max_seeds={seeds})
start = time.perf_counter()
results = runner.run_adaptive([cell], policy)
elapsed = time.perf_counter() - start
stats = runner.last_stats
print(json.dumps({{
    "elapsed": elapsed,
    "results": results,
    "batched_runs": stats.batched_runs,
    "lockstep_batches": stats.lockstep_batches,
}}))
"""


def time_lockstep_cell(
    scale: float = 0.005,
    seeds: int = 12,
    repeats: int = 7,
    scheduler: str = "fa",
    parallelism: int = 8,
    machine: str = "haswell16",
) -> dict:
    """Adaptive-cell batched-vs-scalar, paired fresh subprocesses.

    This is the acceptance comparison for lockstep: one eligible
    replicated cell swept at jobs=1 with ``batch_runs="off"`` (scalar
    replicates, the pre-batching path) versus ``batch_runs="auto"``
    (one lockstep batch), each measurement in a fresh subprocess,
    modes alternating within every repeat so host-load drift cancels.
    Aggregated per-cell metrics are asserted ``==`` across modes before
    any timing is reported; best-of-N per side.
    """
    import os
    import subprocess
    import sys

    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

    def _child(batch_runs: str) -> dict:
        code = _CELL_CHILD.format(
            src=src, scale=scale, parallelism=parallelism,
            scheduler=scheduler, machine=machine, batch_runs=batch_runs,
            seeds=seeds,
        )
        out = subprocess.run(
            [sys.executable, "-c", code], check=True,
            capture_output=True, text=True,
        )
        return json.loads(out.stdout)

    best_off = best_auto = float("inf")
    ref = lockstep_batches = batched_runs = None
    for _ in range(repeats):
        off = _child("off")
        auto = _child("auto")
        if ref is None:
            ref = off["results"]
        if off["results"] != ref or auto["results"] != ref:
            raise AssertionError(
                "batched adaptive cell diverged from the scalar path"
            )
        best_off = min(best_off, off["elapsed"])
        best_auto = min(best_auto, auto["elapsed"])
        lockstep_batches = auto["lockstep_batches"]
        batched_runs = auto["batched_runs"]
    return {
        "scheduler": scheduler,
        "parallelism": parallelism,
        "machine": machine,
        "scale": scale,
        "seeds": seeds,
        "repeats": repeats,
        "bit_identical": True,
        "batched_runs": batched_runs,
        "lockstep_batches": lockstep_batches,
        "scalar_seconds": best_off,
        "batched_seconds": best_auto,
        "batched_speedup": best_off / best_auto,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write JSON here")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--mode", choices=("sweep", "lockstep", "cell", "both"),
        default="sweep",
        help="sweep: adaptive batch_runs on/off comparison; lockstep: "
        "one-batch lockstep-vs-scalar driver comparison; cell: "
        "subprocess-paired adaptive-cell batched-vs-scalar comparison",
    )
    parser.add_argument(
        "--runs", type=int, default=8,
        help="replicates per batch (--mode lockstep)",
    )
    parser.add_argument(
        "--scheduler", default="da", help="cell scheduler (--mode lockstep)"
    )
    parser.add_argument(
        "--machine", default=None,
        help="registry machine for the lockstep cell (default: the fig4 "
        "cell's jetson_tx2)",
    )
    parser.add_argument(
        "--scalar-only", action="store_true",
        help="time only the scalar sweep (for pre-change trees that have "
        "no batch_runs knob)",
    )
    args = parser.parse_args(argv)

    payload = {}
    if args.mode in ("sweep", "both"):
        payload["batched_sweep"] = time_batched_sweep(
            scale=args.scale, repeats=args.repeats,
            scalar_only=args.scalar_only,
        )
    if args.mode in ("lockstep", "both"):
        payload["lockstep_batch"] = time_lockstep_batch(
            scale=args.scale, runs=args.runs, repeats=args.repeats,
            scheduler=args.scheduler, machine=args.machine,
        )
    if args.mode == "cell":
        payload["lockstep_cell"] = time_lockstep_cell(
            scale=args.scale, repeats=args.repeats,
            scheduler=args.scheduler,
            machine=args.machine or "haswell16",
        )
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
