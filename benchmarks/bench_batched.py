"""Wall-clock evidence for batched replicate execution (BENCH_batched.json).

One measurement, two comparisons:

``batched_sweep``
    The fig5-style replicated sweep (matmul P=2 under the modelled TX2
    co-runner, five scheduler cells, adaptive at a 2%/95% CI target)
    executed twice in this tree — ``batch_runs="off"`` (scalar
    replicates) versus ``batch_runs="auto"`` (each adaptive round's
    same-cell replicates packed into one batched run).  The aggregated
    results are asserted **bit-identical** (``==``, not approx) before
    any timing is reported, so the speedup compares equal work at equal
    confidence.

``pre_pr`` (merged by hand)
    The same ``batch_runs="off"``-equivalent sweep timed on the commit
    before this change, alternating before/after processes to cancel
    host drift.  Reproduction recipe in docs/performance.md.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py [--out out.json]
    # on a pre-change tree (no --batch-runs support):
    PYTHONPATH=src python benchmarks/bench_batched.py --scalar-only
"""

from __future__ import annotations

import argparse
import json
import time


def _fig5_style_cells(scale: float) -> list:
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.fig4_corunner import fig4_spec

    settings = ExperimentSettings(scale=scale)
    return [
        fig4_spec(settings, "matmul", 2, sched)
        for sched in ("rws", "fa", "fam-c", "da", "dam-c")
    ]


def _run_adaptive(cells, batch_runs, ci, min_seeds, max_seeds):
    from repro.sweep import AdaptivePolicy, SweepRunner

    kwargs = {}
    if batch_runs is not None:
        kwargs["batch_runs"] = batch_runs
    runner = SweepRunner(jobs=1, use_cache=False, progress=False, **kwargs)
    policy = AdaptivePolicy(ci=ci, min_seeds=min_seeds, max_seeds=max_seeds)
    start = time.perf_counter()
    results = runner.run_adaptive(cells, policy)
    return results, time.perf_counter() - start, runner.last_stats


def time_batched_sweep(
    scale: float = 0.02,
    ci: float = 0.02,
    min_seeds: int = 3,
    max_seeds: int = 12,
    repeats: int = 3,
    scalar_only: bool = False,
) -> dict:
    """Best-of-N scalar vs batched adaptive sweep, interleaved.

    The two modes alternate within each repeat so host-load drift hits
    both equally; per-replicate aggregated metrics must compare equal
    before the timing counts.
    """
    cells = _fig5_style_cells(scale)
    best_off = best_auto = float("inf")
    stats = None
    for _ in range(repeats):
        ref, off_elapsed, _ = _run_adaptive(
            cells, "off" if not scalar_only else None, ci, min_seeds,
            max_seeds,
        )
        best_off = min(best_off, off_elapsed)
        if scalar_only:
            continue
        got, auto_elapsed, stats = _run_adaptive(
            cells, "auto", ci, min_seeds, max_seeds
        )
        if got != ref:
            raise AssertionError(
                "batched adaptive sweep diverged from the scalar path"
            )
        best_auto = min(best_auto, auto_elapsed)
    payload = {
        "cells": len(cells),
        "scale": scale,
        "ci": ci,
        "min_seeds": min_seeds,
        "max_seeds": max_seeds,
        "scalar_seconds": best_off,
    }
    if not scalar_only:
        payload.update(
            batched_seconds=best_auto,
            batched_speedup=best_off / best_auto,
            bit_identical=True,
            batches=stats.batches,
            batched_runs=stats.batched_runs,
            executed=stats.executed,
        )
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write JSON here")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--scalar-only", action="store_true",
        help="time only the scalar sweep (for pre-change trees that have "
        "no batch_runs knob)",
    )
    args = parser.parse_args(argv)

    payload = {
        "batched_sweep": time_batched_sweep(
            scale=args.scale, repeats=args.repeats,
            scalar_only=args.scalar_only,
        )
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
