"""Fig. 10 — distributed 2D heat on a 4-node cluster."""

from benchmarks.conftest import run_once
from repro.experiments.fig10_heat import run_fig10


def test_fig10(benchmark, settings):
    result = run_once(benchmark, run_fig10, settings)
    ratios = result.headline_ratios()
    # Paper §5.4 shape: moldable dynamic schedulers dominate; DAM-C above
    # both RWS (paper: +76%) and RWSM-C (paper: +17%).
    assert ratios["dam-c/rws"] > 1.5
    assert ratios["dam-c/rwsm-c"] >= 1.0
    assert result.throughput["dam-p"] > result.throughput["rws"]
    benchmark.extra_info["throughput"] = {
        s: round(v, 1) for s, v in result.throughput.items()
    }
    benchmark.extra_info["headline"] = {k: round(v, 2) for k, v in ratios.items()}
    print()
    print(result.report())
