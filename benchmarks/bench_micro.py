"""Micro-benchmarks of the hot primitives.

These are genuine pytest-benchmark measurements (many rounds) of the
operations a simulation executes millions of times, useful for tracking
performance regressions of the library itself.
"""

import numpy as np

from repro.core.placement import global_search_cost, local_search_cost
from repro.core.ptt import PerformanceTraceTable
from repro.graph.generators import layered_synthetic_dag
from repro.kernels.fixed import FixedWorkKernel
from repro.kernels.matmul import MatMulKernel
from repro.machine.presets import haswell_node, jetson_tx2
from repro.machine.speed import SpeedModel
from repro.machine.topology import ExecutionPlace
from repro.session import run_graph
from repro.sim.environment import Environment


def test_ptt_update(benchmark):
    machine = jetson_tx2()
    ptt = PerformanceTraceTable(machine)
    place = ExecutionPlace(0, 1)
    benchmark(ptt.update, place, 1e-3)


def test_global_search_tx2(benchmark):
    machine = jetson_tx2()
    ptt = PerformanceTraceTable(machine)
    for i, place in enumerate(machine.places):
        ptt.update(place, 1e-3 * (i + 1))
    benchmark(global_search_cost, ptt, machine)


def test_global_search_20core(benchmark):
    """The paper flags global-search cost as a scaling concern (§4.1.1)."""
    machine = haswell_node()
    ptt = PerformanceTraceTable(machine)
    for i, place in enumerate(machine.places):
        ptt.update(place, 1e-3 * (i + 1))
    benchmark(global_search_cost, ptt, machine)


def test_local_search(benchmark):
    machine = jetson_tx2()
    ptt = PerformanceTraceTable(machine)
    for place in machine.places:
        ptt.update(place, 1e-3)
    benchmark(local_search_cost, ptt, machine, 2)


def test_global_search_backlog_tiebreak(benchmark):
    """Vectorized search with every candidate tied: tie-break loop engaged.

    Uniform PTT entries make all places fall inside ``TIE_TOLERANCE``, so
    the search must rank the full candidate set by leader backlog — the
    worst case of the vectorized path.
    """
    machine = haswell_node()
    ptt = PerformanceTraceTable(machine)
    for place in machine.places:
        ptt.update(place, 1e-3)
    depths = [core % 3 for core in range(machine.num_cores)]
    benchmark(global_search_cost, ptt, machine, backlog=depths.__getitem__)


def test_dag_build_direct(benchmark):
    """Cold DAG construction: generator logic with the template cache off."""
    from repro.graph.templates import clear_template_cache

    kernel = MatMulKernel()

    def build():
        clear_template_cache()
        return layered_synthetic_dag(kernel, 4, 1000)

    graph = benchmark(build)
    assert sum(1 for _ in graph.tasks()) == 1000


def test_dag_build_template(benchmark):
    """Warm DAG construction: instantiation from a cached template."""
    from repro.graph.templates import clear_template_cache, template_cache_stats

    kernel = MatMulKernel()
    clear_template_cache()
    layered_synthetic_dag(kernel, 4, 1000)  # prime the cache

    graph = benchmark(layered_synthetic_dag, kernel, 4, 1000)
    assert sum(1 for _ in graph.tasks()) == 1000
    assert template_cache_stats()["hits"] > 0


def test_sim_event_throughput(benchmark):
    """Raw engine speed: timeout-chain of 10k events."""

    def run_chain():
        env = Environment()

        def proc():
            for _ in range(10_000):
                yield env.timeout(1e-6)

        env.process(proc())
        env.run()

    benchmark.pedantic(run_chain, rounds=3, iterations=1)


def test_runtime_task_throughput(benchmark):
    """End-to-end simulated tasks per wall second (1000-task DAG)."""

    def run_dag():
        graph = layered_synthetic_dag(MatMulKernel(), 4, 1000)
        return run_graph(graph, jetson_tx2(), "dam-c")

    result = benchmark.pedantic(run_dag, rounds=3, iterations=1)
    assert result.tasks_completed == 1000


def test_runtime_task_throughput_tracer_off(benchmark):
    """The zero-overhead-when-off contract of repro.trace.

    Same DAG as ``test_runtime_task_throughput`` with an explicit (still
    disabled) NullTracer.  ``compare_baseline.py`` gates this case
    *relatively* — its min must stay within 2% of the plain case measured
    in the same session — so the instrumentation's ``tracer.enabled``
    guards can never grow into a real cost without CI noticing.
    """
    from repro.trace import NullTracer

    def run_dag():
        graph = layered_synthetic_dag(MatMulKernel(), 4, 1000)
        return run_graph(graph, jetson_tx2(), "dam-c", tracer=NullTracer())

    result = benchmark.pedantic(run_dag, rounds=5, iterations=1)
    assert result.tasks_completed == 1000


def test_runtime_task_throughput_metrics_on(benchmark):
    """The zero-overhead-when-off contract of repro.telemetry.

    Same DAG as ``test_runtime_task_throughput`` with an *enabled*
    :class:`MetricsRegistry` installed process-wide, exactly as a sweep
    worker installs one around a metered run.  The runtime's telemetry
    sites are counter handles touched only on fault paths, so a clean
    run should cost nothing; ``compare_baseline.py`` gates this case
    relatively — its min must stay within 2% of the plain case measured
    in the same session — mirroring the tracer-off gate.
    """
    from repro.telemetry import MetricsRegistry, install

    def run_dag():
        previous = install(MetricsRegistry())
        try:
            graph = layered_synthetic_dag(MatMulKernel(), 4, 1000)
            return run_graph(graph, jetson_tx2(), "dam-c")
        finally:
            install(previous)

    result = benchmark.pedantic(run_dag, rounds=5, iterations=1)
    assert result.tasks_completed == 1000


def test_runtime_task_throughput_traced(benchmark):
    """Cost of full tracing (reported, ungated: tracing is opt-in)."""
    from repro.trace import FullTracer

    def run_dag():
        graph = layered_synthetic_dag(MatMulKernel(), 4, 1000)
        tracer = FullTracer()
        result = run_graph(graph, jetson_tx2(), "dam-c", tracer=tracer)
        assert len(tracer.events()) > 1000
        return result

    result = benchmark.pedantic(run_dag, rounds=3, iterations=1)
    assert result.tasks_completed == 1000


def test_sweep_tiny_fig4(benchmark):
    """End-to-end sweep path: specs -> registry -> runs -> metric dicts.

    A two-cell fig4 slice through the real :class:`SweepRunner` (serial,
    uncached), covering spec hashing, dispatch ordering and result
    assembly on top of the simulator — the path every experiment harness
    takes.  Gated: a regression here is a regression of the product.
    """
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.fig4_corunner import fig4_spec
    from repro.sweep import SweepRunner

    settings = ExperimentSettings(scale=0.01)
    specs = [
        fig4_spec(settings, "matmul", 2, sched) for sched in ("rws", "dam-c")
    ]

    def run_sweep():
        return SweepRunner(jobs=1, use_cache=False, progress=False).run(specs)

    rows = benchmark.pedantic(run_sweep, rounds=3, iterations=1)
    assert len(rows) == 2
    assert all(row["throughput"] > 0 for row in rows)


def test_lockstep_batch(benchmark):
    """Lockstep batch driver: 8 PTT-training replicates in one pass.

    Calls :func:`repro.core.batched.execute_batch` directly on eight
    ``da`` fig4 replicates (seed-derived specs, one shared machine),
    exercising the lockstep driver, lean-records mode and the shared
    environment setup.  Gated: a regression here is a regression of the
    batched jobs=1 sweep path (see BENCH_lockstep.json).
    """
    from repro.core.batched import execute_batch
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.fig4_corunner import fig4_spec

    specs = [
        fig4_spec(ExperimentSettings(scale=0.01, seed=seed), "matmul", 2, "da")
        for seed in range(8)
    ]

    results = benchmark.pedantic(execute_batch, args=(specs,), rounds=3,
                                 iterations=1)
    assert len(results) == 8
    assert all("ok" in row and row["ok"]["throughput"] > 0 for row in results)


def test_speed_model_retime(benchmark):
    """Cost of a rate change with many in-flight work items."""
    env = Environment()
    machine = haswell_node()
    speed = SpeedModel(env, machine)
    for core in range(machine.num_cores):
        speed.begin_work([core], work=1e9)

    def toggle():
        speed.set_cpu_share([0, 1, 2], 0.5)
        speed.set_cpu_share([0, 1, 2], 1.0)

    benchmark(toggle)


def test_sweep_batched_adaptive(benchmark):
    """Batched replicate execution through the real adaptive sweep.

    A two-cell fig4 slice at a fixed 3 replicates per cell with
    ``batch_runs="auto"``: each cell's round of replicates must pack
    into one batched run (asserted via ``SweepStats``), exercising the
    batch planning, the stacked PTT/rate state and the per-replicate
    scalar execution path end to end.  Gated: a regression here is a
    regression of the default ``--adaptive`` path.
    """
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.fig4_corunner import fig4_spec
    from repro.sweep import AdaptivePolicy, SweepRunner

    settings = ExperimentSettings(scale=0.01)
    specs = [
        fig4_spec(settings, "matmul", 2, sched) for sched in ("rws", "dam-c")
    ]
    policy = AdaptivePolicy(ci=0.0, min_seeds=3, max_seeds=3)

    def run_sweep():
        runner = SweepRunner(
            jobs=1, use_cache=False, progress=False, batch_runs="auto"
        )
        rows = runner.run_adaptive(specs, policy)
        return rows, runner.last_stats

    rows, stats = benchmark.pedantic(run_sweep, rounds=3, iterations=1)
    assert len(rows) == 2
    assert all(row["adaptive"]["replicates"] == 3 for row in rows)
    assert stats.batches == 2 and stats.batched_runs == 6


def test_spec_delta_codec(benchmark):
    """Dispatch fast lane: delta encode + decode of one replicate.

    One seed-varied replicate of an interned base spec, through the
    sender (:class:`~repro.sweep.wire.SpecInterner`) and the receiver
    (:class:`~repro.sweep.wire.SpecDecoder`) — the per-cell codec cost
    every fast-lane lease and pool assignment pays.  Gated: a regression
    here is a regression of every dispatched cell.
    """
    from repro.sweep import wire
    from repro.sweep.spec import RunSpec

    params = {
        "workload": {
            "name": "layered", "kernel": "matmul",
            "parallelism": 4, "total": 600,
        },
        "machine": "jetson_tx2",
        "scheduler": "dam-c",
        "scenario": {"name": "tx2_corunner", "kernel": "matmul"},
    }
    base = RunSpec(kind="single", params=params, seed=0)
    replicate = RunSpec(kind="single", params=params, seed=1)
    interner = wire.SpecInterner()
    interner.encode(base)  # interns the group base
    decoder = wire.SpecDecoder()
    decoder.add_base(wire.wire_id(base), wire.spec_to_wire(base))

    def roundtrip():
        enc = interner.encode(replicate)
        return decoder.decode({"base": enc.base_id, "delta": enc.delta})

    rebuilt = benchmark(roundtrip)
    assert rebuilt.key() == replicate.key()
