"""Table 1 — scheduler feature matrix."""

from benchmarks.conftest import run_once
from repro.experiments.table1_features import run_table1


def test_table1(benchmark):
    result = run_once(benchmark, run_table1)
    assert len(result.rows) == 7
    benchmark.extra_info["rows"] = [r[0] for r in result.rows]
