"""Ablations of the design choices DESIGN.md calls out.

Each test flips one mechanism and checks (and records) its contribution:

* criticality awareness (steal-exempt global placement of high-priority
  tasks) — DA vs RWS under a co-runner;
* moldability — DAM-C vs DA on the cache-cliff heat workload;
* the online model itself — DAM-C vs FA under DVFS (static asymmetry
  knowledge without adaptation);
* the scalable two-stage PTT search — decision-equivalent and cheaper per
  search than the flat sweep;
* single-victim stealing vs exhaustive victim scanning.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.placement import global_search_cost
from repro.core.ptt import PerformanceTraceTable
from repro.core.scalable import ScalableSearchIndex
from repro.core.policies.registry import make_scheduler
from repro.machine.presets import symmetric_machine
from repro.sweep import RunSpec, SweepRunner


def _sweep_throughputs(specs):
    """Run ablation specs serially and uncached so timings stay honest."""
    runner = SweepRunner(jobs=1, use_cache=False, progress=False)
    return [m["throughput"] for m in runner.run(specs)]


def _layered_spec(scheduler, scenario, total, parallelism=2, config=None):
    params = {
        "workload": {
            "name": "layered",
            "kernel": "matmul",
            "parallelism": parallelism,
            "total": total,
        },
        "machine": "jetson_tx2",
        "scheduler": scheduler,
        "scenario": scenario,
    }
    if config is not None:
        params["config"] = config
    return RunSpec(kind="single", params=params, metrics=("throughput",))


def test_ablation_criticality(benchmark):
    """Criticality-aware steering alone (DA) vs priority-blind RWS."""
    corunner = {"name": "tx2_corunner", "kernel": "matmul"}

    def run():
        specs = [
            _layered_spec(sched, corunner, total=600)
            for sched in ("rws", "da")
        ]
        return dict(zip(("rws", "da"), _sweep_throughputs(specs)))

    thr = run_once(benchmark, run)
    assert thr["da"] > 1.5 * thr["rws"]
    benchmark.extra_info["throughput"] = {k: round(v) for k, v in thr.items()}


def test_ablation_moldability(benchmark):
    """Moldability (DAM-C) vs pure steering (DA) on the heat workload,
    whose per-strip working set spills DRAM at width 1."""

    def run():
        specs = [
            RunSpec(
                kind="heat_cluster",
                params={
                    "machine": "haswell_node",
                    "scheduler": sched,
                    "nodes": 2,
                    "iterations": 15,
                },
            )
            for sched in ("da", "dam-c")
        ]
        return dict(zip(("da", "dam-c"), _sweep_throughputs(specs)))

    thr = run_once(benchmark, run)
    assert thr["dam-c"] > 1.5 * thr["da"]
    benchmark.extra_info["throughput"] = {k: round(v) for k, v in thr.items()}


def test_ablation_dynamic_model(benchmark):
    """Online adaptation (DAM-C) vs static asymmetry knowledge (FA) under
    DVFS, where the static notion of 'fast cores' inverts periodically."""
    dvfs = {"name": "dvfs", "half_period": 0.25}

    def run():
        specs = [
            _layered_spec(sched, dvfs, total=2000)
            for sched in ("fa", "dam-c")
        ]
        return dict(zip(("fa", "dam-c"), _sweep_throughputs(specs)))

    thr = run_once(benchmark, run)
    assert thr["dam-c"] > thr["fa"]
    benchmark.extra_info["throughput"] = {k: round(v) for k, v in thr.items()}


def test_ablation_scalable_search_cost(benchmark):
    """Per-search cost of the two-stage index vs the flat sweep on an
    80-core (8-socket) machine; decisions are equivalence-tested in
    tests/test_scalable.py."""
    machine = symmetric_machine(8, 10, name="big")
    table = PerformanceTraceTable(machine)
    index = ScalableSearchIndex(machine, table)
    index.observe()
    for i, place in enumerate(machine.places):
        table.update(place, 1e-3 * (1 + i % 7))

    flat = benchmark.pedantic(
        lambda: global_search_cost(table, machine),
        rounds=200, iterations=10,
    )
    assert index.search_cost() == global_search_cost(table, machine)
    benchmark.extra_info["places"] = len(machine.places)
    benchmark.extra_info["touched_two_stage"] = index.entries_touched_per_search()


def test_ablation_steal_tries(benchmark):
    """Single-victim stealing (XiTAO-style) vs near-exhaustive scanning:
    more tries help the priority-blind baseline most."""

    def run_with_config():
        specs = [
            _layered_spec(
                "rws",
                {"name": "tx2_corunner", "kernel": "matmul"},
                total=800,
                parallelism=4,
                config={"steal_tries": tries},
            )
            for tries in (1, 5)
        ]
        return dict(zip((1, 5), _sweep_throughputs(specs)))

    thr = run_once(benchmark, run_with_config)
    assert thr[5] >= thr[1] * 0.9  # scanning never catastrophically worse
    benchmark.extra_info["throughput_by_tries"] = {
        k: round(v) for k, v in thr.items()
    }
