"""Ablations of the design choices DESIGN.md calls out.

Each test flips one mechanism and checks (and records) its contribution:

* criticality awareness (steal-exempt global placement of high-priority
  tasks) — DA vs RWS under a co-runner;
* moldability — DAM-C vs DA on the cache-cliff heat workload;
* the online model itself — DAM-C vs FA under DVFS (static asymmetry
  knowledge without adaptation);
* the scalable two-stage PTT search — decision-equivalent and cheaper per
  search than the flat sweep;
* single-victim stealing vs exhaustive victim scanning.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.heat import HeatConfig, build_heat_graph_builder
from repro.core.placement import global_search_cost
from repro.core.ptt import PerformanceTraceTable
from repro.core.scalable import ScalableSearchIndex
from repro.core.policies.registry import make_scheduler
from repro.distributed.cluster_runtime import DistributedRuntime
from repro.interference.corunner import CorunnerInterference
from repro.interference.dvfs_events import DvfsInterference
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.presets import haswell_node, symmetric_machine
from repro.runtime.config import RuntimeConfig
from repro.session import quick_run


def test_ablation_criticality(benchmark):
    """Criticality-aware steering alone (DA) vs priority-blind RWS."""

    def run():
        out = {}
        for sched in ("rws", "da"):
            out[sched] = quick_run(
                scheduler=sched, kernel="matmul", parallelism=2,
                total_tasks=600,
                scenario=CorunnerInterference.matmul_chain([0]),
            ).throughput
        return out

    thr = run_once(benchmark, run)
    assert thr["da"] > 1.5 * thr["rws"]
    benchmark.extra_info["throughput"] = {k: round(v) for k, v in thr.items()}


def test_ablation_moldability(benchmark):
    """Moldability (DAM-C) vs pure steering (DA) on the heat workload,
    whose per-strip working set spills DRAM at width 1."""

    def run():
        out = {}
        config = HeatConfig(iterations=15, nodes=2)
        for sched in ("da", "dam-c"):
            runtime = DistributedRuntime(
                [haswell_node() for _ in range(2)],
                sched,
                build_heat_graph_builder(config),
            )
            out[sched] = runtime.run().throughput
        return out

    thr = run_once(benchmark, run)
    assert thr["dam-c"] > 1.5 * thr["da"]
    benchmark.extra_info["throughput"] = {k: round(v) for k, v in thr.items()}


def test_ablation_dynamic_model(benchmark):
    """Online adaptation (DAM-C) vs static asymmetry knowledge (FA) under
    DVFS, where the static notion of 'fast cores' inverts periodically."""

    def run():
        wave = PeriodicSquareWave(half_period=0.25)
        out = {}
        for sched in ("fa", "dam-c"):
            out[sched] = quick_run(
                scheduler=sched, kernel="matmul", parallelism=2,
                total_tasks=2000,
                scenario=DvfsInterference(wave=wave),
            ).throughput
        return out

    thr = run_once(benchmark, run)
    assert thr["dam-c"] > thr["fa"]
    benchmark.extra_info["throughput"] = {k: round(v) for k, v in thr.items()}


def test_ablation_scalable_search_cost(benchmark):
    """Per-search cost of the two-stage index vs the flat sweep on an
    80-core (8-socket) machine; decisions are equivalence-tested in
    tests/test_scalable.py."""
    machine = symmetric_machine(8, 10, name="big")
    table = PerformanceTraceTable(machine)
    index = ScalableSearchIndex(machine, table)
    index.observe()
    for i, place in enumerate(machine.places):
        table.update(place, 1e-3 * (1 + i % 7))

    flat = benchmark.pedantic(
        lambda: global_search_cost(table, machine),
        rounds=200, iterations=10,
    )
    assert index.search_cost() == global_search_cost(table, machine)
    benchmark.extra_info["places"] = len(machine.places)
    benchmark.extra_info["touched_two_stage"] = index.entries_touched_per_search()


def test_ablation_steal_tries(benchmark):
    """Single-victim stealing (XiTAO-style) vs near-exhaustive scanning:
    more tries help the priority-blind baseline most."""

    def run_with_config():
        out = {}
        for tries in (1, 5):
            from repro.apps.synthetic import paper_matmul_dag
            from repro.experiments.common import run_one
            from repro.machine.presets import jetson_tx2
            graph = paper_matmul_dag(4, scale=800 / 32000)
            result = run_one(
                graph, jetson_tx2(), "rws",
                scenario=CorunnerInterference.matmul_chain([0]),
                config=RuntimeConfig(steal_tries=tries),
            )
            out[tries] = result.throughput
        return out

    thr = run_once(benchmark, run_with_config)
    assert thr[5] >= thr[1] * 0.9  # scanning never catastrophically worse
    benchmark.extra_info["throughput_by_tries"] = {
        k: round(v) for k, v in thr.items()
    }
