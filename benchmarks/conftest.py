"""Shared benchmark configuration.

Each ``bench_fig*.py`` regenerates one of the paper's artifacts through the
corresponding harness in :mod:`repro.experiments` and records the headline
numbers in ``extra_info`` so ``pytest benchmarks/ --benchmark-only`` doubles
as the reproduction log.  ``--repro-scale`` (default 0.02) selects the
fraction of the paper's task counts; pass 1.0 for paper-scale runs.
"""

import pytest

from repro.experiments.common import ExperimentSettings


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="0.02",
        help="fraction of the paper's task counts used by the figure benches",
    )


@pytest.fixture(scope="session")
def settings(request) -> ExperimentSettings:
    scale = float(request.config.getoption("--repro-scale"))
    return ExperimentSettings(scale=scale, seed=0)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-figure harness exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
