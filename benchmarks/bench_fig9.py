"""Fig. 9 — K-means under a socket-wide co-runner window."""

from benchmarks.conftest import run_once
from repro.experiments.fig9_kmeans import run_fig9


def test_fig9(benchmark, settings):
    result = run_once(benchmark, run_fig9, settings)
    rws_in = result.mean_iteration_time("rws", inside_window=True)
    damp_in = result.mean_iteration_time("dam-p", inside_window=True)
    damc_in = result.mean_iteration_time("dam-c", inside_window=True)
    rws_out = result.mean_iteration_time("rws", inside_window=False)
    # Paper shape: interference inflates iteration times; the dynamic
    # moldable schedulers absorb it far better than RWS.
    assert rws_in > rws_out * 1.2
    assert damp_in < rws_in
    assert damc_in < rws_in
    benchmark.extra_info["mean_iteration_s"] = {
        s: {
            "outside": round(result.mean_iteration_time(s, False), 3),
            "inside": round(result.mean_iteration_time(s, True), 3),
        }
        for s in result.series
    }
    print()
    print(result.report())
