"""Fig. 5 — priority-task distribution over execution places."""

from benchmarks.conftest import run_once
from repro.experiments.fig5_distribution import run_fig5


def test_fig5(benchmark, settings):
    result = run_once(benchmark, run_fig5, settings)
    # Paper shape: FA splits 50/50 over the Denver cores (half on the
    # interfered core); the dynamic schedulers keep priority tasks off
    # the interfered core almost entirely; RWS scatters them.
    assert abs(result.interfered_core_share("fa") - 0.5) < 0.05
    for sched in ("da", "dam-c", "dam-p"):
        assert result.interfered_core_share(sched) < 0.05
    assert 0.10 < result.interfered_core_share("rws") < 0.45
    benchmark.extra_info["interfered_core_share"] = {
        s: round(result.interfered_core_share(s), 3)
        for s in result.distribution
    }
    print()
    print(result.report())
