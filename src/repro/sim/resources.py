"""Waitable FIFO store, used for message channels in the distributed layer."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.environment import Environment
from repro.sim.events import Event


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (the fabric models its own backpressure through
    transfer delays); ``get`` returns an event that fires as soon as an item
    is available, preserving request order.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending ``get`` request.

        True when the request was still queued (and is now removed); False
        when it already received an item or was never a getter here.  The
        fabric's receive-timeout path uses this so a timed-out getter
        cannot later swallow a message meant for a retried receive.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        return True
