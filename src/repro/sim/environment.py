"""Simulation environment and coroutine processes."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import NORMAL, PENDING, URGENT, Event, EventQueue


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    ``cause`` carries the value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._queue.push(env.now + delay, NORMAL, self)


class Process(Event):
    """A coroutine process.

    Wraps a generator that yields :class:`Event` objects.  The process
    itself is an event that triggers when the generator finishes, so
    processes can wait on each other.
    """

    __slots__ = ("generator", "_target", "name", "_send", "_throw")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        # Bound methods cached once: _resume runs for every event any
        # process waits on, so the two attribute lookups add up.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when running
        #: its initialization or after termination).
        self._target: Optional[Event] = None
        # Kick off the process via an urgent initialization event.
        init = env._pooled_event()
        init._value = None
        init.callbacks.append(self._resume)
        env._queue.push(env.now, URGENT, init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        (the event may still fire later and is then ignored by this
        process).
        """
        if self.triggered:
            raise RuntimeError(f"{self.name} has terminated; cannot interrupt")
        target = self._target
        if target is not None and not target.processed:
            # Detach from whatever we were waiting for.
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        self._target = None
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._resume)
        # defused: the exception is delivered via throw(), not raised by env
        self.env._queue.push(self.env.now, URGENT, interrupt_event)

    # -- engine plumbing --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                next_event = self._throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException:
            self._target = None
            # Propagate crashes out of the simulation: a process that dies
            # with an unexpected exception is a bug in the model, not a
            # simulated outcome.
            raise
        finally:
            env._active_process = None

        if not isinstance(next_event, Event):
            raise TypeError(
                f"process {self.name!r} yielded {next_event!r}, expected an Event"
            )
        if next_event.callbacks is None:  # processed
            # Already happened: resume immediately via an urgent event.
            bridge = env._pooled_event()
            bridge._ok = next_event._ok
            bridge._value = next_event._value
            bridge.callbacks.append(self._resume)
            env._queue.push(env._now, URGENT, bridge)
            self._target = bridge
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class Environment:
    """The simulation clock and event loop."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = EventQueue()
        self._active_process: Optional[Process] = None

    # -- public API --------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Event:
        """Engine-internal :meth:`timeout` drawing from the event pool.

        Schedules exactly like ``Timeout`` (same time, priority and heap
        order) but reuses recycled pooled events instead of allocating.
        Callers must not hold a reference past the wakeup — the event is
        recycled as soon as its callbacks run — so this is only for the
        ubiquitous ``yield env.sleep(dt)`` pattern in engine loops.
        ``delay`` is not validated; engine callers pass constants.
        """
        queue = self._queue
        free = queue._free
        if free:
            event = free.pop()
        else:
            event = Event(self)
            event._pooled = True
        event._value = value
        queue.push(self._now + delay, NORMAL, event)
        return event

    def _pooled_event(self) -> Event:
        """A triggered-looking blank event from the free-list (or new)."""
        free = self._queue._free
        if free:
            return free.pop()
        event = Event(self)
        event._pooled = True
        return event

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, name=name)

    def next_event_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the queue is empty.

        A read-only peek (defunct heads are dropped, nothing is popped):
        the lockstep batch driver orders its merged-calendar wavefront
        across co-advancing environments by this value, and it is handy
        for any external driver stepping an environment manually.
        """
        try:
            return self._queue.peek_time()
        except IndexError:
            return None

    def schedule_at(self, time: float, event: Event) -> None:
        """Trigger a prepared (untriggered) event at an absolute time."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        if event.triggered:
            raise RuntimeError("event already triggered")
        event._ok = True
        if event._value is PENDING:
            event._value = None
        self._queue.push(time, NORMAL, event)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the final simulated time.  When ``until`` is given the clock
        is advanced exactly to it even if the last event fires earlier.
        """
        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise ValueError(f"until={limit} is in the past (now={self._now})")
        queue = self._queue
        while True:
            try:
                next_time = queue.peek_time()
            except IndexError:
                break
            if next_time > limit:
                break
            item = queue.pop()
            event = item[3]
            self._now = item[0]
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if event._pooled:
                queue._recycle(event)
        if until is not None:
            self._now = limit
        return self._now

    def step(self) -> float:
        """Process exactly one event; returns the new time.

        Raises ``IndexError`` when the queue is empty.
        """
        item = self._queue.pop()
        event = item[3]
        self._now = item[0]
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._pooled:
            self._queue._recycle(event)
        return self._now

    def _push(self, event: Event, priority: int) -> None:
        """Queue a just-triggered event for processing at the current time."""
        self._queue.push(self._now, priority, event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment now={self._now} pending={len(self._queue)}>"
