"""Event primitives for the discrete-event engine.

Two kinds of object live here:

* :class:`Event` — a one-shot waitable that processes can ``yield`` on.  It
  carries a value once *triggered* and runs its callbacks when the
  environment *processes* it.
* :class:`EventQueue` — the time-ordered heap of :class:`ScheduledItem`\\ s.
  Ties at equal simulated time are broken first by an integer priority and
  then by insertion order, which makes runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, NamedTuple, Optional

#: Sentinel for "event has not been triggered yet".
PENDING = object()

#: Priority used for ordinary events.
NORMAL = 1

#: Priority used for urgent bookkeeping events (process initialization,
#: interrupts) that must run before same-time ordinary events.
URGENT = 0


class Event:
    """A one-shot waitable event.

    An event goes through three stages:

    1. *pending* — created, nothing happened yet;
    2. *triggered* — a value (or exception) has been attached and the event
       has been pushed onto the environment's queue;
    3. *processed* — the environment popped it and ran its callbacks.

    Processes wait on events by ``yield``\\ ing them; the process is resumed
    with the event's value (or the exception is thrown into it).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_seq", "_pooled")

    def __init__(self, env: "Any") -> None:
        self.env = env
        #: Callbacks run when the event is processed.  ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Heap sequence number while scheduled, -1 otherwise.  Cancelling
        #: by sequence (not object identity) makes cancellation an epoch:
        #: it can never leak onto a later schedule of a reused event.
        self._seq: int = -1
        #: True for engine-internal events owned by the environment's
        #: free-list; recycled after processing.  Never set on events
        #: handed to user code.
        self._pooled: bool = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been attached."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._push(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every waiting process.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._push(self, NORMAL)
        return self

    def trigger_direct(self, value: Any = None) -> None:
        """Trigger *and* process in place, bypassing the heap.

        Attaches ``value`` and runs the callbacks immediately, without a
        push/pop round-trip.  This is the delivery primitive for
        same-instant handoffs whose ordering the caller already
        controls: the lockstep batch driver resumes a parked worker this
        way (:mod:`repro.core.lockstep`), and the executor's spin-tick
        driver inlines the same pattern for its steal barrier.  The
        caller must be executing inside the event loop's current step —
        the callbacks run *now*, at ``env.now``, before any queued
        event — and the event must still be pending.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        callbacks = self.callbacks
        self.callbacks = None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class ScheduledItem(NamedTuple):
    """The shape of one heap entry: ``(time, priority, seq)`` orders it.

    ``seq`` is unique, so the ``event`` field is never reached by a
    comparison.  The queue itself stores *plain* tuples of this shape —
    a bare tuple literal constructs measurably faster than a NamedTuple
    and the engine builds one per scheduled event — so treat this class
    as documentation plus a wrapper for code that prefers named fields:
    ``ScheduledItem(*queue.pop())``.
    """

    time: float
    priority: int
    seq: int
    event: Event


class EventQueue:
    """Deterministic time-ordered event heap with lazy cancellation.

    :meth:`cancel` marks a scheduled event defunct without paying an
    O(n) heap removal; defunct entries are dropped when they reach the
    top, and ``len`` never counts them.  The speed model uses this to
    retract superseded completion checks instead of letting stale
    markers pile up on the heap.

    Cancellation is keyed by the event's heap sequence number, not its
    object identity: an ``id()`` key could outlive the event and silently
    cancel an unrelated event allocated at the same address (or a later
    schedule of a pooled event).  The sequence is unique per push, so a
    cancellation can only ever hit the schedule it targeted.
    """

    __slots__ = ("_heap", "_seq", "_defunct", "_free")

    #: Recycled engine-internal events kept for reuse, at most this many.
    FREE_LIST_MAX = 256

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self._defunct: set = set()
        #: Free-list of processed pooled events (see Event._pooled).
        self._free: List[Event] = []

    def __len__(self) -> int:
        return len(self._heap) - len(self._defunct)

    def push(self, time: float, priority: int, event: Event) -> None:
        """Schedule ``event`` for processing at ``time``."""
        seq = self._seq
        event._seq = seq
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._seq = seq + 1

    def cancel(self, event: Event) -> None:
        """Lazily drop a scheduled (untriggered) event from the queue.

        Cancelling an event that is not currently scheduled (never
        pushed, already popped, or already cancelled) is a no-op.
        """
        seq = event._seq
        if seq != -1:
            self._defunct.add(seq)
            event._seq = -1

    def _recycle(self, event: Event) -> None:
        """Reset a processed pooled event and park it on the free-list."""
        event.callbacks = []
        event._value = PENDING
        event._ok = True
        event._seq = -1
        if len(self._free) < self.FREE_LIST_MAX:
            self._free.append(event)

    def _drop_defunct_head(self) -> None:
        heap = self._heap
        defunct = self._defunct
        while heap and heap[0][2] in defunct:
            defunct.discard(heap[0][2])
            event = heapq.heappop(heap)[3]
            if event._pooled:
                self._recycle(event)

    def peek_time(self) -> float:
        """Time of the next live item; raises ``IndexError`` when empty."""
        if self._defunct:
            self._drop_defunct_head()
        return self._heap[0][0]

    def pop(self) -> tuple:
        """Pop the next live ``(time, priority, seq, event)`` tuple."""
        if self._defunct:
            self._drop_defunct_head()
        item = heapq.heappop(self._heap)
        item[3]._seq = -1
        return item
