"""Event primitives for the discrete-event engine.

Two kinds of object live here:

* :class:`Event` — a one-shot waitable that processes can ``yield`` on.  It
  carries a value once *triggered* and runs its callbacks when the
  environment *processes* it.
* :class:`EventQueue` — the time-ordered heap of :class:`ScheduledItem`\\ s.
  Ties at equal simulated time are broken first by an integer priority and
  then by insertion order, which makes runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, NamedTuple, Optional

#: Sentinel for "event has not been triggered yet".
PENDING = object()

#: Priority used for ordinary events.
NORMAL = 1

#: Priority used for urgent bookkeeping events (process initialization,
#: interrupts) that must run before same-time ordinary events.
URGENT = 0


class Event:
    """A one-shot waitable event.

    An event goes through three stages:

    1. *pending* — created, nothing happened yet;
    2. *triggered* — a value (or exception) has been attached and the event
       has been pushed onto the environment's queue;
    3. *processed* — the environment popped it and ran its callbacks.

    Processes wait on events by ``yield``\\ ing them; the process is resumed
    with the event's value (or the exception is thrown into it).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Any") -> None:
        self.env = env
        #: Callbacks run when the event is processed.  ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been attached."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._push(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every waiting process.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._push(self, NORMAL)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class ScheduledItem(NamedTuple):
    """Heap entry: ``(time, priority, seq)`` orders the queue.

    A NamedTuple so heap comparisons run at C tuple speed; ``seq`` is
    unique, so the ``event`` field is never reached by a comparison.
    """

    time: float
    priority: int
    seq: int
    event: Event


class EventQueue:
    """Deterministic time-ordered event heap with lazy cancellation.

    :meth:`cancel` marks a scheduled event defunct without paying an
    O(n) heap removal; defunct entries are dropped when they reach the
    top, and ``len`` never counts them.  The speed model uses this to
    retract superseded completion checks instead of letting stale
    markers pile up on the heap.
    """

    __slots__ = ("_heap", "_seq", "_defunct")

    def __init__(self) -> None:
        self._heap: List[ScheduledItem] = []
        self._seq = 0
        self._defunct: set = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._defunct)

    def push(self, time: float, priority: int, event: Event) -> None:
        """Schedule ``event`` for processing at ``time``."""
        heapq.heappush(self._heap, ScheduledItem(time, priority, self._seq, event))
        self._seq += 1

    def cancel(self, event: Event) -> None:
        """Lazily drop a scheduled (untriggered) event from the queue.

        The caller must have pushed ``event`` exactly once and must not
        push it again; a cancelled event is silently discarded instead of
        being processed.
        """
        self._defunct.add(id(event))

    def _drop_defunct_head(self) -> None:
        while self._heap and id(self._heap[0].event) in self._defunct:
            self._defunct.discard(id(self._heap[0].event))
            heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the next live item; raises ``IndexError`` when empty."""
        if self._defunct:
            self._drop_defunct_head()
        return self._heap[0].time

    def pop(self) -> ScheduledItem:
        """Pop the next live item in (time, priority, seq) order."""
        if self._defunct:
            self._drop_defunct_head()
        return heapq.heappop(self._heap)
