"""Discrete-event simulation engine.

A small, deterministic, simpy-flavoured kernel used as the substrate for the
XiTAO-style runtime simulation.  Only the features the rest of the library
needs are implemented: an event queue with a stable tie-break order, coroutine
processes, timeouts, interruption, and a FIFO :class:`Store` for channels.

The engine is intentionally dependency-free so that a full simulation run is
a pure function of its inputs (see ``DESIGN.md`` §5).
"""

from repro.sim.events import PENDING, Event, EventQueue, ScheduledItem
from repro.sim.environment import Environment, Interrupt, Process, Timeout
from repro.sim.resources import Store

__all__ = [
    "PENDING",
    "Event",
    "EventQueue",
    "ScheduledItem",
    "Environment",
    "Interrupt",
    "Process",
    "Timeout",
    "Store",
]
