"""K-means clustering as a dynamic loop-parallel DAG (paper §4.2.2, Fig. 9).

Each iteration's assignment step is split into loop-partition tasks
(moldable, one per partition); the task holding the largest work unit is
marked high priority, per the paper.  A centroid-update task joins the
partitions and — through its spawn hook — inserts the next iteration's
tasks, making the DAG *dynamic*: tasks are created at runtime, exactly the
irregular-computation mode of §2.

``reference_kmeans`` is a real NumPy K-means used by the examples and to
derive realistic per-partition work weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.dag import TaskGraph
from repro.graph.task import Priority, Task
from repro.kernels.fixed import FixedWorkKernel
from repro.util.rng import SeedLike, make_rng


@dataclass(frozen=True)
class KMeansConfig:
    """Shape of the K-means workload.

    ``op_cost`` converts (points x clusters x features) distance ops into
    work units; the default makes a 16-partition iteration take a few
    milliseconds on a speed-1 core, comparable to the paper's per-iteration
    times.  ``skew`` is the size multiplier of the largest partition (the
    high-priority task's work unit).
    """

    n_points: int = 1_000_000
    n_clusters: int = 5
    n_features: int = 34
    partitions: int = 16
    iterations: int = 100
    op_cost: float = 6.8e-8
    skew: float = 1.6
    update_cost_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.n_points <= 0 or self.n_clusters <= 0 or self.n_features <= 0:
            raise ConfigurationError("n_points/n_clusters/n_features must be positive")
        if self.partitions <= 0 or self.iterations <= 0:
            raise ConfigurationError("partitions/iterations must be positive")
        if self.skew < 1.0:
            raise ConfigurationError(f"skew must be >= 1, got {self.skew}")

    def partition_sizes(self) -> List[int]:
        """Point counts per partition: uniform except one skewed partition."""
        weights = np.ones(self.partitions)
        weights[0] = self.skew
        sizes = np.floor(weights / weights.sum() * self.n_points).astype(int)
        sizes[0] += self.n_points - int(sizes.sum())
        return [int(s) for s in sizes]

    def assign_work(self, points: int) -> float:
        """Work units of an assignment task over ``points`` points."""
        return points * self.n_clusters * self.n_features * self.op_cost

    def update_work(self) -> float:
        """Work units of the centroid-update (reduction) task."""
        return self.assign_work(self.n_points) * self.update_cost_fraction / max(
            1, self.partitions
        )


IterationHook = Callable[[int], None]


def build_kmeans_graph(
    config: KMeansConfig,
    iteration_hooks: Optional[Dict[int, IterationHook]] = None,
) -> TaskGraph:
    """Construct the dynamic K-means DAG.

    Only iteration 0 exists up front; every update task's spawn hook
    inserts the next iteration while the runtime executes.
    ``iteration_hooks`` maps an iteration number to a callback fired when
    that iteration is released — the Fig. 9 harness uses this to switch
    interference on at iteration 20 and off at iteration 70.
    """
    graph = TaskGraph("kmeans")
    sizes = config.partition_sizes()
    hooks = dict(iteration_hooks or {})

    update_kernel = FixedWorkKernel(
        "kmeans-update",
        work=config.update_work(),
        parallel_fraction=0.4,
        memory_intensity=0.3,
    )

    def _emit_iteration(g: TaskGraph, iteration: int, after: Optional[Task]) -> None:
        hook = hooks.get(iteration)
        if hook is not None:
            hook(iteration)
        deps = [after] if after is not None else []
        assigns: List[Task] = []
        # All partitions share one task type ("kmeans-assign") — like
        # XiTAO, where the type is the C++ class — so the PTT sees one
        # table; the skewed partition simply contributes larger samples.
        for p, points in enumerate(sizes):
            kernel = FixedWorkKernel(
                "kmeans-assign",
                work=config.assign_work(points),
                parallel_fraction=0.85,
                memory_intensity=0.35,
                molding_overhead=0.05,
            )
            assigns.append(
                g.add_task(
                    kernel,
                    deps=deps,
                    priority=Priority.HIGH if p == 0 else Priority.LOW,
                    metadata={"iteration": iteration, "partition": p},
                )
            )
        spawn = None
        if iteration + 1 < config.iterations:
            def spawn(g2: TaskGraph, task: Task, nxt=iteration + 1) -> None:
                _emit_iteration(g2, nxt, task)
        g.add_task(
            update_kernel,
            deps=assigns,
            priority=Priority.HIGH,
            metadata={"iteration": iteration, "role": "update"},
            spawn=spawn,
        )

    _emit_iteration(graph, 0, None)
    return graph


def reference_kmeans(
    data: np.ndarray,
    n_clusters: int,
    iterations: int = 20,
    rng: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Plain NumPy Lloyd's algorithm.

    Returns ``(centroids, labels, inertia)``.  Used by the examples to
    show the workload is a genuine computation, and by tests as a
    correctness oracle for the work model's operation counts.
    """
    if data.ndim != 2:
        raise ConfigurationError("data must be 2-D (points x features)")
    n = data.shape[0]
    if not (0 < n_clusters <= n):
        raise ConfigurationError("need 0 < n_clusters <= n_points")
    gen = make_rng(rng)
    centroids = data[gen.choice(n, size=n_clusters, replace=False)].copy()
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        # distances: (n, k)
        d2 = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        for k in range(n_clusters):
            members = data[labels == k]
            if len(members):
                centroids[k] = members.mean(axis=0)
    inertia = float(((data - centroids[labels]) ** 2).sum())
    return centroids, labels, inertia
