"""The paper's synthetic DAG workloads (§4.2.2).

Defaults follow the paper: matmul tiles of 64x64 with 32000 tasks, copy
tiles of 1024x1024 with 10000 tasks, stencil tiles of 1024x1024 with 20000
tasks.  ``scale`` shrinks the task count proportionally for quick runs
(the simulated throughput — tasks/second — is insensitive to the total
count once the PTT has trained, so scaled runs preserve the figures'
shapes).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.graph.dag import TaskGraph
from repro.graph.generators import layered_synthetic_dag
from repro.kernels.copy import CopyKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.stencil import StencilKernel

#: Paper §4.2.2 task counts per kernel class.
PAPER_TASK_COUNTS: Dict[str, int] = {
    "matmul": 32000,
    "copy": 10000,
    "stencil": 20000,
}


def _scaled(total: int, scale: float, parallelism: int) -> int:
    if not (0 < scale <= 1.0):
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    return max(parallelism, int(total * scale))


def paper_matmul_dag(
    parallelism: int, scale: float = 1.0, tile: int = 64
) -> TaskGraph:
    """Matrix-multiplication synthetic DAG (compute-intensive)."""
    return layered_synthetic_dag(
        MatMulKernel(tile=tile),
        parallelism,
        _scaled(PAPER_TASK_COUNTS["matmul"], scale, parallelism),
    )


def paper_copy_dag(
    parallelism: int, scale: float = 1.0, tile: int = 1024
) -> TaskGraph:
    """Copy synthetic DAG (memory-intensive)."""
    return layered_synthetic_dag(
        CopyKernel(tile=tile),
        parallelism,
        _scaled(PAPER_TASK_COUNTS["copy"], scale, parallelism),
    )


def paper_stencil_dag(
    parallelism: int, scale: float = 1.0, tile: int = 1024
) -> TaskGraph:
    """Stencil synthetic DAG (cache-intensive)."""
    return layered_synthetic_dag(
        StencilKernel(tile=tile),
        parallelism,
        _scaled(PAPER_TASK_COUNTS["stencil"], scale, parallelism),
    )


#: Kernel-class name -> DAG factory, as iterated by the Fig. 4/7 harnesses.
synthetic_workloads: Dict[str, Callable[..., TaskGraph]] = {
    "matmul": paper_matmul_dag,
    "copy": paper_copy_dag,
    "stencil": paper_stencil_dag,
}
