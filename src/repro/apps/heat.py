"""Distributed 2D heat diffusion (paper §4.2.2, Fig. 10).

An iterative 2D Jacobi stencil, row-partitioned across MPI ranks.  Per
iteration and rank: one boundary-exchange *communication task* per
neighbour (high priority — "due to the criticality of such communication,
these MPI tasks are marked as high priority tasks") plus a layer of
moldable compute tasks over the rank's row strips.  Dependencies follow
the true stencil data flow: strip ``p`` of iteration *i* needs strips
``p-1..p+1`` of iteration *i-1*; the up/down exchange of iteration *i*
needs only the adjacent boundary strip of *i-1* and gates only that
boundary strip of *i*.  Inner strips therefore pipeline across iterations,
and the exchange tasks sit on the critical chain — which is exactly why
their placement (criticality-aware vs oblivious) moves the Fig. 10 bars.

``reference_heat`` is a real NumPy Jacobi solver used by the examples and
as a numerical oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.distributed.cluster_runtime import NodeHandle
from repro.errors import ConfigurationError
from repro.graph.dag import TaskGraph
from repro.graph.task import Priority, Task
from repro.kernels.fixed import FixedWorkKernel


@dataclass(frozen=True)
class HeatConfig:
    """Shape of the distributed heat workload.

    The grid is ``rows x cols`` doubles, split into ``nodes`` row blocks;
    each block's update layer is split into ``partitions`` tasks.
    ``point_cost`` is work units per grid-point update.
    """

    rows: int = 8192
    cols: int = 8192
    nodes: int = 4
    partitions: int = 16
    iterations: int = 50
    point_cost: float = 2.4e-8
    #: CPU work of one boundary exchange beyond the per-byte cost: MPI
    #: progress, marshalling and cache pollution on the calling core
    #: (Pellegrini et al. [25] — why comm placement matters in Fig. 10).
    comm_base_work: float = 1.0e-2

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("rows/cols must be positive")
        if self.nodes <= 0 or self.partitions <= 0 or self.iterations <= 0:
            raise ConfigurationError("nodes/partitions/iterations must be positive")
        if self.rows % self.nodes != 0:
            raise ConfigurationError(
                f"rows ({self.rows}) must divide evenly over nodes ({self.nodes})"
            )

    @property
    def rows_per_node(self) -> int:
        return self.rows // self.nodes

    @property
    def boundary_bytes(self) -> float:
        """One ghost row of doubles."""
        return self.cols * 8.0

    def compute_work(self) -> float:
        """Work units of one compute partition task."""
        points = self.rows_per_node * self.cols / self.partitions
        return points * self.point_cost


def _exchange_tag(src: int, dst: int, iteration: int) -> int:
    return iteration * 10_000 + src * 100 + dst


def build_heat_graph_builder(
    config: HeatConfig,
) -> Callable[[NodeHandle], TaskGraph]:
    """Return the per-rank graph builder for :class:`DistributedRuntime`."""

    def _builder(handle: NodeHandle) -> TaskGraph:
        from repro.distributed.mpi import CommTaskBuilder

        rank = handle.rank
        graph = TaskGraph(f"heat-node{rank}")
        neighbours = [r for r in (rank - 1, rank + 1) if 0 <= r < config.nodes]
        comm = CommTaskBuilder(
            handle.env,
            handle.speed,
            handle.mpi,
            base_cpu_work=config.comm_base_work,
        )

        # Steep cache cliff: a Jacobi sweep from DRAM is ~3x slower than
        # from the LLC, which is what makes cost-targeted molding pay —
        # aggregating cores shrinks the per-core slice into the L2 share
        # (the paper's anti-oversubscription mechanism, §3.1).
        compute_kernel = FixedWorkKernel(
            "heat-compute",
            work=config.compute_work(),
            parallel_fraction=0.93,
            memory_intensity=0.45,
            working_set=2.0 * config.rows_per_node * config.cols * 8.0
            / config.partitions,
            molding_overhead=0.03,
            l2_penalty=1.2,
            dram_penalty=3.2,
        )
        comm_kernel = comm.comm_kernel(
            "heat-exchange", config.boundary_bytes
        )

        parts = config.partitions
        previous_layer: List[Task] = []
        for iteration in range(config.iterations):
            exchanges: dict = {}
            for peer in neighbours:
                # The up exchange (peer = rank-1) moves strip 0's boundary,
                # the down exchange (peer = rank+1) strip P-1's.
                boundary_strip = 0 if peer < rank else parts - 1
                op = comm.exchange_op(
                    peer,
                    send_tag=_exchange_tag(rank, peer, iteration),
                    recv_tag=_exchange_tag(peer, rank, iteration),
                    size_bytes=config.boundary_bytes,
                )
                deps = (
                    [previous_layer[boundary_strip]] if previous_layer else []
                )
                exchanges[boundary_strip] = graph.add_task(
                    comm_kernel,
                    deps=deps,
                    priority=Priority.HIGH,
                    metadata={
                        "iteration": iteration,
                        "role": "exchange",
                        "peer": peer,
                        "comm_op": op,
                    },
                )
            layer: List[Task] = []
            for p in range(parts):
                deps: List[Task] = []
                if previous_layer:
                    lo, hi = max(0, p - 1), min(parts - 1, p + 1)
                    deps.extend(previous_layer[lo : hi + 1])
                if p in exchanges:
                    deps.append(exchanges[p])
                layer.append(
                    graph.add_task(
                        compute_kernel,
                        deps=deps,
                        priority=Priority.LOW,
                        metadata={
                            "iteration": iteration,
                            "role": "compute",
                            "partition": p,
                        },
                    )
                )
            previous_layer = layer
        return graph

    return _builder


def reference_heat(
    grid: np.ndarray,
    iterations: int = 10,
    boundary: Optional[float] = None,
) -> np.ndarray:
    """Plain NumPy Jacobi iteration on ``grid`` (Dirichlet boundary).

    Returns the final grid.  ``boundary`` optionally overwrites the border
    before iterating.
    """
    if grid.ndim != 2 or min(grid.shape) < 3:
        raise ConfigurationError("grid must be 2-D with shape >= 3x3")
    if iterations < 0:
        raise ConfigurationError("iterations must be >= 0")
    current = grid.astype(np.float64, copy=True)
    if boundary is not None:
        current[0, :] = current[-1, :] = boundary
        current[:, 0] = current[:, -1] = boundary
    nxt = current.copy()
    for _ in range(iterations):
        nxt[1:-1, 1:-1] = 0.25 * (
            current[:-2, 1:-1]
            + current[2:, 1:-1]
            + current[1:-1, :-2]
            + current[1:-1, 2:]
        )
        current, nxt = nxt, current
    return current
