"""Applications (paper §4.2.2): synthetic DAGs, K-means, distributed 2D heat."""

from repro.apps.synthetic import (
    paper_copy_dag,
    paper_matmul_dag,
    paper_stencil_dag,
    synthetic_workloads,
)
from repro.apps.kmeans import KMeansConfig, build_kmeans_graph, reference_kmeans
from repro.apps.heat import HeatConfig, build_heat_graph_builder, reference_heat

__all__ = [
    "paper_matmul_dag",
    "paper_copy_dag",
    "paper_stencil_dag",
    "synthetic_workloads",
    "KMeansConfig",
    "build_kmeans_graph",
    "reference_kmeans",
    "HeatConfig",
    "build_heat_graph_builder",
    "reference_heat",
]
