"""Fault injection as an interference scenario.

:class:`FaultScenario` adapts a :class:`~repro.faults.plan.FaultPlan`
into the :class:`~repro.interference.base.InterferenceScenario` interface
so faults compose with co-runner/DVFS scenarios through the existing
``CompositeScenario`` and the sweep registry.  Installation registers a
:class:`FaultInjector` on the environment (``env.fault_injectors``);
every :class:`~repro.runtime.executor.SimulatedRuntime` later constructed
over the same speed model discovers it there and attaches, arming its
recovery machinery.

The split of responsibilities:

* the **injector** drives the *physics* — fault-scale transitions on the
  speed model (0 for a crash, a fraction for a straggler) at the plan's
  times, plus crash/heal notifications to attached runtimes;
* the **runtime** implements the *systems* response — lease-based death
  detection, queue reclaim, task retry with backoff, PTT invalidation
  (see ``docs/robustness.md``).

An empty plan installs an injector that schedules nothing; runs stay
bit-identical to fault-free ones (property-tested in
``tests/test_faults.py``).
"""

from __future__ import annotations

from typing import List

from repro.faults.plan import CoreCrash, FaultPlan, StragglerWindow
from repro.interference.base import InterferenceScenario
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.sim.environment import Environment


class FaultInjector:
    """Executes one :class:`FaultPlan` against one speed model."""

    def __init__(
        self,
        env: Environment,
        speed: SpeedModel,
        machine: Machine,
        plan: FaultPlan,
    ) -> None:
        plan.validate_for(machine.num_cores)
        self.env = env
        self.speed = speed
        self.machine = machine
        self.plan = plan
        #: Runtimes notified of crash/heal transitions (a live co-runner
        #: setup shares one speed model between two runtimes; a crashed
        #: core is dead for both).
        self._runtimes: List[object] = []

    def attach(self, runtime) -> None:
        """Register a runtime for crash/heal notifications and arm it."""
        self._runtimes.append(runtime)
        runtime.enable_fault_recovery()

    def schedule(self) -> None:
        """Spawn one injection process per plan item (sorted for
        determinism: ties at the same timestamp fire in plan order)."""
        for crash in sorted(self.plan.crashes, key=lambda c: (c.at, c.core)):
            self.env.process(
                self._run_crash(crash), name=f"fault-crash-c{crash.core}"
            )
        for window in sorted(
            self.plan.stragglers, key=lambda s: (s.at, s.cores)
        ):
            self.env.process(
                self._run_straggler(window),
                name=f"fault-straggler-{'-'.join(map(str, window.cores))}",
            )

    def _run_crash(self, crash: CoreCrash):
        yield self.env.timeout(crash.at)
        self.speed.set_fault_scale([crash.core], 0.0)
        for runtime in self._runtimes:
            runtime.on_core_crashed(crash.core)
        if crash.duration is not None:
            yield self.env.timeout(crash.duration)
            self.speed.set_fault_scale([crash.core], 1.0)
            for runtime in self._runtimes:
                runtime.on_core_recovered(crash.core)

    def _run_straggler(self, window: StragglerWindow):
        yield self.env.timeout(window.at)
        self.speed.set_fault_scale(window.cores, window.slowdown)
        yield self.env.timeout(window.duration)
        self.speed.set_fault_scale(window.cores, 1.0)


class FaultScenario(InterferenceScenario):
    """Interference-scenario wrapper around a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> FaultInjector:
        injector = FaultInjector(env, speed, machine, self.plan)
        injectors = getattr(env, "fault_injectors", None)
        if injectors is None:
            injectors = []
            env.fault_injectors = injectors
        injectors.append(injector)
        injector.schedule()
        return injector
