"""Deterministic fault plans.

A :class:`FaultPlan` is a *schedule* of infrastructure failures — core
crashes (transient or permanent) and straggler slowdown windows — fixed
before the simulation starts.  Determinism is the point: the same plan
against the same seed yields the same run, so fault experiments are
cacheable, diffable and bisectable exactly like fault-free ones.  Plans
are plain frozen dataclasses with a JSON round-trip (the sweep registry's
declarative ``{"name": "faults", ...}`` scenario entry builds them from
params), plus a seeded :meth:`FaultPlan.random` generator for chaos
testing.

Message-level faults (drop/delay in the distributed ``Fabric``) live in
:class:`repro.distributed.network.MessageFaultModel` — they attach to a
fabric, not to a machine's speed model, so they are configured on the
:class:`~repro.distributed.cluster_runtime.DistributedRuntime` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng

_INF = float("inf")


@dataclass(frozen=True)
class CoreCrash:
    """Core ``core`` dies at simulated time ``at``.

    ``duration=None`` is a permanent loss; a finite duration models a
    transient outage (worker process restart, thermal shutdown) after
    which the core heals and its worker is respawned.
    """

    core: int
    at: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ConfigurationError(f"crash core must be >= 0, got {self.core}")
        if self.at <= 0:
            raise ConfigurationError(
                f"crash time must be > 0 (workers start at 0), got {self.at}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError(
                f"crash duration must be > 0 or None, got {self.duration}"
            )

    def window(self) -> Tuple[float, float]:
        end = _INF if self.duration is None else self.at + self.duration
        return (self.at, end)


@dataclass(frozen=True)
class StragglerWindow:
    """``cores`` run at ``slowdown`` x their healthy rate for a window.

    Models the paper's "dynamically asymmetric" tail cases the benign
    scenarios don't: a thermally throttled core, a noisy neighbour the
    OS won't migrate, a failing DIMM.  The PTT is expected to adapt —
    no runtime recovery is involved.
    """

    cores: Tuple[int, ...]
    at: float
    duration: float
    slowdown: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "cores", tuple(int(c) for c in self.cores))
        if not self.cores:
            raise ConfigurationError("straggler window needs at least one core")
        if any(c < 0 for c in self.cores):
            raise ConfigurationError(f"straggler cores must be >= 0: {self.cores}")
        if self.at <= 0:
            raise ConfigurationError(
                f"straggler start must be > 0, got {self.at}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"straggler duration must be > 0, got {self.duration}"
            )
        if not (0.0 < self.slowdown < 1.0):
            raise ConfigurationError(
                f"slowdown must be in (0, 1) — 0 is a crash, 1 a no-op; "
                f"got {self.slowdown}"
            )

    def window(self) -> Tuple[float, float]:
        return (self.at, self.at + self.duration)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic failure schedule for one run."""

    crashes: Tuple[CoreCrash, ...] = ()
    stragglers: Tuple[StragglerWindow, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        self._check_overlaps()

    @property
    def empty(self) -> bool:
        return not self.crashes and not self.stragglers

    def _check_overlaps(self) -> None:
        """Reject two fault windows touching the same core at once.

        The injector restores a core's fault scale to 1.0 at window end,
        so overlapping windows on one core would silently cancel each
        other — a plan-authoring bug worth failing loudly on.
        """
        windows: Dict[int, List[Tuple[float, float, str]]] = {}
        for crash in self.crashes:
            start, end = crash.window()
            windows.setdefault(crash.core, []).append((start, end, "crash"))
        for straggler in self.stragglers:
            start, end = straggler.window()
            for core in straggler.cores:
                windows.setdefault(core, []).append((start, end, "straggler"))
        for core, spans in windows.items():
            spans.sort()
            for (s1, e1, k1), (s2, e2, k2) in zip(spans, spans[1:]):
                if s2 < e1:
                    raise ConfigurationError(
                        f"fault plan overlaps on core {core}: {k1} "
                        f"[{s1}, {e1}) and {k2} [{s2}, {e2})"
                    )

    def max_concurrent_crashes(self) -> int:
        """Largest number of cores simultaneously down under this plan."""
        edges = []
        for crash in self.crashes:
            start, end = crash.window()
            edges.append((start, 1))
            if end != _INF:
                edges.append((end, -1))
        edges.sort()
        worst = current = 0
        for _, delta in edges:
            current += delta
            worst = max(worst, current)
        return worst

    def validate_for(self, num_cores: int) -> None:
        """Check the plan fits a machine and leaves it schedulable."""
        for crash in self.crashes:
            if crash.core >= num_cores:
                raise ConfigurationError(
                    f"crash core {crash.core} outside machine "
                    f"(num_cores={num_cores})"
                )
        for straggler in self.stragglers:
            for core in straggler.cores:
                if core >= num_cores:
                    raise ConfigurationError(
                        f"straggler core {core} outside machine "
                        f"(num_cores={num_cores})"
                    )
        if self.max_concurrent_crashes() >= num_cores:
            raise ConfigurationError(
                "fault plan kills every core at once; nothing could execute"
            )

    # ------------------------------------------------------------------
    # JSON round-trip (the registry's declarative scenario shape)
    # ------------------------------------------------------------------
    def to_params(self) -> Dict[str, object]:
        return {
            "crashes": [
                [c.core, c.at, c.duration] for c in self.crashes
            ],
            "stragglers": [
                [list(s.cores), s.at, s.duration, s.slowdown]
                for s in self.stragglers
            ],
        }

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "FaultPlan":
        """Build a plan from the JSON shape ``to_params`` emits."""
        crashes = tuple(
            CoreCrash(core=int(core), at=float(at),
                      duration=None if duration is None else float(duration))
            for core, at, duration in params.get("crashes", ())
        )
        stragglers = tuple(
            StragglerWindow(cores=tuple(int(c) for c in cores), at=float(at),
                            duration=float(duration), slowdown=float(slowdown))
            for cores, at, duration, slowdown in params.get("stragglers", ())
        )
        return cls(crashes=crashes, stragglers=stragglers)

    # ------------------------------------------------------------------
    # seeded chaos generator
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: SeedLike,
        num_cores: int,
        horizon: float,
        crashes: int = 1,
        stragglers: int = 1,
        transient_fraction: float = 0.5,
        slowdown_range: Tuple[float, float] = (0.2, 0.6),
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan for chaos testing.

        Crashes land mid-run (``(0.1, 0.7) * horizon``), at most one per
        core and never on every core at once; stragglers only hit cores
        that do not also crash (the overlap check rejects such plans).
        Same seed, same plan — chaos runs stay cacheable.
        """
        if num_cores < 2:
            raise ConfigurationError(
                "chaos plans need >= 2 cores (one must survive)"
            )
        rng = make_rng(seed)
        crash_items: List[CoreCrash] = []
        cores = rng.permutation(num_cores)[: min(crashes, num_cores - 1)]
        for core in cores:
            at = float(rng.uniform(0.1, 0.7) * horizon)
            transient = bool(rng.random() < transient_fraction)
            duration = float(rng.uniform(0.1, 0.3) * horizon) if transient else None
            crash_items.append(CoreCrash(core=int(core), at=at, duration=duration))
        crashed = {c.core for c in crash_items}
        straggler_items: List[StragglerWindow] = []
        candidates = [c for c in range(num_cores) if c not in crashed]
        for _ in range(stragglers):
            if not candidates:
                break
            core = int(candidates[int(rng.integers(len(candidates)))])
            lo, hi = slowdown_range
            straggler_items.append(
                StragglerWindow(
                    cores=(core,),
                    at=float(rng.uniform(0.1, 0.5) * horizon),
                    duration=float(rng.uniform(0.2, 0.4) * horizon),
                    slowdown=float(rng.uniform(lo, hi)),
                )
            )
            candidates.remove(core)
        plan = cls(crashes=tuple(crash_items), stragglers=tuple(straggler_items))
        plan.validate_for(num_cores)
        return plan
