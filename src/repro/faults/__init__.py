"""repro.faults — deterministic fault injection and chaos plans.

The fourth interference axis: beyond co-runners, DVFS and live
co-scheduled runtimes, real dynamically-asymmetric environments *lose*
cores, stall workers and drop messages.  A :class:`FaultPlan` schedules
such failures deterministically; :class:`FaultScenario` installs them
through the standard interference interface so they compose with every
other scenario; the runtime's recovery machinery (lease-expiry death
detection, queue reclaim, retry with backoff, PTT invalidation) turns
them into degraded-but-correct runs.  See ``docs/robustness.md``.
"""

from repro.faults.plan import CoreCrash, FaultPlan, StragglerWindow
from repro.faults.scenario import FaultInjector, FaultScenario

__all__ = [
    "CoreCrash",
    "StragglerWindow",
    "FaultPlan",
    "FaultInjector",
    "FaultScenario",
]
