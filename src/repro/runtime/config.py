"""Runtime tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RuntimeConfig:
    """Overheads and behaviour of the simulated runtime.

    Attributes
    ----------
    dispatch_overhead:
        Seconds a worker spends running the scheduling decision after
        dequeuing a ready task (the paper measures ~1 microsecond for a
        global PTT search on the TX2).
    steal_overhead:
        Seconds for a successful steal (victim scan + re-placement).
    steal_tries:
        Random victims probed per steal attempt.  1 reproduces classic
        random work stealing (and XiTAO); a failed attempt sends the
        worker into a backoff-retry loop while any ready queue is
        non-empty.  Owners always drain their own queues, so low values
        cost latency, not liveness.
    steal_backoff:
        Seconds an idle worker waits between failed steal attempts while
        stealable work may still exist; with empty queues everywhere the
        worker instead sleeps until new work is signalled.
    measurement_noise:
        Standard deviation, in seconds, of the observation noise added to
        the elapsed times fed into the PTT.  Models clock granularity and
        short isolated events; this is what makes the PTT weight-ratio
        sensitivity (paper §5.3) visible for very short tasks.  The noise
        affects only the *observed* value, never the actual timing.
    noise_seed:
        Seed of the observation-noise stream.
    max_time:
        Safety horizon (seconds of simulated time) after which a run
        aborts; prevents a buggy policy from hanging a test run.
    lease_timeout:
        Simulated seconds between a worker's crash and the runtime
        confirming it dead (the heartbeat/lease model: a worker that
        stops renewing its lease is declared lost one lease period
        later).  Recovery — queue reclaim, task retry, PTT invalidation
        — happens at detection, not at the crash instant.
    max_task_retries:
        How many times one task may be re-enqueued after dying with its
        worker before the run fails with
        :class:`~repro.errors.TaskRetryExhausted`.
    retry_backoff:
        Base simulated delay before a reclaimed in-flight task re-enters
        a ready queue; doubles per retry of the same task (exponential
        backoff).  Tasks reclaimed from a dead worker's WSQ (never
        started) re-enqueue immediately.
    """

    dispatch_overhead: float = 2.0e-6
    steal_overhead: float = 1.5e-6
    steal_tries: int = 1
    steal_backoff: float = 2.0e-5
    measurement_noise: float = 0.0
    noise_seed: int = 12345
    max_time: float = 1.0e5
    lease_timeout: float = 5.0e-3
    max_task_retries: int = 3
    retry_backoff: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.dispatch_overhead < 0:
            raise ConfigurationError("dispatch_overhead must be >= 0")
        if self.steal_overhead < 0:
            raise ConfigurationError("steal_overhead must be >= 0")
        if self.steal_tries < 1:
            raise ConfigurationError("steal_tries must be >= 1")
        if self.steal_backoff <= 0:
            raise ConfigurationError("steal_backoff must be > 0")
        if self.measurement_noise < 0:
            raise ConfigurationError("measurement_noise must be >= 0")
        if self.max_time <= 0:
            raise ConfigurationError("max_time must be > 0")
        if self.lease_timeout <= 0:
            raise ConfigurationError("lease_timeout must be > 0")
        if self.max_task_retries < 0:
            raise ConfigurationError("max_task_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0")
