"""The simulated XiTAO-style runtime.

One :class:`SimulatedRuntime` executes one task graph over one machine with
one scheduling policy.  Worker processes (one per core) run the XiTAO loop:

1. drain the local Assembly Queue (joining moldable assemblies, which
   synchronize all member cores for the task's duration);
2. else dequeue from the local Work-Stealing Queue and run the policy's
   placement decision (Algorithm 1), inserting the resulting assembly into
   the AQs of all member cores;
3. else steal the oldest *stealable* task from a random victim's WSQ and
   re-run the placement at the thief's core (Figure 3, steps 3-5);
4. else sleep until new work is signalled (queue pushes and AQ inserts
   wake idle workers, so no polling is needed).

Task commit (Figure 3, step 8) happens in the work-completion callback: the
leader-observed elapsed time trains the policy's model, dependents are
released and routed to WSQs by ``policy.on_ready``, and member workers
resume.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.core.policies.base import SchedulerPolicy
from repro.errors import RuntimeStateError, SchedulingError, TaskRetryExhausted
from repro.graph.dag import TaskGraph
from repro.graph.task import Task
from repro.kernels.base import WorkProfile
from repro.machine.speed import SpeedModel
from repro.machine.topology import ExecutionPlace, Machine
from repro.metrics.collector import TraceCollector
from repro.metrics.records import TaskRecord
from repro.profile.phases import active_phases
from repro.runtime.assembly import Assembly
from repro.runtime.config import RuntimeConfig
from repro.runtime.queues import WorkStealingQueue
from repro.sim.environment import Environment, Interrupt, Process
from repro.sim.events import Event, NORMAL, PENDING
from repro.trace.events import (
    DecisionEvent,
    QueueReclaimEvent,
    QueueSampleEvent,
    RunMarkEvent,
    StealEvent,
    TaskExecEvent,
    TaskRetryEvent,
    WorkerLostEvent,
    WorkerRecoveredEvent,
    WorkerStateEvent,
)
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.rng import SeedLike, make_rng, spawn_rngs

#: Spin-tick verdict delivered through the worker's barrier event when
#: the worker should re-run its loop top (own work appeared / shutdown).
#: Any other verdict is the stolen task itself.
_SPIN_RECHECK = object()


def _noop() -> None:
    """Stand-in for collector counter methods in lean-records mode."""


@dataclass
class RunResult:
    """Outcome of one simulated run.

    ``extra`` carries run-specific attachments (e.g. the bound scheduler
    instance, for PTT introspection after the run).
    """

    makespan: float
    tasks_completed: int
    throughput: float
    collector: TraceCollector
    scheduler_name: str
    machine_name: str
    extra: Dict[str, object] = field(default_factory=dict)


class SimulatedRuntime:
    """Executes a :class:`TaskGraph` on a machine under a policy.

    Parameters
    ----------
    env, machine:
        The simulation environment and machine topology.
    graph:
        The task graph (may grow dynamically through spawn hooks).
    scheduler:
        A :class:`SchedulerPolicy`; it is bound to the machine here.
    config:
        Runtime overheads; defaults to :class:`RuntimeConfig()`.
    speed:
        An existing :class:`SpeedModel` to share (e.g. with an
        interference scenario or a co-running runtime); one is created
        when omitted.
    seed:
        Seed of the stealing / noise randomness.
    name:
        Label used in error messages and traces.
    tracer:
        A :class:`repro.trace.Tracer`; the default shared
        :data:`~repro.trace.NULL_TRACER` records nothing and keeps the
        run bit-identical to an untraced one (tracing never consumes
        randomness or schedules events).  An enabled tracer is threaded
        into the policy's PTT store and the speed model, and receives
        worker-state, queue-depth, steal, decision and task events.
    """

    def __init__(
        self,
        env: Environment,
        machine: Machine,
        graph: TaskGraph,
        scheduler: SchedulerPolicy,
        config: Optional[RuntimeConfig] = None,
        speed: Optional[SpeedModel] = None,
        seed: SeedLike = 0,
        name: str = "runtime",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.machine = machine
        self.graph = graph
        self.scheduler = scheduler
        self.config = config or RuntimeConfig()
        self.speed = speed or SpeedModel(env, machine)
        self.name = name
        self.collector = TraceCollector(machine.num_cores)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled
        #: Active profiling phase timer, captured once at construction
        #: (None in unprofiled runs — every hook is one predicate).
        self._phases = active_phases()
        if self._tracing:
            self.tracer.clock = lambda: env.now
            # Share the tracer with a speed model built elsewhere (e.g. by
            # an interference harness) unless it already carries one.
            if not self.speed.tracer.enabled:
                self.speed.tracer = self.tracer

        scheduler.bind(
            machine,
            rng=make_rng(seed),
            clock=lambda: env.now,
            backlog=self._backlog,
            tracer=self.tracer,
        )

        n = machine.num_cores
        worker_rngs = spawn_rngs(make_rng(seed), n + 2)
        self._steal_rngs = worker_rngs[:n]
        self._noise_rng = worker_rngs[n]
        self._wake_rng = worker_rngs[n + 1]
        #: Pre-drawn victim slots per thief (single-probe stealing only).
        #: ``Generator.integers(lo, hi, size=k)`` consumes the bit stream
        #: exactly like k scalar draws, so buffering is stream-identical
        #: to drawing one victim per attempt — it just amortizes the
        #: numpy call overhead across 64 steal attempts.
        self._steal_buf: List = [None] * n
        self._steal_idx: List[int] = [0] * n
        self._num_cores = n
        self._steal_tries_eff = min(self.config.steal_tries, n - 1) if n > 1 else 0

        self.wsqs: List[WorkStealingQueue] = [WorkStealingQueue(c) for c in range(n)]
        self.aqs: List[Deque[Assembly]] = [deque() for _ in range(n)]
        self._core_busy_now: List[bool] = [False] * n
        #: Worker loop states ("exec"/"poll"/"steal"/"idle"); the same
        #: transitions feed :meth:`snapshot` and (when enabled) the tracer,
        #: so live polling and a recorded trace always agree.
        self._worker_state: List[str] = ["idle"] * n
        self._current_assembly: List[Optional[Assembly]] = [None] * n
        self._idle_events: Dict[int, Event] = {}
        self._ready_time: Dict[int, float] = {}
        #: Total tasks currently parked across all WSQs, maintained at the
        #: push/pop/steal/reclaim sites so the steal-backoff decision is
        #: O(1) instead of scanning every queue.
        self._wsq_total = 0
        # Spin-tick driver state (single-probe steal fast path only; see
        # _worker_loop).  A worker's steal-backoff wake is scheduled as a
        # plain callback event — the "spin tick" — instead of a generator
        # resume; these maps let any tick locate every spinner's RNG
        # buffer and pending tick so provably-missing spins can be
        # fast-forwarded without touching the event loop (_spin_collapse).
        self._spin_rng: List[Optional[list]] = [None] * n
        self._spin_integers: List[Optional[Callable]] = [None] * n
        self._spin_push: List[Optional[Callable]] = [None] * n
        #: Heap sequence number of each in-flight spin tick, and the
        #: reverse map seq -> spinning core used to recognize tick heap
        #: entries.  Sequence numbers are unique per push, so an entry can
        #: never alias a recycled event's later schedule.
        self._spin_tick_seq: List[int] = [-1] * n
        self._spin_ticks: Dict[int, int] = {}
        #: Memoized kernel cost profiles.  ``KernelModel.profile`` is pure
        #: in (kernel, machine, place) and the machine is fixed for the
        #: executor's lifetime, so profiles are computed once per distinct
        #: (kernel instance, place) pair.  Keying on the kernel object
        #: itself (identity hash) keeps it alive, so ids cannot be reused.
        self._profile_cache: Dict[tuple, WorkProfile] = {}
        self._shutdown = False
        self._started = False
        self._start_time = 0.0
        self._root_rr = 0
        #: Lockstep batch-driver state (see :meth:`arm_lockstep`); None
        #: keeps every decision and commit on the scalar path.
        self._lockstep_run = None
        #: Lean-records mode: skip TaskRecord construction and collector
        #: accounting (lockstep batches whose metric demands are record
        #: free; see repro.sweep.registry.RECORD_FREE_METRICS).
        self._lean_records = False
        #: Observers called with each TaskRecord as tasks commit.
        self.on_task_commit: List[Callable[[TaskRecord], None]] = []
        #: Run-specific attachments carried into every RunResult built by
        #: :meth:`result` (the bound scheduler is always included there).
        self.extra: Dict[str, object] = {}

        # Fault-recovery state.  Everything below is inert (and every
        # hot-path branch reads one False bool) until a
        # :class:`~repro.faults.FaultInjector` installed on this
        # environment attaches itself — with faults off the runtime is
        # bit-identical to a build without this machinery.
        self._faults_enabled = False
        self._workers: List[Optional[Process]] = [None] * n
        #: ``_crashed``: the fault hit (worker halted, lease ticking);
        #: ``_dead``: lease expired, loss confirmed, recovery done.
        self._crashed: List[bool] = [False] * n
        self._dead: List[bool] = [False] * n
        self._crash_epoch: List[int] = [0] * n
        self._crash_time: List[float] = [0.0] * n
        self._fault_stats: Dict[str, object] = {
            "workers_lost": 0,
            "workers_recovered": 0,
            "tasks_reclaimed": 0,
            "tasks_retried": 0,
            "recovery_latencies": [],
        }
        # Telemetry handles, bound at construction (cold paths only —
        # with the default null registry these are shared no-ops, and
        # recording never touches RNGs or the event queue, so results
        # are bit-identical with metrics on or off).
        from repro.telemetry.registry import get_registry

        _reg = get_registry()
        self._m_workers_lost = _reg.counter(
            "runtime_workers_lost_total",
            "Simulated workers confirmed lost after lease expiry",
        )
        self._m_workers_recovered = _reg.counter(
            "runtime_workers_recovered_total",
            "Simulated workers that rejoined after recovery",
        )
        self._m_tasks_reclaimed = _reg.counter(
            "runtime_tasks_reclaimed_total",
            "Queued tasks reclaimed from lost workers",
        )
        self._m_tasks_retried = _reg.counter(
            "runtime_tasks_retried_total",
            "In-flight tasks re-executed after their worker died",
        )
        injectors = getattr(env, "fault_injectors", None)
        if injectors:
            for injector in injectors:
                if injector.speed is self.speed:
                    injector.attach(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed the root tasks and spawn the worker processes."""
        if self._started:
            raise RuntimeStateError(f"{self.name} already started")
        self._started = True
        self._start_time = self.env.now
        if self._tracing:
            self.tracer.emit(
                RunMarkEvent(t=self.env.now, label="start", detail=self.name)
            )
        for task in sorted(self.graph.drain_ready(), key=lambda t: t.priority):
            self._enqueue_ready(task, waker_core=self._next_root_core())
        for core in range(self.machine.num_cores):
            self._workers[core] = self.env.process(
                self._worker(core), name=f"{self.name}-w{core}"
            )

    def arm_lockstep(self, run_state, lean_records: bool = False) -> None:
        """Attach a lockstep batch driver's per-run state.

        ``run_state`` (a ``repro.core.lockstep`` run handle) intercepts
        batchable placement decisions and PTT-fold commits: the worker
        loops route them through ``run_state.decide`` /
        ``run_state.decide_steal`` and :meth:`_finish_assembly` parks
        fold-eligible commits on it, so the driver can answer whole
        batches with one runs-axis numpy pass.  Must be called before
        the workers start; the driver (not :meth:`run`) then advances
        the event loop.  ``lean_records`` additionally skips all
        per-task record keeping (only valid when the run's metric
        demands never read it).
        """
        if self._started:
            raise RuntimeStateError(
                f"{self.name}: lockstep must be armed before start()"
            )
        self._lockstep_run = run_state
        self._lean_records = bool(lean_records)

    def run(self) -> RunResult:
        """Drive the simulation until the graph finishes; returns the result.

        Creates the workers if :meth:`start` was not called.  Raises
        :class:`RuntimeStateError` on deadlock (no pending events while
        tasks remain) or when ``config.max_time`` is exceeded.
        """
        if not self._started:
            self.start()
        deadline = self._start_time + self.config.max_time
        phases = self._phases
        if phases is not None:
            phases.push("sim-loop")
        # The event loop below is env.step() inlined (heappop raises
        # IndexError exactly when no live events remain): this loop runs
        # once per simulated event, so per-event method-call overhead is
        # measurable.  Defunct (cancelled) heads are dropped before each
        # pop, exactly as EventQueue.pop does.
        env = self.env
        queue = env._queue
        heap = queue._heap
        heappop = heapq.heappop
        try:
            while not self._shutdown:
                if queue._defunct:
                    queue._drop_defunct_head()
                try:
                    item = heappop(heap)
                except IndexError:
                    raise RuntimeStateError(
                        f"{self.name}: deadlock — no pending events but "
                        f"{self.graph.total_tasks - self.graph.completed_tasks} "
                        "tasks remain"
                    )
                env._now = item[0]
                event = item[3]
                event._seq = -1
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._pooled:
                    queue._recycle(event)
                if env._now > deadline:
                    raise RuntimeStateError(
                        f"{self.name}: exceeded max_time={self.config.max_time}"
                    )
        finally:
            if phases is not None:
                phases.pop()
        return self.result()

    def result(self) -> RunResult:
        """Build the :class:`RunResult` for a finished (or ongoing) run.

        ``extra`` always carries the bound scheduler handle (for PTT
        introspection) plus any attachments placed in :attr:`extra`, so
        repeated calls return consistently populated results.
        """
        makespan = self.env.now - self._start_time
        done = self.graph.completed_tasks
        if self._faults_enabled:
            self.extra["fault_stats"] = self.fault_stats()
        return RunResult(
            makespan=makespan,
            tasks_completed=done,
            throughput=(done / makespan) if makespan > 0 else 0.0,
            collector=self.collector,
            scheduler_name=self.scheduler.name,
            machine_name=self.machine.name,
            extra={"scheduler": self.scheduler, **self.extra},
        )

    @property
    def finished(self) -> bool:
        return self._shutdown

    def snapshot(self) -> Dict[str, object]:
        """Debug view of the runtime's current state.

        Per-core queue depths, worker loop states, the assembly each core
        is currently inside, and graph progress — useful when diagnosing a
        stalled custom policy or workload.  ``worker_states`` and
        ``current_assembly`` read the exact state the tracer's
        worker-state events are emitted from, so a live poll and a
        recorded trace can never disagree.
        """
        return {
            "now": self.env.now,
            "tasks_done": self.graph.completed_tasks,
            "tasks_total": self.graph.total_tasks,
            "wsq_depths": [len(q) for q in self.wsqs],
            "aq_depths": [len(q) for q in self.aqs],
            "busy": list(self._core_busy_now),
            "worker_states": list(self._worker_state),
            "current_assembly": [
                None if a is None else a.assembly_id
                for a in self._current_assembly
            ],
            "current_task": [
                None if a is None else a.task.task_id
                for a in self._current_assembly
            ],
            "idle_workers": sorted(self._idle_events),
            "steals": self.collector.steals,
        }

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _set_state(self, core: int, state: str) -> None:
        """Record a worker loop-state transition (snapshot + tracer)."""
        if self._worker_state[core] != state:
            self._worker_state[core] = state
            if self._tracing:
                self.tracer.emit(
                    WorkerStateEvent(t=self.env.now, core=core, state=state)
                )

    def _worker(self, core: int):
        try:
            yield from self._worker_loop(core)
        except Interrupt:
            # The fault injector killed this worker: fall through to the
            # terminal state.  Its queues are reclaimed at lease expiry.
            pass
        if self._crashed[core] or self._dead[core]:
            self._set_state(core, "dead")

    def _worker_loop(self, core: int):
        # Everything loop-invariant is hoisted into locals: this loop is
        # the hottest code in the simulator and each load of an unchanged
        # attribute costs as much as the work it guards.  The deque behind
        # the WSQ is stable for the queue's lifetime, so reading it
        # directly also skips a method call per iteration.
        config = self.config
        env = self.env
        wsq = self.wsqs[core]
        aq = self.aqs[core]
        items = wsq._items
        tracing = self._tracing  # fixed at construction
        phases = self._phases
        scheduler = self.scheduler
        current_assembly = self._current_assembly
        core_busy = self._core_busy_now
        dispatch_overhead = config.dispatch_overhead
        steal_overhead = config.steal_overhead
        steal_backoff = config.steal_backoff
        worker_state = self._worker_state
        # Single-probe steal fast path: with the default one-try scan and
        # neither tracing nor faults armed, the whole probe inlines here
        # with its RNG buffer held in loop locals (the generator frame
        # keeps them alive across yields).  Draws, outcomes and counter
        # updates are stream-identical to _try_steal — only the attribute
        # traffic is gone.  Any other configuration falls back to the
        # method.
        wsqs = self.wsqs
        n_cores = self._num_cores
        inline_steal = (
            self._steal_tries_eff == 1
            and n_cores > 1
            and not tracing
            and not self._faults_enabled
        )
        steal_integers = self._steal_rngs[core].integers if inline_steal else None
        allow_steal = scheduler.allow_steal
        # Lockstep batch-driver hooks (None on the scalar path, where the
        # decision sites below reduce to one is-None check each).  With
        # decision parking off the driver never answers queries, so the
        # sites revert to direct policy calls — the wrapper hop is pure
        # overhead then.  (Fold parking reads self._lockstep_run itself.)
        lockstep = self._lockstep_run
        if lockstep is not None and not lockstep.decisions:
            lockstep = None
        if self._lean_records:
            record_steal = _noop
            record_failed_scan = _noop
        else:
            record_steal = self.collector.record_steal
            record_failed_scan = self.collector.record_failed_scan
        # Spin-tick driver (inline-steal configurations only): the
        # steal-backoff wait is scheduled as a pooled callback event
        # instead of a generator sleep.  The tick callback replays the
        # loop-top decision sequence for an empty-handed worker in the
        # steal state — same draws, same counters, same heap schedule —
        # and only resumes this generator when the outcome needs it
        # (stolen task, own work appeared, or queues drained to idle).
        # Misses stay inside the callback, which costs a fraction of a
        # generator resume, and consecutive provably-missing ticks are
        # fast-forwarded wholesale by _spin_collapse.
        sbuf = [None, 64]  # shared RNG buffer: [victim slots, next index]
        spin_tick = None
        barrier = None
        if inline_steal:
            queue = env._queue
            qfree = queue._free
            spin_ticks = self._spin_ticks
            spin_tick_seq = self._spin_tick_seq
            self._spin_rng[core] = sbuf
            self._spin_integers[core] = steal_integers
            # The barrier is yielded on while a tick is in flight.  It is
            # never scheduled: the tick callback triggers it directly, so
            # the resume runs inside the tick's own heap slot, exactly
            # where the original sleep resume ran.
            barrier = Event(env)

            def wake(verdict):
                callbacks = barrier.callbacks
                barrier.callbacks = None
                barrier._value = verdict
                for callback in callbacks:
                    callback(barrier)

            def push_tick(at):
                free = qfree
                if free:
                    tick = free.pop()
                else:
                    tick = Event(env)
                    tick._pooled = True
                tick.callbacks.append(spin_tick)
                seq = queue._seq
                spin_tick_seq[core] = seq
                spin_ticks[seq] = core
                queue.push(at, NORMAL, tick)

            idle_events = self._idle_events

            def register_idle():
                # Driver-mode _register_idle: the parked event's callback
                # is idle_tick, so a wake probes (and possibly re-parks)
                # without resuming the generator.
                free = qfree
                if free:
                    parked = free.pop()
                else:
                    parked = Event(env)
                    parked._pooled = True
                parked.callbacks.append(idle_tick)
                idle_events[core] = parked

            def probe_and_park():
                # The shared tail of a wake: one victim probe, then a hit
                # hand-off, the next backoff tick, or going idle — the
                # exact loop-top sequence for an empty-handed worker
                # already in the steal state.
                buf, idx = sbuf
                if idx >= 64:
                    buf = steal_integers(0, n_cores - 1, size=64)
                    sbuf[0] = buf
                    idx = 0
                sbuf[1] = idx + 1
                slot = buf[idx]
                victim = int(slot) + (1 if slot >= core else 0)
                if wsqs[victim]._items:
                    stolen = wsqs[victim].steal(allow_steal)
                    if stolen is not None:
                        self._wsq_total -= 1
                        record_steal()
                        wake(stolen)
                        return
                record_failed_scan()
                if self._wsq_total > 0:
                    if self._any_stealable():
                        push_tick(env._now + steal_backoff)
                    else:
                        self._spin_collapse(core, env._now + steal_backoff)
                else:
                    if worker_state[core] != "idle":
                        worker_state[core] = "idle"
                    register_idle()

            def spin_tick(_tick):
                # One steal-backoff wake.  Divert back to the generator
                # the moment anything else needs doing, otherwise probe.
                spin_ticks.pop(spin_tick_seq[core], None)
                if self._shutdown or items or aq:
                    wake(_SPIN_RECHECK)
                    return
                probe_and_park()

            def idle_tick(_parked):
                # An idle wake (queue push / AQ insert / shutdown).  The
                # loop top would transition idle -> steal and probe; a
                # miss parks the worker again with no generator resume —
                # which is what makes waking every idle worker on a
                # stealable push cheap.
                if self._shutdown or items or aq:
                    wake(_SPIN_RECHECK)
                    return
                if worker_state[core] != "steal":
                    worker_state[core] = "steal"
                probe_and_park()

            self._spin_push[core] = push_tick
        while not self._shutdown:
            # A pending high-priority task in the local WSQ is dispatched
            # before joining further assemblies: its placement decision
            # (Algorithm 1) must not languish behind queued work.
            tail = items[-1] if items else None
            has_urgent = tail is not None and tail.is_high_priority

            if aq and not has_urgent:
                assembly = aq.popleft()
                if worker_state[core] != "exec":
                    worker_state[core] = "exec"
                    if tracing:
                        self.tracer.emit(
                            WorkerStateEvent(t=env.now, core=core, state="exec")
                        )
                current_assembly[core] = assembly
                if tracing:
                    self.tracer.emit(
                        QueueSampleEvent(
                            t=env.now, core=core,
                            wsq=len(wsq), aq=len(aq), op="aq_pop",
                        )
                    )
                core_busy[core] = True
                if assembly.join(core):
                    self._start_assembly(assembly)
                yield assembly.completed
                core_busy[core] = False
                current_assembly[core] = None
                continue

            task = items.pop() if items else None
            if task is not None:
                self._wsq_total -= 1
                if worker_state[core] != "poll":
                    worker_state[core] = "poll"
                    if tracing:
                        self.tracer.emit(
                            WorkerStateEvent(t=env.now, core=core, state="poll")
                        )
                if tracing:
                    self.tracer.emit(
                        QueueSampleEvent(
                            t=env.now, core=core,
                            wsq=len(wsq), aq=len(aq), op="pop",
                        )
                    )
                if dispatch_overhead > 0:
                    yield env.sleep(dispatch_overhead)
                if phases is not None:
                    phases.push("policy-search")
                if lockstep is None:
                    place = scheduler.choose_place(task, core)
                else:
                    # A gate means the driver parked this decision to
                    # answer it batched across runs; the yield suspends
                    # exactly where the scalar search would have run and
                    # resumes with the (bit-identical) place.
                    place = lockstep.decide(task, core)
                    if place.__class__ is Event:
                        place = yield place
                if phases is not None:
                    phases.pop()
                self._dispatch(task, place, core, stolen=False)
                continue

            if worker_state[core] != "steal":
                worker_state[core] = "steal"
                if tracing:
                    self.tracer.emit(
                        WorkerStateEvent(t=env.now, core=core, state="steal")
                    )
            if inline_steal:
                buf, idx = sbuf
                if idx >= 64:
                    buf = steal_integers(0, n_cores - 1, size=64)
                    sbuf[0] = buf
                    idx = 0
                sbuf[1] = idx + 1
                slot = buf[idx]
                victim = int(slot) + (1 if slot >= core else 0)
                stolen = None
                if wsqs[victim]._items:
                    stolen = wsqs[victim].steal(allow_steal)
                    if stolen is not None:
                        self._wsq_total -= 1
                        record_steal()
                if stolen is None:
                    record_failed_scan()
            else:
                stolen = self._try_steal(core)
            if stolen is not None:
                if steal_overhead > 0:
                    yield env.sleep(steal_overhead)
                if phases is not None:
                    phases.push("policy-search")
                if lockstep is None:
                    place = scheduler.place_after_steal(stolen, core)
                else:
                    place = lockstep.decide_steal(stolen, core)
                    if place.__class__ is Event:
                        place = yield place
                if phases is not None:
                    phases.pop()
                self._dispatch(stolen, place, core, stolen=True)
                continue

            if spin_tick is not None:
                # Tick-driver mode: hand the whole empty-handed episode
                # (backoff spins and idle parks alike) to the callbacks;
                # the generator only resumes when the episode ends with a
                # stolen task or with something to re-check.
                if self._wsq_total > 0:
                    push_tick(env._now + steal_backoff)
                else:
                    if worker_state[core] != "idle":
                        worker_state[core] = "idle"
                    register_idle()
                verdict = yield barrier
                barrier.callbacks = []
                barrier._value = PENDING
                if verdict is _SPIN_RECHECK:
                    continue
                # The driver stole a task: finish the hit exactly as the
                # inline path above does.
                if steal_overhead > 0:
                    yield env.sleep(steal_overhead)
                if phases is not None:
                    phases.push("policy-search")
                if lockstep is None:
                    place = scheduler.place_after_steal(verdict, core)
                else:
                    place = lockstep.decide_steal(verdict, core)
                    if place.__class__ is Event:
                        place = yield place
                if phases is not None:
                    phases.pop()
                self._dispatch(verdict, place, core, stolen=True)
            elif self._wsq_total > 0:
                # Some queue still holds tasks (wrong victim, or only
                # steal-exempt work): back off briefly and retry, like a
                # spinning work-stealing loop.
                yield env.sleep(steal_backoff)
            else:
                if worker_state[core] != "idle":
                    worker_state[core] = "idle"
                    if tracing:
                        self.tracer.emit(
                            WorkerStateEvent(t=env.now, core=core, state="idle")
                        )
                yield self._register_idle(core)

    def _try_steal(self, thief: int) -> Optional[Task]:
        """Probe up to ``config.steal_tries`` random victims for a task."""
        n = self._num_cores
        if n <= 1:
            return None
        tries = self._steal_tries_eff
        if tries == 1:
            # Stream-identical to choice(n-1, size=1, replace=False)[0]
            # for numpy's Generator, without the choice() setup cost —
            # the common single-probe configuration (see _steal_buf).
            buf = self._steal_buf[thief]
            idx = self._steal_idx[thief]
            if buf is None or idx >= 64:
                buf = self._steal_rngs[thief].integers(0, n - 1, size=64)
                self._steal_buf[thief] = buf
                idx = 0
            self._steal_idx[thief] = idx + 1
            slots = (int(buf[idx]),)
        else:
            slots = self._steal_rngs[thief].choice(n - 1, size=tries, replace=False)
        for slot in slots:
            victim = int(slot) + (1 if slot >= thief else 0)
            if not self.wsqs[victim]._items:
                continue
            task = self.wsqs[victim].steal(self.scheduler.allow_steal)
            if task is not None:
                self._wsq_total -= 1
                self.collector.record_steal()
                if self._tracing:
                    self.tracer.emit(
                        StealEvent(
                            t=self.env.now, thief=thief, victim=victim,
                            task_id=task.task_id, outcome="hit",
                        )
                    )
                    self.tracer.emit(
                        QueueSampleEvent(
                            t=self.env.now, core=victim,
                            wsq=len(self.wsqs[victim]),
                            aq=len(self.aqs[victim]), op="stolen",
                        )
                    )
                return task
        self.collector.record_failed_scan()
        if self._tracing:
            self.tracer.emit(
                StealEvent(
                    t=self.env.now, thief=thief, victim=-1,
                    task_id=-1, outcome="miss",
                )
            )
        return None

    def _any_stealable(self) -> bool:
        """True when some WSQ holds a task the policy lets thieves take.

        ``allow_steal`` depends only on the task (never on the thief), so
        a False answer proves *every* worker's next probe misses no
        matter which victim it draws — the precondition for
        :meth:`_spin_collapse`.
        """
        allow = self.scheduler.allow_steal
        for wsq in self.wsqs:
            items = wsq._items
            if items:
                for task in items:
                    if allow(task):
                        return True
        return False

    def _spin_collapse(self, core: int, phase: float) -> None:
        """Fast-forward steal-backoff spins that are provable misses.

        Called from ``core``'s spin tick after a failed probe when no
        queued task anywhere is stealable.  Until another event mutates
        queue state, every backoff wake — this worker's and any other
        spinner's — repeats the same guaranteed miss, whose only effects
        are one victim draw from the spinner's own RNG stream and one
        failed-scan count.  Those wakes are simulated here in a tight
        loop and each affected spinner gets a single tick re-scheduled
        at its first wake at or after the next real event:

        * draws advance each spinner's private buffered stream exactly
          as its ticks would (streams are independent, so interleaving
          order across spinners cannot matter);
        * wake times are accumulated by the same repeated addition the
          per-tick schedule uses, keeping every float bit-exact;
        * only ticks of spinners whose own queues are still empty are
          consumed — a tick that would divert back to its generator is
          left in place and ends the frozen window;
        * re-scheduled ticks are pushed in ascending (time, prior tick
          seq) order, reproducing the relative heap order the per-tick
          schedule would have given ticks that land at equal times.
        """
        env = self.env
        queue = env._queue
        heap = queue._heap
        defunct = queue._defunct
        heappop = heapq.heappop
        backoff = self.config.steal_backoff
        ticks = self._spin_ticks
        rng = self._spin_rng
        integers = self._spin_integers
        wsqs = self.wsqs
        aqs = self.aqs
        n1 = self._num_cores - 1
        virtual = {core: (phase, self._spin_tick_seq[core])}
        scans = 0
        while heap:
            head = heap[0]
            seq = head[2]
            if seq in defunct:
                defunct.discard(seq)
                dead = heappop(heap)[3]
                if dead._pooled:
                    queue._recycle(dead)
                continue
            owner = ticks.get(seq)
            if owner is None or wsqs[owner]._items or aqs[owner]:
                # A real event, or a spinner with work of its own: the
                # frozen window ends here.
                break
            heappop(heap)
            del ticks[seq]
            queue._recycle(head[3])
            cell = rng[owner]
            idx = cell[1]
            if idx >= 64:
                cell[0] = integers[owner](0, n1, size=64)
                idx = 0
            cell[1] = idx + 1
            scans += 1
            virtual[owner] = (head[0] + backoff, seq)
        if heap:
            head_time = heap[0][0]
            for owner, (t, order) in list(virtual.items()):
                if t < head_time:
                    cell = rng[owner]
                    draw = integers[owner]
                    idx = cell[1]
                    while t < head_time:
                        if idx >= 64:
                            cell[0] = draw(0, n1, size=64)
                            idx = 0
                        idx += 1
                        scans += 1
                        t += backoff
                    cell[1] = idx
                    virtual[owner] = (t, order)
        push = self._spin_push
        for owner, (t, _order) in sorted(
            virtual.items(), key=lambda kv: (kv[1][0], kv[1][1])
        ):
            push[owner](t)
        if scans and not self._lean_records:
            self.collector.record_failed_scans(scans)

    # ------------------------------------------------------------------
    # dispatch & execution
    # ------------------------------------------------------------------
    def _profile_for(self, kernel, place: ExecutionPlace) -> WorkProfile:
        """Cached :meth:`KernelModel.profile` for this machine."""
        key = (kernel, place)
        profile = self._profile_cache.get(key)
        if profile is None:
            profile = kernel.profile(self.machine, place)
            self._profile_cache[key] = profile
        return profile

    def _dispatch(
        self,
        task: Task,
        place: ExecutionPlace,
        deciding_core: int,
        stolen: bool,
    ) -> None:
        """Wrap ``task`` in an assembly at ``place`` and enqueue it."""
        if self._faults_enabled:
            place = self._remap_dead_place(place, deciding_core)
        cores = self.machine.place_cores(place)  # validates unknown places
        profile = self._profile_for(task.kernel, place)
        if self._tracing:
            self._emit_decision(task, place, deciding_core, stolen)
        assembly = Assembly(self.env, task, place, cores, profile)
        if not self._lean_records:
            assembly.task.metadata.setdefault("_dequeue_time", self.env.now)
            task.metadata["_stolen"] = stolen
        # Plain FIFO append for every priority: assemblies must keep the
        # same relative order in all member AQs (a priority jump past an
        # assembly that another member has already joined deadlocks the
        # rendezvous).
        for member in cores:
            self.aqs[member].append(assembly)
            if self._tracing:
                self.tracer.emit(
                    QueueSampleEvent(
                        t=self.env.now, core=member,
                        wsq=len(self.wsqs[member]),
                        aq=len(self.aqs[member]), op="aq_push",
                    )
                )
        self._wake(cores)

    def _emit_decision(
        self,
        task: Task,
        place: ExecutionPlace,
        deciding_core: int,
        stolen: bool,
    ) -> None:
        """Trace one placement decision (tracer-enabled path only).

        Captures the per-place PTT predictions the policy saw, whether the
        chosen place was unexplored (exploration vs exploitation), and the
        rate-oracle's fastest place for the decision-quality metric.
        Everything here is pure reads — no randomness, no sim events.
        """
        predictions: tuple = ()
        exploration = False
        if self.scheduler.ptt is not None:
            table = self.scheduler.ptt.table(task.type_name)
            predictions = tuple(
                (p.leader, p.width, table.predict(p))
                for p in self.machine.places
            )
            exploration = table.samples(place) == 0
        oracle_leader, oracle_width = -1, -1
        best = float("inf")
        for p in self.machine.places:
            prof = self._profile_for(task.kernel, p)
            est = self.speed.estimate_time(
                self.machine.place_cores(p), prof.work,
                memory_intensity=prof.memory_intensity,
            )
            if est < best:
                best = est
                oracle_leader, oracle_width = p.leader, p.width
        self.tracer.emit(
            DecisionEvent(
                t=self.env.now,
                task_id=task.task_id,
                type_name=task.type_name,
                core=deciding_core,
                leader=place.leader,
                width=place.width,
                kind="steal" if stolen else "dequeue",
                priority="high" if task.is_high_priority else "low",
                exploration=exploration,
                predictions=predictions,
                oracle_leader=oracle_leader,
                oracle_width=oracle_width,
            )
        )

    def _start_assembly(self, assembly: Assembly) -> None:
        """All members joined: run the task's work (or communication op)."""
        assembly.exec_start = self.env.now
        comm_op = assembly.task.metadata.get("comm_op")
        if comm_op is not None:
            done = comm_op(assembly)
            if not isinstance(done, Event):
                raise SchedulingError(
                    f"comm_op of {assembly.task!r} must return a sim Event"
                )
        else:
            work = self.speed.begin_work(
                assembly.cores,
                assembly.profile.work,
                memory_intensity=assembly.profile.memory_intensity,
                demand=assembly.profile.demand,
            )
            assembly.work = work
            done = work.done

        def _on_done(event: Event, a=assembly) -> None:
            if a.aborted:
                # Recovery already re-routed this task; a late completion
                # (e.g. a comm op resolving after the abort) must not
                # commit it a second time.
                return
            # A comm op may report a "billable" time (local protocol +
            # wire, excluding the wait for the peer) as the event value;
            # that is what trains the PTT — an elapsed time dominated by
            # peer skew says nothing about this core's speed.
            override = event._value if isinstance(event._value, float) else None
            self._finish_assembly(a, observed_override=override)

        done.callbacks.append(_on_done)

    def _finish_assembly(
        self, assembly: Assembly, observed_override: Optional[float] = None
    ) -> None:
        """Commit: train the model, release dependents, wake members."""
        assembly.exec_end = self.env.now
        true_elapsed = assembly.exec_end - assembly.exec_start
        observed = (
            observed_override if observed_override is not None else true_elapsed
        )
        if self.config.measurement_noise > 0:
            observed += float(
                self._noise_rng.normal(0.0, self.config.measurement_noise)
            )
            observed = max(observed, 1e-9)
        task = assembly.task
        lockstep = self._lockstep_run
        if lockstep is not None and lockstep.folds:
            # Park the commit on the driver: the PTT fold happens there
            # as one runs-axis vector op over every run that committed
            # this round, then the driver calls _commit_tail — at the
            # same sim time, with the same state, in the same order
            # relative to this run's other events as the scalar path.
            lockstep.park_commit(assembly, task, observed)
            return
        self.scheduler.on_complete(task, assembly.place, observed)
        self._commit_tail(assembly, task, observed)

    def _commit_tail(
        self, assembly: Assembly, task: Task, observed: float
    ) -> None:
        """Post-fold half of the commit: record, release, wake.

        Split from :meth:`_finish_assembly` so the lockstep driver can
        interpose the batched PTT fold between the two halves; on the
        scalar path the pair runs back-to-back and is line-for-line the
        previous single method.
        """
        if not self._lean_records:
            md = task.metadata
            record = TaskRecord(
                task_id=task.task_id,
                type_name=task.type_name,
                priority=task.priority,
                place=assembly.place,
                ready_time=self._ready_time.pop(task.task_id, self._start_time),
                dequeue_time=md.get("_dequeue_time", assembly.exec_start),
                exec_start=assembly.exec_start,
                exec_end=assembly.exec_end,
                observed=observed,
                stolen=bool(md.get("_stolen", False)),
                metadata={k: v for k, v in md.items() if not k.startswith("_")},
            )
            # collector.record_task inlined (joined_at is always populated
            # for assemblies built here): one bound-method dispatch less
            # per task on the busiest commit path, identical accounting.
            collector = self.collector
            collector.records.append(record)
            joined_at = assembly.joined_at
            end = assembly.exec_end
            core_busy = collector.core_busy
            exec_start = assembly.exec_start
            for core in assembly.cores:
                core_busy[core] += end - joined_at.get(core, exec_start)
            if self._faults_enabled:
                crashed_at = task.metadata.pop("_crashed_at", None)
                if crashed_at is not None:
                    self._fault_stats["recovery_latencies"].append(
                        self.env.now - crashed_at
                    )
            if self._tracing:
                self.tracer.emit(
                    TaskExecEvent(
                        t=self.env.now,
                        task_id=task.task_id,
                        type_name=task.type_name,
                        leader=assembly.leader,
                        width=assembly.width,
                        cores=assembly.cores,
                        exec_start=assembly.exec_start,
                        exec_end=assembly.exec_end,
                        priority="high" if task.is_high_priority else "low",
                        stolen=record.stolen,
                    )
                )
            for observer in self.on_task_commit:
                observer(record)

        newly_ready = self.graph.complete(task)
        # Low-priority children are pushed first so the waker's LIFO pop
        # reaches the critical child immediately; the lows sit at the steal
        # end of the queue for idle workers.  (complete() hands us a fresh
        # drained list, so sorting in place is safe.)
        if len(newly_ready) > 1:
            newly_ready.sort(key=lambda t: t.priority)
        for child in newly_ready:
            self._enqueue_ready(child, waker_core=assembly.leader)

        assembly.completed.succeed()
        if self.graph.is_finished:
            self._shutdown = True
            if self._tracing:
                self.tracer.emit(
                    RunMarkEvent(
                        t=self.env.now, label="finish", detail=self.name
                    )
                )
            self._wake_all_idle()

    def _enqueue_ready(self, task: Task, waker_core: int) -> None:
        """Route a released task to a WSQ per the policy's wake-up rule."""
        if not self._lean_records:
            self._ready_time[task.task_id] = self.env.now
        target = self.scheduler.on_ready(task, waker_core)
        if not (0 <= target < self.machine.num_cores):
            raise SchedulingError(
                f"{self.scheduler.name}.on_ready returned invalid core {target}"
            )
        if self._faults_enabled and self._dead[target]:
            target = self._live_fallback(waker_core)
        self.wsqs[target].push(task)
        self._wsq_total += 1
        if self._tracing:
            self.tracer.emit(
                QueueSampleEvent(
                    t=self.env.now, core=target,
                    wsq=len(self.wsqs[target]),
                    aq=len(self.aqs[target]), op="push",
                )
            )
        # Only workers that can act on the push are woken: the target core
        # always; the other (idle) workers only when the task is actually
        # stealable — a steal-exempt task would just bounce them through a
        # futile victim scan and a backoff timeout.
        if self.scheduler.allow_steal(task):
            self._wake_all_idle()
        else:
            self._wake((target,))

    def _backlog(self, core: int) -> float:
        """Load estimate used to break ties in global placement searches."""
        return (
            len(self.wsqs[core])
            + len(self.aqs[core])
            + (1.0 if self._core_busy_now[core] else 0.0)
        )

    def _next_root_core(self) -> int:
        core = self._root_rr % self.machine.num_cores
        self._root_rr += 1
        return core

    # ------------------------------------------------------------------
    # fault recovery
    # ------------------------------------------------------------------
    def enable_fault_recovery(self) -> None:
        """Arm the recovery machinery (called by an attaching injector)."""
        self._faults_enabled = True

    def fault_stats(self) -> Dict[str, object]:
        """JSON-safe summary of fault-recovery activity this run."""
        latencies = self._fault_stats["recovery_latencies"]
        return {
            "workers_lost": self._fault_stats["workers_lost"],
            "workers_recovered": self._fault_stats["workers_recovered"],
            "tasks_reclaimed": self._fault_stats["tasks_reclaimed"],
            "tasks_retried": self._fault_stats["tasks_retried"],
            "tasks_recovered": (
                self._fault_stats["tasks_reclaimed"]
                + self._fault_stats["tasks_retried"]
            ),
            "recovery_latency_mean": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "recovery_latency_max": max(latencies) if latencies else 0.0,
        }

    def on_core_crashed(self, core: int) -> None:
        """A fault hit ``core`` *now*: halt its worker, start its lease.

        The rest of the system does not react yet — detection (and all
        recovery) happens one ``config.lease_timeout`` later, when the
        missing heartbeat confirms the loss.  A transient fault that
        heals inside the lease window (see :meth:`on_core_recovered`)
        renews the lease and recovery never triggers.
        """
        if self._crashed[core] or self._shutdown:
            return
        self._crashed[core] = True
        self._crash_epoch[core] += 1
        self._crash_time[core] = self.env.now
        self._idle_events.pop(core, None)
        worker = self._workers[core]
        if worker is not None and worker.is_alive:
            worker.interrupt("core-crashed")
        self._workers[core] = None
        self._core_busy_now[core] = False
        epoch = self._crash_epoch[core]
        lease = self.env.timeout(self.config.lease_timeout)
        lease.callbacks.append(
            lambda _ev, core=core, epoch=epoch: self._on_lease_expired(
                core, epoch
            )
        )

    def _on_lease_expired(self, core: int, epoch: int) -> None:
        """Heartbeat deadline passed; confirm the loss unless it healed."""
        if self._shutdown or self._dead[core]:
            return
        if not self._crashed[core] or self._crash_epoch[core] != epoch:
            return  # the worker came back and renewed its lease
        self._handle_worker_lost(core)

    def _handle_worker_lost(self, core: int) -> None:
        """Confirmed loss: invalidate the PTT, reclaim queues, retry work."""
        now = self.env.now
        crashed_at = self._crash_time[core]
        self._dead[core] = True
        self._fault_stats["workers_lost"] += 1
        self._m_workers_lost.inc()

        if self.scheduler.ptt is not None:
            self.scheduler.ptt.mark_core_lost(core)

        # Salvage the ready tasks still parked in the dead worker's WSQ.
        reclaimed: List[Task] = []
        wsq = self.wsqs[core]
        while True:
            task = wsq.pop_local()
            if task is None:
                break
            self._wsq_total -= 1
            reclaimed.append(task)
        reclaimed.reverse()  # restore push (FIFO) order

        # Every assembly with the dead core among its members is doomed:
        # the rendezvous can never complete (queued) or the work can
        # never finish (in flight, its member rate is now zero).
        doomed: Dict[int, Assembly] = {}
        for queue in self.aqs:
            for assembly in queue:
                if core in assembly.cores:
                    doomed[assembly.assembly_id] = assembly
        for current in self._current_assembly:
            if current is not None and core in current.cores:
                doomed[current.assembly_id] = current
        if doomed:
            for queue in self.aqs:
                if any(a.assembly_id in doomed for a in queue):
                    # Workers hold references to their deques; filter in
                    # place rather than rebinding.
                    survivors = [
                        a for a in queue if a.assembly_id not in doomed
                    ]
                    queue.clear()
                    queue.extend(survivors)
        self._current_assembly[core] = None

        if self._tracing:
            self.tracer.emit(
                WorkerLostEvent(
                    t=now, core=core, crashed_at=crashed_at,
                    reclaimed=len(reclaimed) + len(doomed),
                )
            )
            self.tracer.emit(
                QueueReclaimEvent(
                    t=now, core=core, wsq=len(reclaimed), aq=len(doomed),
                )
            )

        # Never-started tasks re-enqueue immediately and do not burn the
        # retry budget; they were victims of placement, not execution.
        self._fault_stats["tasks_reclaimed"] += len(reclaimed)
        if reclaimed:
            self._m_tasks_reclaimed.inc(len(reclaimed))
        for task in reclaimed:
            task.metadata.setdefault("_crashed_at", crashed_at)
            self._requeue_recovered(task, core)

        # In-flight (or rendezvousing) tasks are aborted and re-executed
        # under the retry budget with exponential backoff.
        for assembly_id in sorted(doomed):
            assembly = doomed[assembly_id]
            if assembly.work is not None:
                self.speed.cancel_work(assembly.work)
            assembly.aborted = True
            self._retry_task(assembly.task, core)
            if not assembly.completed.triggered:
                # Release any live members blocked on the rendezvous.
                assembly.completed.succeed()

        # Live idle workers may now have salvaged work to pick up.
        self._wake_all_idle()

    def _retry_task(self, task: Task, dead_core: int) -> None:
        """Re-enqueue an in-flight task after backoff; enforce the budget."""
        attempt = int(task.metadata.get("_retries", 0)) + 1
        if attempt > self.config.max_task_retries:
            raise TaskRetryExhausted(task.task_id, attempt)
        task.metadata["_retries"] = attempt
        task.metadata.setdefault("_crashed_at", self._crash_time[dead_core])
        backoff = self.config.retry_backoff * (2 ** (attempt - 1))
        self._fault_stats["tasks_retried"] += 1
        self._m_tasks_retried.inc()
        if self._tracing:
            self.tracer.emit(
                TaskRetryEvent(
                    t=self.env.now,
                    task_id=task.task_id,
                    type_name=task.type_name,
                    core=dead_core,
                    attempt=attempt,
                    backoff=backoff,
                )
            )
        if backoff > 0:
            delay = self.env.timeout(backoff)
            delay.callbacks.append(
                lambda _ev, task=task, core=dead_core: (
                    self._requeue_recovered(task, core)
                )
            )
        else:
            self._requeue_recovered(task, dead_core)

    def _requeue_recovered(self, task: Task, dead_core: int) -> None:
        """Land a recovered task back in a live ready queue."""
        if self._shutdown:
            return
        self._enqueue_ready(task, waker_core=self._live_fallback(dead_core))

    def on_core_recovered(self, core: int) -> None:
        """A transient fault healed: renew the lease or respawn the worker."""
        if not self._crashed[core] or self._shutdown:
            return
        self._crashed[core] = False
        was_dead = self._dead[core]
        self._dead[core] = False
        if was_dead:
            self._fault_stats["workers_recovered"] += 1
            self._m_workers_recovered.inc()
            if self.scheduler.ptt is not None:
                self.scheduler.ptt.mark_core_recovered(core)
        if self._tracing:
            self.tracer.emit(
                WorkerRecoveredEvent(
                    t=self.env.now, core=core,
                    down_for=self.env.now - self._crash_time[core],
                )
            )
        if self._started:
            self._workers[core] = self.env.process(
                self._worker(core), name=f"{self.name}-w{core}"
            )

    def _live_fallback(self, preferred: int) -> int:
        """``preferred`` if alive, else the lowest-numbered live core."""
        if not self._dead[preferred]:
            return preferred
        for core in range(self.machine.num_cores):
            if not self._dead[core]:
                return core
        raise RuntimeStateError(
            f"{self.name}: every core has been lost; nothing can execute"
        )

    def _remap_dead_place(
        self, place: ExecutionPlace, deciding_core: int
    ) -> ExecutionPlace:
        """Reroute a placement that touches a confirmed-dead core.

        PTT invalidation steers model-driven policies away on its own;
        this is the hard guarantee that covers model-free policies (RWS,
        FA) and the window before a fresh PTT sample exists.
        """
        cores = self.machine.place_cores(place)
        if not any(self._dead[c] for c in cores):
            return place
        return ExecutionPlace(self._live_fallback(deciding_core), 1)

    # ------------------------------------------------------------------
    # idle management
    # ------------------------------------------------------------------
    def _register_idle(self, core: int) -> Event:
        # Pooled: only this dict holds the event until it is succeeded,
        # and the waiting worker's generator drops its reference when
        # resumed, so recycling after processing is safe.
        event = self.env._pooled_event()
        self._idle_events[core] = event
        return event

    def _wake(self, cores) -> None:
        """Wake idle workers among ``cores`` in random order.

        The wake order decides who wins a steal race at the same
        timestamp; randomizing it keeps stealing fair across cores
        (otherwise low-numbered cores would win every race).
        """
        idle = self._idle_events
        targets = [c for c in cores if c in idle]
        if not targets:
            return
        if len(targets) > 1:
            self._wake_rng.shuffle(targets)
        for core in targets:
            idle.pop(core).succeed()

    def _wake_all_idle(self) -> None:
        """Wake every idle worker (randomized order, like :meth:`_wake`)."""
        idle = self._idle_events
        if not idle:
            return
        targets = sorted(idle)
        if len(targets) > 1:
            self._wake_rng.shuffle(targets)
        for core in targets:
            idle.pop(core).succeed()
