"""Moldable task assemblies.

Once a ready task has been assigned an execution place, the runtime wraps
it in an :class:`Assembly` and inserts a reference into the AQ of every
member core.  Member workers *join* the assembly as they reach it in FIFO
order; when the last member joins, the work is started on the speed model
and all members stay synchronized until it completes (the SPMD semantics of
XiTAO task assemblies).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from repro.errors import RuntimeStateError
from repro.graph.task import Task
from repro.kernels.base import WorkProfile
from repro.machine.topology import ExecutionPlace
from repro.sim.environment import Environment
from repro.sim.events import Event


class Assembly:
    """One placed execution of a task over a set of cores."""

    _ids = itertools.count()

    __slots__ = (
        "assembly_id",
        "env",
        "task",
        "place",
        "cores",
        "profile",
        "created_at",
        "exec_start",
        "exec_end",
        "completed",
        "joined_at",
        "work",
        "aborted",
    )

    def __init__(
        self,
        env: Environment,
        task: Task,
        place: ExecutionPlace,
        cores: Tuple[int, ...],
        profile: WorkProfile,
    ) -> None:
        self.assembly_id = next(Assembly._ids)
        self.env = env
        self.task = task
        self.place = place
        self.cores = cores
        self.profile = profile
        self.created_at = env.now
        self.exec_start: Optional[float] = None
        self.exec_end: Optional[float] = None
        #: Succeeds when the task has committed (bookkeeping done); all
        #: member workers wait on this.
        self.completed: Event = Event(env)
        #: Per-core arrival time at the rendezvous; a member occupies its
        #: core from this instant until completion (the occupancy window
        #: the metrics layer charges).
        self.joined_at: dict = {}
        #: The in-flight :class:`~repro.machine.speed.ActiveWork` handle
        #: once all members have joined (None before the work starts and
        #: for communication assemblies).  Recovery cancels it when a
        #: member core dies mid-execution.
        self.work = None
        #: Set by the recovery path when a member core died: the task
        #: will be re-executed elsewhere, surviving members must release
        #: their cores, and the completion must not commit the task.
        self.aborted = False

    @property
    def leader(self) -> int:
        return self.place.leader

    @property
    def width(self) -> int:
        return self.place.width

    def join(self, core: int) -> bool:
        """Register ``core``'s arrival; True when this was the last member."""
        if core not in self.cores:
            raise RuntimeStateError(
                f"core {core} is not a member of assembly {self.assembly_id} "
                f"on {self.place}"
            )
        if core in self.joined_at:
            raise RuntimeStateError(
                f"core {core} joined assembly {self.assembly_id} twice"
            )
        self.joined_at[core] = self.env.now
        return len(self.joined_at) == len(self.cores)

    @property
    def all_joined(self) -> bool:
        return len(self.joined_at) == len(self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Assembly #{self.assembly_id} task={self.task.task_id} "
            f"{self.place} joined={len(self.joined_at)}/{len(self.cores)}>"
        )
