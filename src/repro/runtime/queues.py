"""Per-worker queues."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.graph.task import Task


class WorkStealingQueue:
    """A worker's double-ended ready queue.

    The owner pushes and pops at the tail (LIFO, depth-first execution for
    locality); thieves steal from the head (FIFO, breadth-first stealing),
    skipping tasks the policy marks steal-exempt (high-priority tasks,
    paper §4.1.2).
    """

    __slots__ = ("owner", "_items")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._items: Deque[Task] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def push(self, task: Task) -> None:
        """Owner-side push (tail)."""
        self._items.append(task)

    def pop_local(self) -> Optional[Task]:
        """Owner-side pop (tail); ``None`` when empty."""
        if self._items:
            return self._items.pop()
        return None

    def steal(self, stealable: Callable[[Task], bool]) -> Optional[Task]:
        """Thief-side removal of the oldest task satisfying ``stealable``.

        Returns ``None`` when no eligible task exists.
        """
        for i, task in enumerate(self._items):
            if stealable(task):
                del self._items[i]
                return task
        return None

    def peek_tail(self) -> Optional[Task]:
        """The task the owner would pop next, without removing it."""
        if self._items:
            return self._items[-1]
        return None

    def peek_all(self) -> tuple:
        """Snapshot of the queue contents (tests and metrics)."""
        return tuple(self._items)
