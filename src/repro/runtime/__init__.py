"""Simulated XiTAO-style runtime (paper §4.1.2).

Each worker (one per core) owns a Work-Stealing Queue (WSQ) of ready tasks
and a FIFO Assembly Queue (AQ) of placed task assemblies.  A worker loop
mirrors XiTAO: drain the AQ (joining moldable assemblies that synchronize
all member cores), else dequeue from the local WSQ and run the scheduling
policy to pick an execution place, else steal a low-priority task from a
random victim, else sleep until new work is signalled.

High-priority tasks are exempt from stealing so their placement decision is
honored; low-priority tasks are load-balanced by random work stealing.
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.queues import WorkStealingQueue
from repro.runtime.assembly import Assembly
from repro.runtime.executor import RunResult, SimulatedRuntime

__all__ = [
    "RuntimeConfig",
    "WorkStealingQueue",
    "Assembly",
    "RunResult",
    "SimulatedRuntime",
]
