"""DVFS governors driving per-core frequency scales over simulated time.

The runtime has no control over — and receives no notification of — these
frequency changes (paper §1: "DVFS activity that is beyond control of the
runtime system"); it can only observe their effect through task elapsed
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment
from repro.util.validation import require_in_range, require_positive


@dataclass(frozen=True)
class PeriodicSquareWave:
    """Frequency schedule alternating between a high and a low scale.

    The paper's §5.2 scenario: the TX2 Denver cluster toggles between
    2035 MHz and 345 MHz with a 10 s full period (5 s high + 5 s low), i.e.
    ``high_scale=1.0, low_scale=345/2035, half_period=5.0``.
    """

    high_scale: float = 1.0
    low_scale: float = 345.0 / 2035.0
    half_period: float = 5.0
    start_high: bool = True

    def __post_init__(self) -> None:
        require_in_range(self.high_scale, 0.0, 1.0, "high_scale")
        require_in_range(self.low_scale, 0.0, 1.0, "low_scale")
        if self.low_scale <= 0 or self.high_scale <= 0:
            raise ConfigurationError("frequency scales must be positive")
        require_positive(self.half_period, "half_period")

    def scale_at(self, t: float) -> float:
        """Frequency scale at absolute time ``t`` (t < 0 treated as 0)."""
        if t < 0:
            t = 0.0
        phase = int(t // self.half_period) % 2
        first = self.high_scale if self.start_high else self.low_scale
        second = self.low_scale if self.start_high else self.high_scale
        return first if phase == 0 else second


class DvfsGovernor:
    """A simulation process applying a square-wave schedule to cores.

    Parameters
    ----------
    cores:
        The core ids whose frequency toggles (e.g. the Denver cluster).
    wave:
        The schedule.
    until:
        Optional absolute stop time; frequency is restored to the high
        scale afterwards.
    """

    def __init__(
        self,
        env: Environment,
        speed: SpeedModel,
        cores: Sequence[int],
        wave: PeriodicSquareWave = PeriodicSquareWave(),
        until: Optional[float] = None,
    ) -> None:
        if not cores:
            raise ConfigurationError("governor needs at least one core")
        self.env = env
        self.speed = speed
        self.cores: Tuple[int, ...] = tuple(cores)
        self.wave = wave
        self.until = until
        self.toggles = 0
        self._process = env.process(self._run(), name="dvfs-governor")

    def _run(self):
        wave = self.wave
        first = wave.high_scale if wave.start_high else wave.low_scale
        second = wave.low_scale if wave.start_high else wave.high_scale
        current = first
        self.speed.set_freq_scale(self.cores, current)
        while self.until is None or self.env.now < self.until:
            yield self.env.timeout(wave.half_period)
            if self.until is not None and self.env.now >= self.until:
                break
            current = second if current == first else first
            self.speed.set_freq_scale(self.cores, current)
            self.toggles += 1
        self.speed.set_freq_scale(self.cores, wave.high_scale)
