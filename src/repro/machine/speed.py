"""Time-varying core speeds and exact work integration.

Dynamic asymmetry enters the simulation here.  Each core's effective rate is

``rate(c, t) = base_speed(c) * freq_scale(c, t) * cpu_share(c, t)``

where ``freq_scale`` models DVFS and ``cpu_share`` models time-sharing with
co-running processes.  Rates are piecewise constant: they change only at
discrete events (a governor toggling frequency, a co-runner arriving or
leaving).

Work executes through :meth:`SpeedModel.begin_work`: an *assembly* spanning a
set of cores advances at the rate of its slowest member (members synchronize
like an SPMD region — the paper's moldable tasks), further scaled by memory
bandwidth contention on the assembly's domain.  Whenever any rate or demand
changes, all in-flight work is re-timed: remaining work is advanced under the
old rate and the completion is re-scheduled under the new one.  Task
durations therefore respond to interference exactly when it happens, which
is what the runtime's Performance Trace Table observes.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, RuntimeStateError
from repro.machine.topology import Machine
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.trace.events import SpeedEvent
from repro.trace.tracer import NULL_TRACER, Tracer

_EPS = 1e-9


class ActiveWork:
    """A unit of in-flight work registered with the :class:`SpeedModel`.

    Attributes
    ----------
    done:
        Event succeeding (with the elapsed wall time) when the work
        completes.
    cores:
        Member core ids; the work advances at the slowest member's rate.
    remaining:
        Work units still to execute (updated lazily at re-time points).
    memory_intensity:
        Fraction in [0, 1] of the work that is memory-bandwidth bound.
    demand:
        Bandwidth demand registered on the domain while running.
    """

    _ids = itertools.count()

    __slots__ = (
        "work_id",
        "cores",
        "remaining",
        "memory_intensity",
        "demand",
        "domain",
        "done",
        "started_at",
        "_rate",
        "_version",
        "_marker",
    )

    def __init__(
        self,
        env: Environment,
        cores: Tuple[int, ...],
        work: float,
        memory_intensity: float,
        demand: float,
        domain: str,
    ) -> None:
        self.work_id = next(ActiveWork._ids)
        self.cores = cores
        self.remaining = work
        self.memory_intensity = memory_intensity
        self.demand = demand
        self.domain = domain
        self.done: Event = Event(env)
        self.started_at = env.now
        self._rate = 0.0
        self._version = 0
        #: The pending completion-check event, cancelled on re-time.
        self._marker: Optional[Event] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ActiveWork #{self.work_id} cores={self.cores} "
            f"remaining={self.remaining:.3g} rate={self._rate:.3g}>"
        )


class SpeedModel:
    """Tracks dynamic core rates and integrates work over them.

    An enabled ``tracer`` turns every dynamic-asymmetry transition (DVFS
    frequency scale, co-runner CPU share, external bandwidth demand) into
    a :class:`~repro.trace.events.SpeedEvent`.  The attribute may also be
    attached after construction (the runtime does this when it carries a
    tracer and shares an existing speed model).
    """

    def __init__(
        self, env: Environment, machine: Machine, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.env = env
        self.machine = machine
        self.tracer = tracer
        n = machine.num_cores
        self._freq_scale: List[float] = [1.0] * n
        self._cpu_share: List[float] = [1.0] * n
        #: Persistent bandwidth demand per domain from interference sources.
        self._external_demand: Dict[str, float] = {
            d: 0.0 for d in machine.memory_bandwidth
        }
        self._active: Dict[int, ActiveWork] = {}
        #: Number of in-flight work items per core.  One runtime never
        #: oversubscribes a core (a worker runs one assembly at a time),
        #: but two runtimes sharing this model — a live co-runner — do;
        #: the OS then time-slices, giving each work 1/k of the core.
        self._active_per_core: List[int] = [0] * n
        #: In-flight work items per memory domain, and the total demand
        #: (external + active items) per domain — maintained incrementally
        #: so rate changes that cannot touch any in-flight item are
        #: detected (and skipped) in O(1).
        self._active_per_domain: Dict[str, int] = {
            d: 0 for d in machine.memory_bandwidth
        }
        self._demand_totals: Dict[str, float] = {
            d: 0.0 for d in machine.memory_bandwidth
        }
        self._last_update = env.now

    # ------------------------------------------------------------------
    # dynamic state
    # ------------------------------------------------------------------
    def core_rate(self, core_id: int) -> float:
        """Effective rate of ``core_id`` for one work item (work units/s).

        Includes OS time-slicing when several in-flight work items share
        the core (live co-runners).
        """
        spec = self.machine.cores[core_id]
        timeshare = 1.0 / max(1, self._active_per_core[core_id])
        return (
            spec.base_speed
            * self._freq_scale[core_id]
            * self._cpu_share[core_id]
            * timeshare
        )

    def active_on_core(self, core_id: int) -> int:
        """Number of in-flight work items occupying ``core_id``."""
        return self._active_per_core[core_id]

    def freq_scale(self, core_id: int) -> float:
        return self._freq_scale[core_id]

    def cpu_share(self, core_id: int) -> float:
        return self._cpu_share[core_id]

    def domain_factor(self, domain: str) -> float:
        """Current bandwidth share factor of ``domain`` (1 = no pressure)."""
        return self._domain_factor(domain)

    def estimate_time(
        self, cores: Sequence[int], work: float, memory_intensity: float = 0.0
    ) -> float:
        """Idealized wall time for ``work`` on ``cores`` at *current* rates.

        Assumes rates and bandwidth pressure stay frozen and ignores
        queueing — the instantaneous oracle the tracing layer compares
        scheduler decisions against.  Returns ``inf`` for a zero rate.
        """
        compute_rate = min(self.core_rate(c) for c in cores)
        factor = self._domain_factor(self.machine.domain_of(cores[0]))
        m = memory_intensity
        rate = compute_rate * ((1.0 - m) + m * factor)
        if rate <= 0:
            return float("inf")
        return work / rate

    def set_freq_scale(self, core_ids: Iterable[int], scale: float) -> None:
        """Set the DVFS frequency scale of ``core_ids`` to ``scale`` in (0, 1]."""
        if not (0 < scale <= 1.0):
            raise ConfigurationError(f"freq scale must be in (0, 1], got {scale}")
        core_ids = list(core_ids)
        for cid in core_ids:
            self.machine._check_core(cid)
        # A change that touches no core with in-flight work (or changes no
        # value) cannot alter any active rate: skip the full re-time.
        affected = any(
            self._active_per_core[cid] and self._freq_scale[cid] != scale
            for cid in core_ids
        )
        if affected:
            self._advance()
        for cid in core_ids:
            self._freq_scale[cid] = scale
        if self.tracer.enabled:
            self.tracer.emit(
                SpeedEvent(
                    t=self.env.now, kind="freq_scale",
                    cores=tuple(core_ids), domain="", value=scale,
                )
            )
        if affected:
            self._retime()

    def set_cpu_share(self, core_ids: Iterable[int], share: float) -> None:
        """Set the CPU time share available to the runtime on ``core_ids``.

        A co-running process of equal OS priority on a core leaves the
        runtime a share of about 0.5 there.
        """
        if not (0 < share <= 1.0):
            raise ConfigurationError(f"cpu share must be in (0, 1], got {share}")
        core_ids = list(core_ids)
        for cid in core_ids:
            self.machine._check_core(cid)
        affected = any(
            self._active_per_core[cid] and self._cpu_share[cid] != share
            for cid in core_ids
        )
        if affected:
            self._advance()
        for cid in core_ids:
            self._cpu_share[cid] = share
        if self.tracer.enabled:
            self.tracer.emit(
                SpeedEvent(
                    t=self.env.now, kind="cpu_share",
                    cores=tuple(core_ids), domain="", value=share,
                )
            )
        if affected:
            self._retime()

    def add_external_demand(self, domain: str, amount: float) -> None:
        """Register persistent memory-bandwidth demand (e.g. a co-runner)."""
        if domain not in self._external_demand:
            raise ConfigurationError(f"unknown memory domain {domain!r}")
        if amount < 0:
            raise ConfigurationError(f"demand must be >= 0, got {amount}")
        affected = amount > 0 and self._active_per_domain[domain] > 0
        if affected:
            self._advance()
        self._external_demand[domain] += amount
        self._demand_totals[domain] += amount
        if self.tracer.enabled:
            self.tracer.emit(
                SpeedEvent(
                    t=self.env.now, kind="demand", cores=(),
                    domain=domain, value=self._external_demand[domain],
                )
            )
        if affected:
            self._retime()

    def remove_external_demand(self, domain: str, amount: float) -> None:
        """Remove previously registered external demand."""
        if domain not in self._external_demand:
            raise ConfigurationError(f"unknown memory domain {domain!r}")
        affected = amount > 0 and self._active_per_domain[domain] > 0
        if affected:
            self._advance()
        self._external_demand[domain] -= amount
        self._demand_totals[domain] -= amount
        if self._external_demand[domain] < -_EPS:
            raise RuntimeStateError(
                f"external demand on {domain!r} went negative"
            )
        if self._external_demand[domain] < 0.0:
            # Clamp rounding residue to zero, keeping the totals aligned.
            self._demand_totals[domain] -= self._external_demand[domain]
            self._external_demand[domain] = 0.0
        if self.tracer.enabled:
            self.tracer.emit(
                SpeedEvent(
                    t=self.env.now, kind="demand", cores=(),
                    domain=domain, value=self._external_demand[domain],
                )
            )
        if affected:
            self._retime()

    def external_demand(self, domain: str) -> float:
        return self._external_demand[domain]

    # ------------------------------------------------------------------
    # work execution
    # ------------------------------------------------------------------
    def begin_work(
        self,
        cores: Sequence[int],
        work: float,
        memory_intensity: float = 0.0,
        demand: Optional[float] = None,
    ) -> ActiveWork:
        """Start executing ``work`` units on ``cores``; returns the handle.

        ``handle.done`` succeeds with the elapsed wall-clock time once the
        work has been fully processed.  All member cores must belong to one
        memory domain (places never span clusters).
        """
        if not cores:
            raise ConfigurationError("work needs at least one core")
        if work < 0:
            raise ConfigurationError(f"work must be >= 0, got {work}")
        if not (0.0 <= memory_intensity <= 1.0):
            raise ConfigurationError(
                f"memory_intensity must be in [0, 1], got {memory_intensity}"
            )
        cores = tuple(cores)
        domains = {self.machine.domain_of(c) for c in cores}
        if len(domains) != 1:
            raise ConfigurationError(
                f"work spans multiple memory domains: {sorted(domains)}"
            )
        if demand is None:
            demand = memory_intensity * len(cores)
        self._advance()
        item = ActiveWork(
            self.env, cores, float(work), memory_intensity, float(demand), domains.pop()
        )
        if item.remaining <= _EPS:
            # Degenerate zero-work item: complete instantly.
            item.done.succeed(0.0)
            return item

        # Detect whether starting this item can change any *other* item's
        # rate: it can only through core time-slicing (a shared core) or
        # through the domain's bandwidth factor.  When neither moves — the
        # overwhelmingly common case for a single runtime on undersubscribed
        # memory — only the new item needs (re)timing.
        finished_pending = any(
            other.remaining <= _EPS for other in self._active.values()
        )
        shared_core = False
        for core in cores:
            self._active_per_core[core] += 1
            if self._active_per_core[core] > 1:
                shared_core = True
        domain = item.domain
        factor_before = self._domain_factor(domain)
        self._active_per_domain[domain] += 1
        self._demand_totals[domain] += item.demand
        factor_after = self._domain_factor(domain)
        self._active[item.work_id] = item

        if finished_pending or shared_core or factor_after != factor_before:
            self._retime()
        else:
            self._set_rate_and_check(item)
        return item

    def active_count(self) -> int:
        """Number of in-flight work items (for tests/metrics)."""
        return len(self._active)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _domain_factor(self, domain: str) -> float:
        """Bandwidth share factor: 1 when undersubscribed, B/D when over."""
        capacity = self.machine.memory_bandwidth[domain]
        total = self._demand_totals[domain]
        if total <= capacity or total <= 0:
            return 1.0
        return capacity / total

    def _advance(self) -> None:
        """Advance all in-flight work to the current time under stored rates."""
        now = self.env.now
        dt = now - self._last_update
        if dt < 0:
            raise RuntimeStateError("simulation time moved backwards")
        if dt > 0:
            for item in self._active.values():
                item.remaining -= dt * item._rate
                if item.remaining < 0:
                    item.remaining = 0.0
        self._last_update = now

    def _complete_finished(self) -> tuple:
        """Remove and trigger every item whose work has run out.

        Returns ``(shared, factors_before)``: whether any finished item was
        time-slicing a core with a survivor, and the pre-removal bandwidth
        factor of each touched domain — the ingredients for deciding
        whether survivors need re-timing.  ``done`` events are only
        *triggered* here — their callbacks run from the environment loop,
        so no runtime bookkeeping re-enters this method mid-update.
        """
        finished = [
            item for item in self._active.values() if item.remaining <= _EPS
        ]
        if not finished:
            return False, {}
        shared = False
        factors_before: Dict[str, float] = {}
        for item in finished:
            factors_before.setdefault(item.domain, self._domain_factor(item.domain))
            del self._active[item.work_id]
            for core in item.cores:
                if self._active_per_core[core] > 1:
                    shared = True
                self._active_per_core[core] -= 1
            self._active_per_domain[item.domain] -= 1
            self._demand_totals[item.domain] -= item.demand
            self._cancel_marker(item)
        for item in finished:
            item._version += 1
            item.done.succeed(self.env.now - item.started_at)
        return shared, factors_before

    def _settle(self) -> None:
        """Complete finished items; re-time survivors only when needed.

        A completion changes a survivor's rate only by freeing a shared
        core or by relaxing an oversubscribed domain; otherwise every
        surviving item's pending completion check is still exact and the
        full re-computation is skipped.
        """
        shared, factors_before = self._complete_finished()
        if not self._active:
            return
        if shared or any(
            self._domain_factor(d) != f for d, f in factors_before.items()
        ):
            for item in self._active.values():
                self._set_rate_and_check(item)

    def _retime(self) -> None:
        """Complete finished items, then recompute all rates and checks."""
        self._complete_finished()
        for item in self._active.values():
            self._set_rate_and_check(item)

    def _set_rate_and_check(self, item: ActiveWork) -> None:
        """Recompute one item's rate and (re)schedule its completion check."""
        cores = item.cores
        if len(cores) == 1:
            compute_rate = self.core_rate(cores[0])
        else:
            compute_rate = min(self.core_rate(c) for c in cores)
        factor = self._domain_factor(item.domain)
        m = item.memory_intensity
        rate = compute_rate * ((1.0 - m) + m * factor)
        item._rate = rate
        item._version += 1
        marker = item._marker
        if marker is not None:
            item._marker = None
            if not marker.processed:
                self.env._queue.cancel(marker)
        if rate > 0:
            self._schedule_check(item, item._version, item.remaining / rate)

    def _cancel_marker(self, item: ActiveWork) -> None:
        """Retract the item's pending completion check, if any."""
        marker = item._marker
        if marker is not None:
            item._marker = None
            if not marker.processed:
                self.env._queue.cancel(marker)

    def _schedule_check(self, item: ActiveWork, version: int, eta: float) -> None:
        """Queue a completion check for ``item`` at ``now + eta``.

        Superseded checks are cancelled on re-time; the version guard stays
        as a backstop against a marker firing in the same timestamp batch.
        """

        def _check(_event: Event, item=item, version=version) -> None:
            if item.work_id not in self._active or item._version != version:
                return
            self._advance()
            self._settle()

        marker = Event(self.env)
        marker._ok = True
        marker._value = None
        marker.callbacks.append(_check)
        item._marker = marker
        self.env._queue.push(self.env.now + eta, 1, marker)
