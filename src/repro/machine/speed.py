"""Time-varying core speeds and exact work integration.

Dynamic asymmetry enters the simulation here.  Each core's effective rate is

``rate(c, t) = base_speed(c) * freq_scale(c, t) * cpu_share(c, t)``

where ``freq_scale`` models DVFS and ``cpu_share`` models time-sharing with
co-running processes.  Rates are piecewise constant: they change only at
discrete events (a governor toggling frequency, a co-runner arriving or
leaving).

Work executes through :meth:`SpeedModel.begin_work`: an *assembly* spanning a
set of cores advances at the rate of its slowest member (members synchronize
like an SPMD region — the paper's moldable tasks), further scaled by memory
bandwidth contention on the assembly's domain.  Whenever any rate or demand
changes, all in-flight work is re-timed: remaining work is advanced under the
old rate and the completion is re-scheduled under the new one.  Task
durations therefore respond to interference exactly when it happens, which
is what the runtime's Performance Trace Table observes.

Batched replicate execution stacks these rate inputs as ``(runs x cores)``
matrices (:class:`repro.core.batched.BatchedRates`): each replicate's
:class:`~repro.core.batched.BatchedSpeedModel` applies its scenario's DVFS /
co-runner / fault transitions as masked row updates, so cross-run readers see
the whole batch without copying.  *Re-timing itself stays per run even under
the lockstep co-advance driver* (:mod:`repro.core.lockstep`): a transition
re-times only the work in flight at that replicate's own simulated time, and
replicates diverge in which work is in flight and how much of it remains —
there is no cross-run-homogeneous retime to batch.  What the driver batches
instead is what *is* homogeneous across runs: placement scans and PTT folds
over the stacked matrices.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, RuntimeStateError
from repro.machine.topology import Machine
from repro.profile.phases import active_phases
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.trace.events import SpeedEvent
from repro.trace.tracer import NULL_TRACER, Tracer

_EPS = 1e-9

#: The per-core rate-input tables a transition can write, by the ``kind``
#: tag flowing through :meth:`SpeedModel._transition_cores` (and into
#: :class:`~repro.trace.events.SpeedEvent`).  Mirrors of the model's
#: dynamic state — e.g. the batched replicate engine's stacked rate
#: matrices (:class:`repro.core.batched.BatchedRates`) — key their
#: per-kind storage off this tuple, so a new rate input added here is a
#: loud reminder to extend them rather than a silently unmirrored table.
TRANSITION_KINDS = ("freq_scale", "cpu_share", "fault_scale")


class ActiveWork:
    """A unit of in-flight work registered with the :class:`SpeedModel`.

    Attributes
    ----------
    done:
        Event succeeding (with the elapsed wall time) when the work
        completes.
    cores:
        Member core ids; the work advances at the slowest member's rate.
    remaining:
        Work units still to execute (updated lazily at re-time points).
    memory_intensity:
        Fraction in [0, 1] of the work that is memory-bandwidth bound.
    demand:
        Bandwidth demand registered on the domain while running.
    """

    _ids = itertools.count()

    __slots__ = (
        "work_id",
        "cores",
        "remaining",
        "memory_intensity",
        "demand",
        "domain",
        "done",
        "started_at",
        "_rate",
        "_version",
        "_marker",
    )

    def __init__(
        self,
        env: Environment,
        cores: Tuple[int, ...],
        work: float,
        memory_intensity: float,
        demand: float,
        domain: str,
    ) -> None:
        self.work_id = next(ActiveWork._ids)
        self.cores = cores
        self.remaining = work
        self.memory_intensity = memory_intensity
        self.demand = demand
        self.domain = domain
        self.done: Event = Event(env)
        self.started_at = env.now
        self._rate = 0.0
        self._version = 0
        #: The pending completion-check event, cancelled on re-time.
        self._marker: Optional[Event] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ActiveWork #{self.work_id} cores={self.cores} "
            f"remaining={self.remaining:.3g} rate={self._rate:.3g}>"
        )


class SpeedModel:
    """Tracks dynamic core rates and integrates work over them.

    An enabled ``tracer`` turns every dynamic-asymmetry transition (DVFS
    frequency scale, co-runner CPU share, external bandwidth demand) into
    a :class:`~repro.trace.events.SpeedEvent`.  The attribute may also be
    attached after construction (the runtime does this when it carries a
    tracer and shares an existing speed model).
    """

    def __init__(
        self, env: Environment, machine: Machine, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.env = env
        self.machine = machine
        self.tracer = tracer
        n = machine.num_cores
        self._freq_scale: List[float] = [1.0] * n
        self._cpu_share: List[float] = [1.0] * n
        #: Fault-injection rate multiplier per core: 1 healthy, in (0, 1)
        #: for a straggler window, 0 for a crashed core.  ``_faulted``
        #: stays False until the first injection so the fault-free hot
        #: path never reads the table (bit-identity with a fault-free
        #: build is structural, not numerical).
        self._fault_scale: List[float] = [1.0] * n
        self._faulted = False
        #: Persistent bandwidth demand per domain from interference sources.
        self._external_demand: Dict[str, float] = {
            d: 0.0 for d in machine.memory_bandwidth
        }
        self._active: Dict[int, ActiveWork] = {}
        #: In-flight work items per core, keyed by work id.  One runtime
        #: never oversubscribes a core (a worker runs one assembly at a
        #: time), but two runtimes sharing this model — a live co-runner —
        #: do; the OS then time-slices, giving each work 1/k of the core.
        #: The index lets a transition touching a few cores re-time only
        #: the items actually running there.
        self._core_items: List[Dict[int, ActiveWork]] = [{} for _ in range(n)]
        #: In-flight work items per memory domain (same role as the
        #: per-core index, for bandwidth-factor changes), and the total
        #: demand (external + active items) per domain — maintained
        #: incrementally so rate changes that cannot touch any in-flight
        #: item are detected (and skipped) in O(1).
        self._domain_items: Dict[str, Dict[int, ActiveWork]] = {
            d: {} for d in machine.memory_bandwidth
        }
        self._demand_totals: Dict[str, float] = {
            d: 0.0 for d in machine.memory_bandwidth
        }
        self._last_update = env.now
        #: Memoized single-domain check per cores tuple: places are a
        #: small fixed set and their core tuples are interned by the
        #: machine, so ``begin_work`` validates each distinct place once.
        self._domain_cache: Dict[Tuple[int, ...], str] = {}
        #: Whether any in-flight item may have run out of work since the
        #: last :meth:`_complete_finished` sweep.  Items only finish by
        #: being advanced across zero, so the flag is set in
        #: :meth:`_advance` and lets every other path skip its O(active)
        #: finished-item scan.
        self._maybe_finished = False
        # Batched-transition state (see :meth:`batch`): while a batch is
        # open, transitions accumulate affected cores and pre-mutation
        # domain factors here instead of re-timing immediately.
        self._batch_depth = 0
        self._batch_dirty = False
        self._batch_cores: set = set()
        self._batch_factors: Dict[str, float] = {}
        #: Active profiling phase timer (None when unprofiled).
        self._phases = active_phases()

    # ------------------------------------------------------------------
    # dynamic state
    # ------------------------------------------------------------------
    def core_rate(self, core_id: int) -> float:
        """Effective rate of ``core_id`` for one work item (work units/s).

        Includes OS time-slicing when several in-flight work items share
        the core (live co-runners).
        """
        spec = self.machine.cores[core_id]
        timeshare = 1.0 / max(1, len(self._core_items[core_id]))
        rate = (
            spec.base_speed
            * self._freq_scale[core_id]
            * self._cpu_share[core_id]
            * timeshare
        )
        if self._faulted:
            rate *= self._fault_scale[core_id]
        return rate

    def active_on_core(self, core_id: int) -> int:
        """Number of in-flight work items occupying ``core_id``."""
        return len(self._core_items[core_id])

    def freq_scale(self, core_id: int) -> float:
        return self._freq_scale[core_id]

    def cpu_share(self, core_id: int) -> float:
        return self._cpu_share[core_id]

    def domain_factor(self, domain: str) -> float:
        """Current bandwidth share factor of ``domain`` (1 = no pressure)."""
        return self._domain_factor(domain)

    def estimate_time(
        self, cores: Sequence[int], work: float, memory_intensity: float = 0.0
    ) -> float:
        """Idealized wall time for ``work`` on ``cores`` at *current* rates.

        Assumes rates and bandwidth pressure stay frozen and ignores
        queueing — the instantaneous oracle the tracing layer compares
        scheduler decisions against.  Returns ``inf`` for a zero rate.
        """
        compute_rate = min(self.core_rate(c) for c in cores)
        factor = self._domain_factor(self.machine.domain_of(cores[0]))
        m = memory_intensity
        rate = compute_rate * ((1.0 - m) + m * factor)
        if rate <= 0:
            return float("inf")
        return work / rate

    @contextmanager
    def batch(self):
        """Coalesce several transitions into one grouped re-timing pass.

        An interference transition often mutates several knobs at once —
        a co-runner arriving changes the CPU share of N cores *and* adds
        bandwidth demand to their domain.  Applied naively, each call
        re-times the affected in-flight work separately.  Inside a
        ``with speed.batch():`` block the mutations apply immediately
        (state reads stay consistent) but the re-timing is deferred and
        performed once, over the union of affected cores and domains,
        when the outermost batch closes.  A batch must not span simulated
        time (no yields inside the block).
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                cores = self._batch_cores
                factors = self._batch_factors
                dirty = self._batch_dirty
                self._batch_cores = set()
                self._batch_factors = {}
                self._batch_dirty = False
                if dirty:
                    self._retime_affected(cores, factors)

    def _after_transition(
        self,
        cores: Sequence[int] = (),
        factors_before: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Re-time after a transition, or defer it to the open batch.

        ``cores`` are the cores whose per-core rate inputs changed while
        hosting in-flight work; ``factors_before`` maps each mutated
        domain to its bandwidth factor *before* the mutation.
        """
        if self._batch_depth:
            self._batch_cores.update(cores)
            if factors_before:
                for domain, factor in factors_before.items():
                    # Keep the earliest pre-mutation snapshot: a batch
                    # whose net demand change is zero needs no re-time.
                    self._batch_factors.setdefault(domain, factor)
            self._batch_dirty = True
        else:
            self._retime_affected(cores, factors_before or {})

    def _transition_cores(
        self, table: List[float], core_ids: Iterable[int], value: float, kind: str
    ) -> None:
        """Apply a per-core rate-input change and re-time what it touched."""
        if kind not in TRANSITION_KINDS:
            raise ConfigurationError(
                f"unknown rate-input kind {kind!r}; known kinds: "
                f"{', '.join(TRANSITION_KINDS)}"
            )
        core_ids = list(core_ids)
        for cid in core_ids:
            self.machine._check_core(cid)
        # Only cores that host in-flight work *and* actually change value
        # can alter an active rate; everything else is a pure table write.
        affected = [
            cid for cid in core_ids
            if self._core_items[cid] and table[cid] != value
        ]
        if affected:
            self._advance()
        for cid in core_ids:
            table[cid] = value
        if self.tracer.enabled:
            self.tracer.emit(
                SpeedEvent(
                    t=self.env.now, kind=kind,
                    cores=tuple(core_ids), domain="", value=value,
                )
            )
        if affected:
            self._after_transition(cores=affected)

    def set_freq_scale(self, core_ids: Iterable[int], scale: float) -> None:
        """Set the DVFS frequency scale of ``core_ids`` to ``scale`` in (0, 1]."""
        if not (0 < scale <= 1.0):
            raise ConfigurationError(f"freq scale must be in (0, 1], got {scale}")
        self._transition_cores(self._freq_scale, core_ids, scale, "freq_scale")

    def set_cpu_share(self, core_ids: Iterable[int], share: float) -> None:
        """Set the CPU time share available to the runtime on ``core_ids``.

        A co-running process of equal OS priority on a core leaves the
        runtime a share of about 0.5 there.
        """
        if not (0 < share <= 1.0):
            raise ConfigurationError(f"cpu share must be in (0, 1], got {share}")
        self._transition_cores(self._cpu_share, core_ids, share, "cpu_share")

    def set_fault_scale(self, core_ids: Iterable[int], scale: float) -> None:
        """Set the fault-injection rate multiplier of ``core_ids``.

        ``0`` models a crashed core (in-flight work freezes, estimates go
        to infinity), values in ``(0, 1)`` model straggler windows, and
        ``1`` restores full health.  Unlike the DVFS/co-runner knobs this
        one legitimately reaches an exact zero rate, which the re-timing
        machinery already treats as "no completion check scheduled".
        """
        if not (0.0 <= scale <= 1.0):
            raise ConfigurationError(
                f"fault scale must be in [0, 1], got {scale}"
            )
        self._faulted = True
        self._transition_cores(self._fault_scale, core_ids, scale, "fault_scale")

    def fault_scale(self, core_id: int) -> float:
        return self._fault_scale[core_id]

    def cancel_work(self, item: ActiveWork) -> None:
        """Abort an in-flight item without completing it.

        The recovery path uses this when a member core dies: the assembly
        will be re-executed from scratch, so the partially-done work is
        discarded, its core/domain registrations are released, and its
        ``done`` event is left untriggered (the aborted assembly's
        completion is routed through the retry machinery instead).
        Survivors sharing a core or the domain are re-timed exactly as on
        a normal completion.  Cancelling an item that already finished or
        was never started is a no-op.
        """
        if item.work_id not in self._active:
            return
        self._advance()
        factor_before = self._domain_factor(item.domain)
        del self._active[item.work_id]
        freed: set = set()
        for core in item.cores:
            members = self._core_items[core]
            del members[item.work_id]
            if members:
                freed.add(core)
        del self._domain_items[item.domain][item.work_id]
        self._demand_totals[item.domain] -= item.demand
        self._cancel_marker(item)
        item._version += 1
        self._retime_affected(sorted(freed), {item.domain: factor_before})

    def add_external_demand(self, domain: str, amount: float) -> None:
        """Register persistent memory-bandwidth demand (e.g. a co-runner)."""
        if domain not in self._external_demand:
            raise ConfigurationError(f"unknown memory domain {domain!r}")
        if amount < 0:
            raise ConfigurationError(f"demand must be >= 0, got {amount}")
        affected = amount > 0 and bool(self._domain_items[domain])
        if affected:
            self._advance()
            factor_before = self._domain_factor(domain)
        self._external_demand[domain] += amount
        self._demand_totals[domain] += amount
        if self.tracer.enabled:
            self.tracer.emit(
                SpeedEvent(
                    t=self.env.now, kind="demand", cores=(),
                    domain=domain, value=self._external_demand[domain],
                )
            )
        if affected:
            self._after_transition(factors_before={domain: factor_before})

    def remove_external_demand(self, domain: str, amount: float) -> None:
        """Remove previously registered external demand."""
        if domain not in self._external_demand:
            raise ConfigurationError(f"unknown memory domain {domain!r}")
        affected = amount > 0 and bool(self._domain_items[domain])
        if affected:
            self._advance()
            factor_before = self._domain_factor(domain)
        self._external_demand[domain] -= amount
        self._demand_totals[domain] -= amount
        if self._external_demand[domain] < -_EPS:
            raise RuntimeStateError(
                f"external demand on {domain!r} went negative"
            )
        if self._external_demand[domain] < 0.0:
            # Clamp rounding residue to zero, keeping the totals aligned.
            self._demand_totals[domain] -= self._external_demand[domain]
            self._external_demand[domain] = 0.0
        if self.tracer.enabled:
            self.tracer.emit(
                SpeedEvent(
                    t=self.env.now, kind="demand", cores=(),
                    domain=domain, value=self._external_demand[domain],
                )
            )
        if affected:
            self._after_transition(factors_before={domain: factor_before})

    def external_demand(self, domain: str) -> float:
        return self._external_demand[domain]

    # ------------------------------------------------------------------
    # work execution
    # ------------------------------------------------------------------
    def begin_work(
        self,
        cores: Sequence[int],
        work: float,
        memory_intensity: float = 0.0,
        demand: Optional[float] = None,
    ) -> ActiveWork:
        """Start executing ``work`` units on ``cores``; returns the handle.

        ``handle.done`` succeeds with the elapsed wall-clock time once the
        work has been fully processed.  All member cores must belong to one
        memory domain (places never span clusters).
        """
        if not cores:
            raise ConfigurationError("work needs at least one core")
        if work < 0:
            raise ConfigurationError(f"work must be >= 0, got {work}")
        if not (0.0 <= memory_intensity <= 1.0):
            raise ConfigurationError(
                f"memory_intensity must be in [0, 1], got {memory_intensity}"
            )
        cores = tuple(cores)
        domain = self._domain_cache.get(cores)
        if domain is None:
            domains = {self.machine.domain_of(c) for c in cores}
            if len(domains) != 1:
                raise ConfigurationError(
                    f"work spans multiple memory domains: {sorted(domains)}"
                )
            domain = domains.pop()
            self._domain_cache[cores] = domain
        if demand is None:
            demand = memory_intensity * len(cores)
        self._advance()
        item = ActiveWork(
            self.env, cores, float(work), memory_intensity, float(demand), domain
        )
        if item.remaining <= _EPS:
            # Degenerate zero-work item: complete instantly.
            item.done.succeed(0.0)
            return item

        # Detect whether starting this item can change any *other* item's
        # rate: it can only through core time-slicing (a shared core) or
        # through the domain's bandwidth factor.  When neither moves — the
        # overwhelmingly common case for a single runtime on undersubscribed
        # memory — only the new item needs (re)timing.
        finished_pending = self._maybe_finished
        shared_core = False
        for core in cores:
            members = self._core_items[core]
            if members:
                shared_core = True
            members[item.work_id] = item
        domain = item.domain
        factor_before = self._domain_factor(domain)
        self._domain_items[domain][item.work_id] = item
        self._demand_totals[domain] += item.demand
        factor_changed = self._domain_factor(domain) != factor_before
        self._active[item.work_id] = item

        if finished_pending or shared_core or factor_changed:
            self._retime_affected(
                cores if shared_core else (),
                {domain: factor_before} if factor_changed else {},
            )
            if not (shared_core or factor_changed):
                # Neither selection criterion covers the new item itself.
                self._set_rate_and_check(item)
        else:
            self._set_rate_and_check(item)
        return item

    def active_count(self) -> int:
        """Number of in-flight work items (for tests/metrics)."""
        return len(self._active)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _domain_factor(self, domain: str) -> float:
        """Bandwidth share factor: 1 when undersubscribed, B/D when over."""
        capacity = self.machine.memory_bandwidth[domain]
        total = self._demand_totals[domain]
        if total <= capacity or total <= 0:
            return 1.0
        return capacity / total

    def _advance(self) -> None:
        """Advance all in-flight work to the current time under stored rates."""
        now = self.env.now
        dt = now - self._last_update
        if dt < 0:
            raise RuntimeStateError("simulation time moved backwards")
        if dt > 0:
            maybe_finished = self._maybe_finished
            for item in self._active.values():
                remaining = item.remaining - dt * item._rate
                if remaining <= _EPS:
                    maybe_finished = True
                    if remaining < 0:
                        remaining = 0.0
                item.remaining = remaining
            self._maybe_finished = maybe_finished
        self._last_update = now

    def _complete_finished(self) -> tuple:
        """Remove and trigger every item whose work has run out.

        Returns ``(freed, factors_before)``: the cores a finished item was
        time-slicing with a survivor, and the pre-removal bandwidth factor
        of each touched domain — the ingredients for deciding which
        survivors need re-timing.  ``done`` events are only *triggered*
        here — their callbacks run from the environment loop, so no
        runtime bookkeeping re-enters this method mid-update.
        """
        if not self._maybe_finished:
            return (), {}
        finished = [
            item for item in self._active.values() if item.remaining <= _EPS
        ]
        self._maybe_finished = False
        if not finished:
            return (), {}
        freed: set = set()
        factors_before: Dict[str, float] = {}
        for item in finished:
            factors_before.setdefault(item.domain, self._domain_factor(item.domain))
            del self._active[item.work_id]
            for core in item.cores:
                members = self._core_items[core]
                del members[item.work_id]
                if members:
                    freed.add(core)
            del self._domain_items[item.domain][item.work_id]
            self._demand_totals[item.domain] -= item.demand
            self._cancel_marker(item)
        for item in finished:
            item._version += 1
            item.done.succeed(self.env.now - item.started_at)
        return freed, factors_before

    def _settle(self) -> None:
        """Complete finished items; re-time survivors only when needed.

        A completion changes a survivor's rate only by freeing a shared
        core or by relaxing an oversubscribed domain; otherwise every
        surviving item's pending completion check is still exact and the
        re-computation is skipped entirely.
        """
        self._retime_affected((), {})

    def _retime_affected(
        self,
        cores: Sequence[int] = (),
        factors_before: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Complete finished items, then re-time only touched survivors.

        ``cores`` are cores whose rate inputs changed; ``factors_before``
        maps mutated domains to their pre-mutation bandwidth factors.
        Completions discovered here widen the selection with the cores
        they freed and the domains they relaxed.
        """
        phases = self._phases
        if phases is None:
            self._retime_affected_body(cores, factors_before)
            return
        phases.push("speed-retime")
        try:
            self._retime_affected_body(cores, factors_before)
        finally:
            phases.pop()

    def _retime_affected_body(
        self,
        cores: Sequence[int] = (),
        factors_before: Optional[Mapping[str, float]] = None,
    ) -> None:
        freed, completion_factors = self._complete_finished()
        merged = dict(factors_before) if factors_before else {}
        for domain, factor in completion_factors.items():
            # The earliest snapshot wins: a net-zero factor move needs no
            # re-time even when intermediate mutations touched the domain.
            merged.setdefault(domain, factor)
        if not self._active:
            return
        to_retime: Dict[int, ActiveWork] = {}
        for core in cores:
            to_retime.update(self._core_items[core])
        for core in sorted(freed):
            to_retime.update(self._core_items[core])
        for domain in sorted(merged):
            if self._domain_factor(domain) != merged[domain]:
                to_retime.update(self._domain_items[domain])
        if to_retime:
            self._retime_items(to_retime)

    def _retime_items(self, to_retime: Dict[int, ActiveWork]) -> None:
        """One grouped pass re-timing ``to_retime`` (keyed by work id).

        The slowest-member compute rate is evaluated once per distinct
        core-set and the bandwidth factor once per domain, and items are
        visited in work-id order so the pass is deterministic regardless
        of how the selection was assembled.
        """
        compute_rates: Dict[Tuple[int, ...], float] = {}
        factors: Dict[str, float] = {}
        for work_id in sorted(to_retime):
            item = to_retime[work_id]
            cores = item.cores
            compute_rate = compute_rates.get(cores)
            if compute_rate is None:
                if len(cores) == 1:
                    compute_rate = self.core_rate(cores[0])
                else:
                    compute_rate = min(self.core_rate(c) for c in cores)
                compute_rates[cores] = compute_rate
            factor = factors.get(item.domain)
            if factor is None:
                factor = self._domain_factor(item.domain)
                factors[item.domain] = factor
            self._apply_rate(item, compute_rate, factor)

    def _set_rate_and_check(self, item: ActiveWork) -> None:
        """Recompute one item's rate and (re)schedule its completion check."""
        cores = item.cores
        if len(cores) == 1:
            compute_rate = self.core_rate(cores[0])
        else:
            compute_rate = min(self.core_rate(c) for c in cores)
        self._apply_rate(item, compute_rate, self._domain_factor(item.domain))

    def _apply_rate(
        self, item: ActiveWork, compute_rate: float, factor: float
    ) -> None:
        """Store ``item``'s new rate and refresh its completion check.

        An unchanged rate with a still-pending check is a no-op: the
        scheduled completion time is still exact (the rate was constant
        since it was computed), so the marker needs no heap churn.
        """
        m = item.memory_intensity
        rate = compute_rate * ((1.0 - m) + m * factor)
        marker = item._marker
        if rate == item._rate and marker is not None and not marker.processed:
            return
        item._rate = rate
        item._version += 1
        if marker is not None:
            item._marker = None
            if not marker.processed:
                self.env._queue.cancel(marker)
        if rate > 0:
            self._schedule_check(item, item._version, item.remaining / rate)

    def _cancel_marker(self, item: ActiveWork) -> None:
        """Retract the item's pending completion check, if any."""
        marker = item._marker
        if marker is not None:
            item._marker = None
            if not marker.processed:
                self.env._queue.cancel(marker)

    def _schedule_check(self, item: ActiveWork, version: int, eta: float) -> None:
        """Queue a completion check for ``item`` at ``now + eta``.

        Superseded checks are cancelled on re-time; the version guard stays
        as a backstop against a marker firing in the same timestamp batch.
        """

        def _check(_event: Event, item=item, version=version) -> None:
            # Markers are pooled: drop the handle before the environment
            # recycles the event, so a stale reference can never alias a
            # later reuse of the same object.
            if item._marker is _event:
                item._marker = None
            if item.work_id not in self._active or item._version != version:
                return
            self._advance()
            self._settle()

        marker = self.env._pooled_event()
        marker._value = None
        marker.callbacks.append(_check)
        item._marker = marker
        self.env._queue.push(self.env.now + eta, 1, marker)
