"""Machine model: cores, clusters, execution places, time-varying speeds.

The platform model of the paper (§2): multiple execution resources grouped
into *resource partitions* (clusters) that share caches and memory channels.
Per-core performance is a product of static factors (base speed of the core)
and dynamic factors (DVFS frequency scaling, time-sharing with co-running
processes), plus memory-bandwidth contention on shared domains.

The central object is :class:`~repro.machine.topology.Machine`, which
enumerates the legal execution places ``(leader core, resource width)``, and
:class:`~repro.machine.speed.SpeedModel`, which integrates work over the
piecewise-constant per-core rates so that task durations respond to
interference exactly when it happens.
"""

from repro.machine.core import CoreSpec
from repro.machine.cluster import ClusterSpec
from repro.machine.topology import ExecutionPlace, Machine
from repro.machine.speed import ActiveWork, SpeedModel
from repro.machine.dvfs import DvfsGovernor, PeriodicSquareWave
from repro.machine.interconnect import Interconnect
from repro.machine.presets import (
    haswell16,
    haswell_node,
    jetson_tx2,
    symmetric_machine,
)

__all__ = [
    "CoreSpec",
    "ClusterSpec",
    "ExecutionPlace",
    "Machine",
    "ActiveWork",
    "SpeedModel",
    "DvfsGovernor",
    "PeriodicSquareWave",
    "Interconnect",
    "jetson_tx2",
    "haswell16",
    "haswell_node",
    "symmetric_machine",
]
