"""Point-to-point interconnect model for multi-node machines.

A simple LogP-flavoured model: transferring ``n`` bytes between two nodes
takes ``latency + n / bandwidth``; the fabric layer
(:mod:`repro.distributed.network`) adds per-link FIFO queuing on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class Interconnect:
    """Latency/bandwidth description of the inter-node network.

    Defaults approximate FDR InfiniBand (the paper's Haswell cluster):
    ~1 microsecond latency, ~6 GB/s effective point-to-point bandwidth.
    """

    latency_s: float = 1.0e-6
    bandwidth_bytes_per_s: float = 6.0e9

    def __post_init__(self) -> None:
        require_positive(self.latency_s, "latency_s")
        require_positive(self.bandwidth_bytes_per_s, "bandwidth_bytes_per_s")

    def transfer_time(self, num_bytes: float) -> float:
        """Wire time to move ``num_bytes`` point-to-point."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s
