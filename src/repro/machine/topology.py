"""Whole-machine topology and execution-place enumeration."""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.machine.cluster import ClusterSpec
from repro.machine.core import CoreSpec


class ExecutionPlace(NamedTuple):
    """The paper's execution place: ``(leader core, resource width)``.

    A place of width ``w`` spans cores ``leader .. leader + w - 1``, all
    within one cluster and aligned to a multiple of ``w`` from the cluster
    start (XiTAO elastic places).
    """

    leader: int
    width: int

    def __str__(self) -> str:
        return f"(C{self.leader},{self.width})"


class Machine:
    """A machine built from clusters of cores.

    The machine knows nothing about time: it is the static topology against
    which a :class:`~repro.machine.speed.SpeedModel` tracks dynamic state.

    Parameters
    ----------
    clusters:
        Cluster specs with contiguous, non-overlapping core ranges starting
        at 0.
    cores:
        One :class:`CoreSpec` per global core id, consistent with the
        cluster ranges.
    memory_bandwidth:
        Capacity of each memory domain, in demand units (see
        :class:`~repro.machine.speed.SpeedModel`); missing domains get
        ``DEFAULT_BANDWIDTH``.
    name:
        Human-readable machine name for reports.
    """

    DEFAULT_BANDWIDTH = 4.0

    def __init__(
        self,
        clusters: Sequence[ClusterSpec],
        cores: Sequence[CoreSpec],
        memory_bandwidth: Dict[str, float] | None = None,
        name: str = "machine",
    ) -> None:
        if not clusters:
            raise TopologyError("machine needs at least one cluster")
        self.name = name
        self.clusters: Tuple[ClusterSpec, ...] = tuple(clusters)
        self.cores: Tuple[CoreSpec, ...] = tuple(cores)

        # -- validate cluster coverage ---------------------------------
        expected_next = 0
        seen_names = set()
        for cluster in self.clusters:
            if cluster.name in seen_names:
                raise TopologyError(f"duplicate cluster name {cluster.name!r}")
            seen_names.add(cluster.name)
            if cluster.first_core != expected_next:
                raise TopologyError(
                    f"cluster {cluster.name!r} starts at core {cluster.first_core}, "
                    f"expected {expected_next} (clusters must be contiguous)"
                )
            expected_next = cluster.first_core + cluster.num_cores
        if expected_next != len(self.cores):
            raise TopologyError(
                f"clusters cover {expected_next} cores but {len(self.cores)} "
                "core specs were given"
            )
        for i, core in enumerate(self.cores):
            if core.core_id != i:
                raise TopologyError(
                    f"core spec at position {i} has core_id {core.core_id}"
                )

        self._cluster_by_name: Dict[str, ClusterSpec] = {
            c.name: c for c in self.clusters
        }
        self._cluster_of_core: Dict[int, ClusterSpec] = {}
        for cluster in self.clusters:
            for cid in cluster.core_ids:
                if self.cores[cid].cluster != cluster.name:
                    raise TopologyError(
                        f"core {cid} declares cluster {self.cores[cid].cluster!r} "
                        f"but lies in range of {cluster.name!r}"
                    )
                self._cluster_of_core[cid] = cluster

        self.memory_bandwidth: Dict[str, float] = {}
        domains = {c.memory_domain for c in self.clusters}
        provided = dict(memory_bandwidth or {})
        for domain in sorted(domains):
            self.memory_bandwidth[domain] = provided.pop(domain, self.DEFAULT_BANDWIDTH)
        if provided:
            raise TopologyError(
                f"bandwidth given for unknown domains: {sorted(provided)}"
            )

        # Precompute all legal execution places, sorted by (leader, width):
        places: List[ExecutionPlace] = []
        for cluster in self.clusters:
            for width in cluster.widths:
                for leader in cluster.leaders_for_width(width):
                    places.append(ExecutionPlace(leader, width))
        places.sort()
        self._places: Tuple[ExecutionPlace, ...] = tuple(places)
        self._valid_places = frozenset(places)
        self._places_by_leader: Dict[int, Tuple[ExecutionPlace, ...]] = {}
        for cid in range(len(self.cores)):
            self._places_by_leader[cid] = tuple(
                p for p in places if p.leader == cid
            )

        # Precomputed search-support structures.  The placement searches
        # (core/placement.py) and the PTT run many thousands of times per
        # simulated second; everything derivable from the static topology
        # is built once here so the hot paths are pure array lookups.
        self._place_index: Dict[ExecutionPlace, int] = {
            place: i for i, place in enumerate(self._places)
        }
        self._place_widths = np.array(
            [p.width for p in self._places], dtype=np.float64
        )
        self._place_members: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(range(p.leader, p.leader + p.width)) for p in self._places
        )
        self._slots_by_core: Tuple[np.ndarray, ...] = tuple(
            np.array(
                [
                    i for i, p in enumerate(self._places)
                    if p.leader <= cid < p.leader + p.width
                ],
                dtype=np.intp,
            )
            for cid in range(len(self.cores))
        )
        self._width_one_places: Tuple[ExecutionPlace, ...] = tuple(
            p for p in self._places if p.width == 1
        )
        self._width_one_slots = np.array(
            [self._place_index[p] for p in self._width_one_places],
            dtype=np.intp,
        )
        # Python-scalar mirrors of the numpy search arrays: the placement
        # argmins iterate a dozen-odd places per call, where list indexing
        # and float arithmetic beat ndarray scalar access several-fold.
        self._place_widths_list: Tuple[float, ...] = tuple(
            float(w) for w in self._place_widths
        )
        self._width_one_slots_list: Tuple[int, ...] = tuple(
            int(s) for s in self._width_one_slots
        )
        # Per core: ((slot, width, place), ...) for the local-search
        # candidates local_place_for(core, w) over widths_at(core).
        local_entries: List[Tuple[Tuple[int, int, ExecutionPlace], ...]] = []
        for cid in range(len(self.cores)):
            entries = []
            for width in self._cluster_of_core[cid].widths:
                place = self.local_place_for(cid, width)
                entries.append((self._place_index[place], width, place))
            local_entries.append(tuple(entries))
        self._local_search_entries: Tuple[
            Tuple[Tuple[int, int, ExecutionPlace], ...], ...
        ] = tuple(local_entries)

    # -- basic queries ----------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def cluster(self, name: str) -> ClusterSpec:
        """Look up a cluster by name."""
        try:
            return self._cluster_by_name[name]
        except KeyError:
            raise TopologyError(f"no cluster named {name!r}") from None

    def cluster_of(self, core_id: int) -> ClusterSpec:
        """The cluster containing ``core_id``."""
        self._check_core(core_id)
        return self._cluster_of_core[core_id]

    def domain_of(self, core_id: int) -> str:
        """Memory domain of ``core_id``."""
        return self.cluster_of(core_id).memory_domain

    def _check_core(self, core_id: int) -> None:
        if not (0 <= core_id < len(self.cores)):
            raise TopologyError(
                f"core {core_id} out of range [0, {len(self.cores)})"
            )

    # -- execution places ---------------------------------------------------
    @property
    def places(self) -> Tuple[ExecutionPlace, ...]:
        """All legal execution places on this machine."""
        return self._places

    def is_valid_place(self, place: ExecutionPlace) -> bool:
        """Whether ``place`` is aligned, in-range, and within one cluster."""
        return place in self._valid_places

    def validate_place(self, place: ExecutionPlace) -> ExecutionPlace:
        """Return ``place`` or raise :class:`TopologyError`."""
        if not self.is_valid_place(place):
            raise TopologyError(f"invalid execution place {place} on {self.name}")
        return place

    def place_cores(self, place: ExecutionPlace) -> Tuple[int, ...]:
        """Member core ids of ``place`` (leader first)."""
        slot = self._place_index.get(place)
        if slot is None:
            self.validate_place(place)
        return self._place_members[slot]

    def places_led_by(self, core_id: int) -> Tuple[ExecutionPlace, ...]:
        """Places whose leader is ``core_id`` (the *local search* domain)."""
        self._check_core(core_id)
        return self._places_by_leader[core_id]

    def local_place_for(self, core_id: int, width: int) -> ExecutionPlace:
        """The aligned place of ``width`` that *contains* ``core_id``.

        Used when a worker wants to mold a task around its own core: the
        leader is snapped to the alignment grid so the place stays legal.
        """
        cluster = self.cluster_of(core_id)
        if width not in cluster.widths:
            raise TopologyError(
                f"width {width} illegal in cluster {cluster.name!r}"
            )
        offset = (core_id - cluster.first_core) // width * width
        return ExecutionPlace(cluster.first_core + offset, width)

    def widths_at(self, core_id: int) -> Tuple[int, ...]:
        """Legal widths in the cluster of ``core_id``."""
        return self.cluster_of(core_id).widths

    def max_base_speed(self) -> float:
        """Fastest static core speed (used for normalization)."""
        return max(c.base_speed for c in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{c.name}x{c.num_cores}" for c in self.clusters)
        return f"<Machine {self.name}: {parts}>"
