"""Machine presets mirroring the paper's evaluation platforms (§4.2.1)."""

from __future__ import annotations

from typing import List

from repro.machine.cluster import ClusterSpec
from repro.machine.core import CoreSpec
from repro.machine.topology import Machine


def jetson_tx2(denver_speed: float = 2.0, a57_speed: float = 1.0) -> Machine:
    """NVIDIA Jetson TX2 model: 2 Denver + 4 A57 cores.

    Cores 0-1 form the Denver cluster (fast, 64 KiB L1D), cores 2-5 the A57
    cluster (slow, 32 KiB L1D); each cluster has a 2 MiB shared L2 and both
    share one DRAM domain.  ``denver_speed``/``a57_speed`` set the static
    asymmetry ratio (Denver ≈ 2x A57 for the paper's kernels).
    """
    clusters = [
        ClusterSpec("denver", 0, 2, l2_kib=2048.0, memory_domain="dram"),
        ClusterSpec("a57", 2, 4, l2_kib=2048.0, memory_domain="dram"),
    ]
    cores: List[CoreSpec] = []
    for cid in range(2):
        cores.append(CoreSpec(cid, "denver", denver_speed, l1_kib=64.0))
    for cid in range(2, 6):
        cores.append(CoreSpec(cid, "a57", a57_speed, l1_kib=32.0))
    return Machine(clusters, cores, memory_bandwidth={"dram": 4.0}, name="jetson-tx2")


def haswell16(core_speed: float = 1.5) -> Machine:
    """Symmetric 16-core dual-socket Haswell (paper Fig. 9): 2 sockets x 8.

    Each socket owns its memory domain; 32 KiB L1D, 20 MiB LLC modelled as
    per-socket L2 capacity.
    """
    return symmetric_machine(
        sockets=2,
        cores_per_socket=8,
        core_speed=core_speed,
        name="haswell-16",
    )


def haswell_node(core_speed: float = 1.5) -> Machine:
    """One dual-socket 10-core Haswell node (paper §4.2.1, Fig. 10)."""
    return symmetric_machine(
        sockets=2,
        cores_per_socket=10,
        core_speed=core_speed,
        name="haswell-node",
    )


def symmetric_machine(
    sockets: int,
    cores_per_socket: int,
    core_speed: float = 1.0,
    l1_kib: float = 32.0,
    l2_kib: float = 20480.0,
    bandwidth_per_socket: float = 8.0,
    name: str = "symmetric",
) -> Machine:
    """A statically symmetric machine of ``sockets`` x ``cores_per_socket``."""
    if sockets <= 0 or cores_per_socket <= 0:
        raise ValueError("sockets and cores_per_socket must be positive")
    clusters = []
    cores: List[CoreSpec] = []
    bandwidth = {}
    for s in range(sockets):
        cname = f"socket{s}"
        first = s * cores_per_socket
        clusters.append(
            ClusterSpec(cname, first, cores_per_socket, l2_kib=l2_kib,
                        memory_domain=f"mem{s}")
        )
        bandwidth[f"mem{s}"] = bandwidth_per_socket
        for cid in range(first, first + cores_per_socket):
            cores.append(CoreSpec(cid, cname, core_speed, l1_kib=l1_kib))
    return Machine(clusters, cores, memory_bandwidth=bandwidth, name=name)
