"""Resource partitions (core clusters sharing a cache level)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.util.validation import require_positive


@lru_cache(maxsize=None)
def divisor_widths(n: int) -> Tuple[int, ...]:
    """All divisors of ``n`` — the legal resource widths within a cluster.

    A width is legal when assemblies of that width tile the cluster exactly
    (XiTAO's aligned elastic places).  E.g. a 4-core cluster supports widths
    (1, 2, 4); a 10-core socket supports (1, 2, 5, 10).  Cached: the
    result is pure in ``n`` and the schedulers query widths on every
    placement decision.
    """
    if n <= 0:
        raise ValueError(f"cluster size must be positive, got {n}")
    return tuple(w for w in range(1, n + 1) if n % w == 0)


@dataclass(frozen=True)
class ClusterSpec:
    """A set of cores sharing an L2 cache and a memory domain.

    Attributes
    ----------
    name:
        Unique cluster name (e.g. ``"denver"``, ``"a57"``, ``"socket0"``).
    first_core / num_cores:
        The contiguous global core-id range ``[first_core, first_core +
        num_cores)``.
    l2_kib:
        Shared L2 capacity in KiB.
    memory_domain:
        Name of the bandwidth domain the cluster's memory traffic uses.
        Clusters may share a domain (TX2: one DRAM) or own one each
        (dual-socket Haswell).
    """

    name: str
    first_core: int
    num_cores: int
    l2_kib: float
    memory_domain: str

    def __post_init__(self) -> None:
        if self.first_core < 0:
            raise ValueError(f"first_core must be >= 0, got {self.first_core}")
        require_positive(self.num_cores, "num_cores")
        require_positive(self.l2_kib, "l2_kib")

    @property
    def core_ids(self) -> Tuple[int, ...]:
        """Global ids of this cluster's cores."""
        return tuple(range(self.first_core, self.first_core + self.num_cores))

    @property
    def widths(self) -> Tuple[int, ...]:
        """Legal resource widths inside this cluster."""
        return divisor_widths(self.num_cores)

    def leaders_for_width(self, width: int) -> Tuple[int, ...]:
        """Leader core ids of the aligned places of ``width`` in this cluster."""
        if width not in self.widths:
            raise ValueError(
                f"width {width} not supported by cluster {self.name!r} "
                f"(valid: {self.widths})"
            )
        return tuple(
            self.first_core + offset
            for offset in range(0, self.num_cores, width)
        )
