"""Per-core static description."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class CoreSpec:
    """Static description of one core.

    Attributes
    ----------
    core_id:
        Global index, dense from 0 across the whole machine.
    cluster:
        Name of the resource partition this core belongs to.
    base_speed:
        Work units per second at maximum frequency with no interference.
        This encodes *fixed* asymmetry (e.g. Denver vs A57).
    l1_kib:
        Private L1 data cache capacity in KiB (drives the tile-size
        sensitivity of cache-aware kernels, paper §5.3).
    """

    core_id: int
    cluster: str
    base_speed: float
    l1_kib: float

    def __post_init__(self) -> None:
        if self.core_id < 0:
            raise ValueError(f"core_id must be >= 0, got {self.core_id}")
        require_positive(self.base_speed, "base_speed")
        require_positive(self.l1_kib, "l1_kib")
