"""Cross-host sweep scale-out: coordinator/worker cluster over a
pluggable comm layer (see ``docs/cluster.md``).

The package generalizes the single-host supervised pool's recovery
machinery — lease expiry, reclaim, retry budgets, exactly-once commit —
to real workers over a connection:

* :mod:`repro.cluster.comm` — one connector API, two backends
  (``inproc://`` queues for deterministic tests, ``tcp://`` asyncio
  streams with length-prefixed JSON frames);
* :mod:`repro.cluster.coordinator` — leases sweep cells with expiry
  deadlines, detects worker death (closed connection or heartbeat
  silence), reclaims and retries with backoff + jitter, steals tail
  cells from backlogged workers, parks on zero workers;
* :mod:`repro.cluster.worker` — ``python -m repro.cluster.worker
  --connect ADDR`` joins a coordinator, executes leases (inline or in
  supervised subprocesses), streams results + heartbeats + telemetry
  snapshots, survives coordinator restart by re-registering;
* :mod:`repro.cluster.chaos` — deterministic failure injection and the
  bit-identical-under-chaos acceptance proof.

Enable from a sweep with ``SweepRunner(cluster="inproc")`` (self
-contained) or ``SweepRunner(cluster="tcp://host:port")`` (external
workers), or from the CLI with ``--cluster``.
"""

from repro.cluster.comm import (
    AddressInUse,
    ClusterError,
    ClusterUnavailable,
    Connection,
    ConnectionClosed,
    connect,
    listen,
)
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ExecuteReport,
    LeaseOutcome,
)
from repro.cluster.worker import ClusterWorker, start_worker_thread

__all__ = [
    "AddressInUse",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterUnavailable",
    "ClusterWorker",
    "Connection",
    "ConnectionClosed",
    "ExecuteReport",
    "LeaseOutcome",
    "connect",
    "listen",
    "start_worker_thread",
]
