"""The cluster worker: executes leased cells, streams results back.

``python -m repro.cluster.worker --connect tcp://host:port`` joins a
coordinator (:mod:`repro.cluster.coordinator`) and executes the
:class:`~repro.sweep.spec.RunSpec`\\ s it is leased.  The same class
runs in-thread for tests and for ``--cluster inproc`` auto-workers.

Two execution modes:

* ``isolate=False`` (library/test default): leases execute via
  :func:`~repro.sweep.registry.execute_spec` on executor threads inside
  this process — deterministic and cheap, with crash isolation
  delegated to the coordinator's lease machinery.
* ``isolate=True`` (the CLI default): each executor thread wraps one
  long-lived subprocess running the *existing* supervised-pool worker
  loop (:func:`repro.sweep.engine._worker_main`), so remote cells get
  exactly the single-host pool's crash/timeout containment — a
  subprocess that dies or blows the per-run budget is reported as a
  ``crash``/``timeout`` result and respawned, and the coordinator's
  retry budget takes it from there.

The main loop is never blocked by execution: it pumps the connection,
flushes the outbox, and heartbeats on ``heartbeat_interval`` — so a
slow run keeps heartbeating (straggler, never killed) while a paused or
GIL-bound worker goes silent (the coordinator's liveness call).  On a
lost connection the worker reconnects with backoff and **re-registers**,
then flushes any results buffered while disconnected — that is how it
survives both partitions and a coordinator restart; the coordinator
resolves replayed results by cache key, so nothing double-commits.
"""

from __future__ import annotations

import argparse
import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.cluster import comm, protocol
from repro.sweep import wire

#: Serializes per-run telemetry-registry installs across executor
#: threads (the registry hook is process-global).
_TELEMETRY_LOCK = threading.Lock()


class _ActiveRun:
    """One lease currently executing on an executor thread."""

    def __init__(self, lease_id: str, key: str) -> None:
        self.lease_id = lease_id
        self.key = key
        self.started = time.monotonic()


class ClusterWorker:
    """One worker process/thread serving a coordinator.

    Parameters
    ----------
    address:
        The coordinator's listen address.
    name:
        Stable worker name; reconnections under the same name let the
        coordinator match the returning worker to its old state.
    capacity:
        Concurrent executor slots (and the advertised lease capacity).
    isolate:
        Execute leases in supervised subprocesses (see module docs).
    reconnect_timeout:
        Total seconds to keep retrying a lost/absent coordinator before
        giving up; ``0`` fails fast (tests), ``None`` retries forever.
    chaos:
        Optional :class:`~repro.cluster.chaos.WorkerChaos` hook driving
        deterministic failure injection (kills, pauses, partitions,
        stalls) for the chaos harness.
    """

    def __init__(
        self,
        address: str,
        name: Optional[str] = None,
        capacity: int = 1,
        isolate: bool = False,
        heartbeat_interval: float = 0.25,
        reconnect_timeout: Optional[float] = 30.0,
        reconnect_delay: float = 0.1,
        chaos=None,
    ) -> None:
        self.address = address
        self.name = name or f"worker-{os.getpid()}"
        self.capacity = max(1, int(capacity))
        self.isolate = isolate
        self.heartbeat_interval = heartbeat_interval
        self.reconnect_timeout = reconnect_timeout
        self.reconnect_delay = reconnect_delay
        self.chaos = chaos
        self.telemetry_on = False
        self._conn: Optional[comm.Connection] = None
        self._running = False
        self._killed = False
        self._lock = threading.Lock()
        #: Wakes executor threads the moment a lease lands (fast lane);
        #: shares ``_lock`` so intake and revoke stay serialized.
        self._lease_cv = threading.Condition(self._lock)
        #: Receiver-side base-spec table for delta-encoded leases.
        self._decoder = wire.SpecDecoder()
        self._fast = wire.dispatch_fast_default()
        self._leases: deque = deque()  # granted, not yet picked up
        self._active: Dict[str, _ActiveRun] = {}
        self._outbox: deque = deque()  # messages awaiting a live conn
        self._executors: List[threading.Thread] = []
        self._run_counter = itertools.count()
        self.results_completed = 0
        self._last_heartbeat = 0.0
        self._reconnect_not_before = 0.0

    # -- connection management ------------------------------------------
    def _connect(self) -> bool:
        """(Re)connect and register; False when the budget is spent."""
        deadline = (
            None
            if self.reconnect_timeout is None
            else time.monotonic() + self.reconnect_timeout
        )
        delay = self.reconnect_delay
        while self._running:
            wait = self._reconnect_not_before - time.monotonic()
            if wait > 0:
                time.sleep(min(wait, 0.1))
                continue
            try:
                conn = comm.connect(self.address)
            except comm.ClusterError:
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                time.sleep(delay)
                delay = min(delay * 2, 2.0)
                continue
            conn.send(
                {
                    "type": protocol.MSG_REGISTER,
                    "name": self.name,
                    "capacity": self.capacity,
                    "pid": os.getpid(),
                    "mode": "pool" if self.isolate else "inline",
                }
            )
            self._conn = conn
            return True
        return False

    def _drop_conn(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _post(self, message: Dict[str, Any]) -> None:
        """Queue a message for the main loop to flush (thread-safe)."""
        with self._lock:
            self._outbox.append(message)

    def _flush(self) -> bool:
        """Push the outbox over the live connection; False on failure."""
        while True:
            with self._lock:
                if not self._outbox:
                    return True
                message = self._outbox[0]
            try:
                self._conn.send(message)
            except comm.ClusterError:
                return False
            with self._lock:
                self._outbox.popleft()

    # -- lease intake ----------------------------------------------------
    def _handle(self, message: Dict[str, Any]) -> None:
        mtype = message.get("type")
        if mtype == protocol.MSG_WELCOME:
            self.telemetry_on = bool(message.get("telemetry"))
        elif mtype == protocol.MSG_SPEC_BASE:
            try:
                self._decoder.add_base(
                    message.get("base"), message.get("spec")
                )
            except wire.SpecDeltaError:
                # A corrupt base registration is unreportable here (no
                # lease to answer on); any lease referencing it fails
                # decode, which the coordinator retries with a re-ship.
                pass
        elif mtype == protocol.MSG_LEASE:
            with self._lock:
                self._leases.append(message)
                self._lease_cv.notify()
        elif mtype == protocol.MSG_LEASE_BATCH:
            bodies = message.get("leases") or []
            with self._lock:
                self._leases.extend(bodies)
                self._lease_cv.notify_all()
        elif mtype == protocol.MSG_REVOKE:
            lease_id = message.get("lease")
            with self._lock:
                for queued in list(self._leases):
                    if queued.get("lease") == lease_id:
                        self._leases.remove(queued)
                        self._outbox.append(
                            {
                                "type": protocol.MSG_REVOKED,
                                "lease": lease_id,
                            }
                        )
                        break
                # A started lease is never handed back: its result wins
                # or loses the commit race at the coordinator.
        elif mtype == protocol.MSG_SHUTDOWN:
            self._running = False

    def _take_lease(self, wait: float = 0.0) -> Optional[Dict[str, Any]]:
        with self._lease_cv:
            if not self._leases and wait > 0:
                self._lease_cv.wait(wait)
            if self._leases:
                return self._leases.popleft()
        return None

    # -- execution -------------------------------------------------------
    def _execute_inline(
        self, spec, timeout: Optional[float], width: int
    ):
        """Run a spec on this thread; returns (ok, payload, kind, snap)."""
        from repro.sweep.registry import execute_spec

        snap = None
        try:
            if self.telemetry_on:
                from repro.telemetry.registry import MetricsRegistry, install

                with _TELEMETRY_LOCK:
                    registry = MetricsRegistry()
                    previous = install(registry)
                    try:
                        metrics = execute_spec(spec)
                    finally:
                        install(previous)
                    snap = registry.snapshot()
            else:
                metrics = execute_spec(spec)
        except Exception as exc:
            return (
                False,
                {"type": type(exc).__name__, "message": str(exc)},
                "exception",
                snap,
            )
        return True, metrics, "", snap

    def _spawn_pool_proc(self):
        import multiprocessing

        from repro.sweep.engine import _worker_main

        parent, child = multiprocessing.Pipe()
        proc = multiprocessing.Process(
            target=_worker_main, args=(child,), daemon=True
        )
        proc.start()
        child.close()
        return proc, parent

    def _execute_isolated(
        self, state: Dict[str, Any], key: str, spec,
        timeout: Optional[float], width: int,
    ):
        """Run a spec in this slot's supervised subprocess.

        Mirrors the single-host pool's contract: a dead subprocess is a
        ``crash``, one past ``timeout * width`` is killed and reported
        as a ``timeout``; either way the subprocess is replaced.
        """
        from repro.telemetry import HEARTBEAT_TAG

        if state.get("proc") is None or not state["proc"].is_alive():
            state["proc"], state["pipe"] = self._spawn_pool_proc()
        proc, pipe = state["proc"], state["pipe"]
        telem = (
            {"heartbeat_interval": self.heartbeat_interval}
            if self.telemetry_on
            else None
        )
        try:
            pipe.send((key, spec, telem))
        except (OSError, BrokenPipeError):
            state["proc"] = state["pipe"] = None
            return (
                False,
                {"type": "SweepWorkerError",
                 "message": "pool worker died between assignments"},
                "crash",
                None,
            )
        deadline = (
            time.monotonic() + timeout * max(width, 1)
            if timeout is not None
            else None
        )
        while True:  # the assigned run must resolve either way
            step = 0.1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    proc.terminate()
                    proc.join(timeout=5.0)
                    state["proc"] = state["pipe"] = None
                    return (
                        False,
                        {"type": "SweepTimeout",
                         "message": (
                             f"run exceeded the {timeout:g}s wall-clock "
                             "timeout"
                         )},
                        "timeout",
                        None,
                    )
                step = min(step, remaining)
            if pipe.poll(step):
                try:
                    message = pipe.recv()
                except (EOFError, OSError):
                    message = None
                if message is None:
                    break  # torn pipe: treat as a crash below
                if message[0] == HEARTBEAT_TAG:
                    continue  # subprocess liveness; main loop heartbeats
                _key, ok, payload, _wall, snap = message
                if ok:
                    return True, payload, "", snap
                return False, payload, "exception", snap
            elif not proc.is_alive():
                break
        code = proc.exitcode if proc is not None else None
        state["proc"] = state["pipe"] = None
        return (
            False,
            {"type": "SweepWorkerError",
             "message": f"worker process died (exit code {code})"},
            "crash",
            None,
        )

    def _executor_loop(self, slot: int) -> None:
        state: Dict[str, Any] = {"proc": None, "pipe": None}
        try:
            while self._running:
                # Fast lane: block on the lease condvar (wakes the
                # instant a grant lands) instead of the legacy 10ms poll.
                lease = self._take_lease(wait=0.05 if self._fast else 0.0)
                if lease is None:
                    if not self._fast:
                        time.sleep(0.01)
                    continue
                lease_id = lease["lease"]
                key = lease["key"]
                try:
                    spec = self._decoder.decode(lease)
                except wire.SpecDeltaError as exc:
                    # No MSG_STARTED: the run never began.  A "decode"
                    # kind routes through the coordinator's retry path,
                    # which re-ships every base before the re-grant.
                    self._post(
                        {
                            "type": protocol.MSG_RESULT,
                            "lease": lease_id,
                            "key": key,
                            "ok": False,
                            "payload": {
                                "type": type(exc).__name__,
                                "message": str(exc),
                            },
                            "kind": "decode",
                            "wall": 0.0,
                            "snap": None,
                        }
                    )
                    continue
                width = int(lease.get("width") or 1)
                timeout = lease.get("timeout")
                run_index = next(self._run_counter)
                active = _ActiveRun(lease_id, key)
                with self._lock:
                    self._active[lease_id] = active
                self._post(
                    {"type": protocol.MSG_STARTED, "lease": lease_id,
                     "key": key}
                )
                if self.chaos is not None:
                    stall = self.chaos.stall_before(run_index)
                    if stall > 0:
                        time.sleep(stall)
                start = time.monotonic()
                if self.isolate:
                    ok, payload, kind, snap = self._execute_isolated(
                        state, key, spec, timeout, width
                    )
                else:
                    ok, payload, kind, snap = self._execute_inline(
                        spec, timeout, width
                    )
                wall = time.monotonic() - start
                with self._lock:
                    self._active.pop(lease_id, None)
                self._post(
                    {
                        "type": protocol.MSG_RESULT,
                        "lease": lease_id,
                        "key": key,
                        "ok": ok,
                        "payload": payload,
                        "kind": kind,
                        "wall": wall,
                        "snap": snap,
                    }
                )
                self.results_completed += 1
        finally:
            proc = state.get("proc")
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    # -- the main loop ---------------------------------------------------
    def _heartbeat(self) -> None:
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_interval:
            return
        self._last_heartbeat = now
        with self._lock:
            busy = {
                run.lease_id: round(now - run.started, 3)
                for run in self._active.values()
            }
        try:
            self._conn.send(
                {"type": protocol.MSG_HEARTBEAT, "busy": busy}
            )
        except comm.ClusterError:
            pass  # the pump notices the dead conn

    def _apply_chaos(self) -> None:
        if self.chaos is None:
            return
        event = self.chaos.next_event(self.results_completed)
        if event is None:
            return
        if event.kind == "kill":
            # Abrupt death: no goodbye, no flush — the coordinator only
            # learns from the closed connection / silence.
            self._killed = True
            self._running = False
            self._drop_conn()
        elif event.kind == "pause":
            # Heartbeat silence: the main loop sleeps through its
            # heartbeats while executor threads keep running.
            time.sleep(event.duration)
        elif event.kind == "partition":
            self._drop_conn()
            self._reconnect_not_before = (
                time.monotonic() + event.duration
            )

    def run(self) -> None:
        """Serve leases until shutdown, stop, or a chaos kill."""
        self._running = True
        for slot in range(self.capacity):
            thread = threading.Thread(
                target=self._executor_loop,
                args=(slot,),
                name=f"{self.name}-exec{slot}",
                daemon=True,
            )
            thread.start()
            self._executors.append(thread)
        try:
            while self._running:
                if self._conn is None:
                    if not self._connect():
                        break
                if self._fast:
                    # Short poll while anything is in flight (results
                    # must flush promptly for tiny cells), long poll
                    # when idle so an idle worker stays cheap.
                    with self._lock:
                        busy = bool(
                            self._active or self._leases or self._outbox
                        )
                    recv_timeout = 0.002 if busy else 0.02
                else:
                    recv_timeout = 0.02
                try:
                    message = self._conn.recv(timeout=recv_timeout)
                    while message is not None:
                        self._handle(message)
                        if not self._running or not self._fast:
                            break
                        message = self._conn.recv(timeout=0)
                except comm.ConnectionClosed:
                    self._drop_conn()
                    continue
                if not self._running:
                    break
                if not self._flush():
                    self._drop_conn()
                    continue
                self._heartbeat()
                self._apply_chaos()
        finally:
            self._running = False
            if self._conn is not None and not self._killed:
                try:
                    self._conn.send({"type": protocol.MSG_GOODBYE})
                except comm.ClusterError:
                    pass
            self._drop_conn()
            for thread in self._executors:
                thread.join(timeout=5.0)
            self._executors.clear()

    def stop(self) -> None:
        """Ask the worker loop to exit (thread-safe)."""
        self._running = False


def start_worker_thread(
    address: str, name: Optional[str] = None, **kwargs
) -> ClusterWorker:
    """Spawn a :class:`ClusterWorker` on a daemon thread (tests, and the
    ``--cluster inproc`` auto-pool).  Returns the worker; its thread is
    ``worker._thread``."""
    worker = ClusterWorker(address, name=name, **kwargs)
    thread = threading.Thread(
        target=worker.run, name=f"cluster-{worker.name}", daemon=True
    )
    worker._thread = thread
    thread.start()
    return worker


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.cluster.worker --connect ...``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Join a repro sweep coordinator and execute leases.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="ADDR",
        help="coordinator address (tcp://host:port or inproc://name)",
    )
    parser.add_argument(
        "--name", default=None, help="stable worker name (default: pid-based)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="concurrent executor slots (default 1)",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help="execute leases on threads in this process instead of in "
        "supervised subprocesses (faster; loses crash/timeout isolation)",
    )
    parser.add_argument(
        "--reconnect-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long to keep retrying a lost coordinator before exiting "
        "(default 30; 0 fails fast)",
    )
    args = parser.parse_args(argv)
    worker = ClusterWorker(
        args.connect,
        name=args.name,
        capacity=args.jobs,
        isolate=not args.no_isolate,
        reconnect_timeout=args.reconnect_timeout,
    )
    worker.run()
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
