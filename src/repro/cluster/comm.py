"""The cluster connector: one message API, two transports.

Every coordinator/worker conversation (see :mod:`repro.cluster`) speaks
JSON messages over a :class:`Connection`.  Two backends implement the
same five-call surface — :func:`listen`, :func:`connect`,
``Connection.send/recv/close`` — selected by the address scheme:

``inproc://<name>``
    Queue-based, in-process.  Deterministic and dependency-free: the
    "wire" is a pair of thread-safe queues, so cluster tests (and the
    chaos harness) run entirely inside one interpreter with real
    concurrency but no sockets.  A name registers globally; connecting
    to an unregistered name raises :class:`ClusterUnavailable` (the
    worker's reconnect loop retries until the coordinator is back).

``tcp://<host>:<port>``
    Real sockets via asyncio streams on a shared background event-loop
    thread.  Frames are length-prefixed (4-byte big-endian) UTF-8 JSON.
    Port ``0`` binds ephemerally; ``Listener.address`` reports the
    bound port so tests can spawn workers against it.

Both transports deliver messages in FIFO order per connection and fail
*loudly*: a peer that goes away surfaces as :class:`ConnectionClosed`
on the next ``send``/``recv`` (after any already-delivered messages
drain), never as a silent hang.  The coordinator's liveness logic (see
``docs/cluster.md``) is built on exactly that contract.
"""

from __future__ import annotations

import json
import queue
import struct
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError


class ClusterError(ReproError):
    """Base class for cluster comm/coordination failures."""


class ClusterUnavailable(ClusterError):
    """No listener at the address (coordinator down or not yet up)."""


class ConnectionClosed(ClusterError):
    """The peer closed (or lost) the connection."""


class AddressInUse(ClusterError):
    """A listener is already bound to the address."""


#: Upper bound on one frame's JSON payload; a frame past it is treated
#: as stream corruption and closes the connection.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Inbox sentinel marking end-of-stream.
_EOF = object()


def _parse_address(address: str) -> Tuple[str, str]:
    """Split ``scheme://rest``; raises on an unknown scheme."""
    if "://" not in address:
        raise ClusterError(
            f"cluster address must look like inproc://name or "
            f"tcp://host:port, got {address!r}"
        )
    scheme, rest = address.split("://", 1)
    if scheme not in ("inproc", "tcp"):
        raise ClusterError(
            f"unknown cluster transport {scheme!r} (want inproc or tcp)"
        )
    if not rest:
        raise ClusterError(f"cluster address {address!r} names no endpoint")
    return scheme, rest


class Connection:
    """One bidirectional JSON-message channel (both transports).

    ``recv`` returns the next message, ``None`` on timeout, and raises
    :class:`ConnectionClosed` once the peer is gone *and* every
    already-received message has been drained — so no delivered message
    is ever lost to a racing close.
    """

    def __init__(self) -> None:
        self._inbox: "queue.Queue[Any]" = queue.Queue()
        self._closed = threading.Event()
        self._drained = False

    @property
    def closed(self) -> bool:
        """Whether the channel can no longer carry new messages."""
        return self._closed.is_set()

    def send(self, message: Dict[str, Any]) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next message; ``None`` on timeout (``timeout=None`` blocks)."""
        if self._drained:
            raise ConnectionClosed("connection closed")
        try:
            if timeout is not None and timeout <= 0:
                item = self._inbox.get_nowait()
            else:
                item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            if self._closed.is_set():
                # Peer gone and nothing buffered: report it now rather
                # than on some later call.
                self._drained = True
                raise ConnectionClosed("connection closed") from None
            return None
        if item is _EOF:
            self._drained = True
            raise ConnectionClosed("connection closed")
        return item

    def poll(self) -> bool:
        """Whether a ``recv`` would return immediately."""
        return not self._inbox.empty()

    def close(self) -> None:
        raise NotImplementedError


# -- inproc backend ------------------------------------------------------

_INPROC_LOCK = threading.Lock()
_INPROC_LISTENERS: Dict[str, "InprocListener"] = {}


class InprocConnection(Connection):
    """One side of an in-process connection pair."""

    def __init__(self) -> None:
        super().__init__()
        self.peer: Optional["InprocConnection"] = None

    def send(self, message: Dict[str, Any]) -> None:
        peer = self.peer
        if self._closed.is_set() or peer is None or peer._closed.is_set():
            raise ConnectionClosed("connection closed")
        # Round-trip through JSON so both transports carry exactly the
        # same value space (no smuggled objects, tuples become lists).
        peer._inbox.put(json.loads(json.dumps(message)))

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._inbox.put(_EOF)
        peer = self.peer
        if peer is not None and not peer._closed.is_set():
            peer._closed.set()
            peer._inbox.put(_EOF)


def _inproc_pair() -> Tuple[InprocConnection, InprocConnection]:
    a, b = InprocConnection(), InprocConnection()
    a.peer, b.peer = b, a
    return a, b


class InprocListener:
    """Accept side of the queue transport, registered by name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.address = f"inproc://{name}"
        self._accept_q: "queue.Queue[InprocConnection]" = queue.Queue()
        self._closed = False

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        """Next inbound connection; ``None`` on timeout."""
        if self._closed:
            raise ConnectionClosed(f"listener {self.address} closed")
        try:
            if timeout is not None and timeout <= 0:
                return self._accept_q.get_nowait()
            return self._accept_q.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        with _INPROC_LOCK:
            if _INPROC_LISTENERS.get(self.name) is self:
                del _INPROC_LISTENERS[self.name]
        self._closed = True


def _inproc_listen(name: str) -> InprocListener:
    with _INPROC_LOCK:
        if name in _INPROC_LISTENERS:
            raise AddressInUse(f"inproc://{name} already has a listener")
        listener = InprocListener(name)
        _INPROC_LISTENERS[name] = listener
        return listener


def _inproc_connect(name: str) -> Connection:
    with _INPROC_LOCK:
        listener = _INPROC_LISTENERS.get(name)
    if listener is None or listener._closed:
        raise ClusterUnavailable(f"no listener at inproc://{name}")
    ours, theirs = _inproc_pair()
    listener._accept_q.put(theirs)
    return ours


# -- tcp backend ---------------------------------------------------------

_LOOP_LOCK = threading.Lock()
_LOOP_THREAD: Optional["_AsyncLoop"] = None


class _AsyncLoop:
    """The shared asyncio event loop running on a daemon thread.

    One loop serves every TCP listener and connection in the process;
    all socket I/O happens on it, and the synchronous API talks to it
    with ``call_soon_threadsafe`` / ``run_coroutine_threadsafe``.
    """

    def __init__(self) -> None:
        import asyncio

        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="repro-cluster-io", daemon=True
        )
        self.thread.start()

    @classmethod
    def get(cls) -> "_AsyncLoop":
        global _LOOP_THREAD
        with _LOOP_LOCK:
            if _LOOP_THREAD is None:
                _LOOP_THREAD = cls()
            return _LOOP_THREAD

    def run(self, coro, timeout: Optional[float] = 10.0):
        import asyncio

        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout=timeout)


class TcpConnection(Connection):
    """A length-prefixed JSON frame stream over one asyncio socket."""

    def __init__(self, io: _AsyncLoop, reader, writer) -> None:
        super().__init__()
        self._io = io
        self._reader = reader
        self._writer = writer
        self._io.loop.call_soon_threadsafe(self._start_reader)

    def _start_reader(self) -> None:
        self._io.loop.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(4)
                (length,) = struct.unpack(">I", header)
                if length > MAX_FRAME_BYTES:
                    break  # corrupt stream; drop the connection
                payload = await self._reader.readexactly(length)
                self._inbox.put(json.loads(payload.decode("utf-8")))
        except Exception:
            pass  # EOF, reset, or garbage: all become ConnectionClosed
        self._closed.set()
        self._inbox.put(_EOF)
        try:
            self._writer.close()
        except Exception:
            pass

    def send(self, message: Dict[str, Any]) -> None:
        if self._closed.is_set():
            raise ConnectionClosed("connection closed")
        data = json.dumps(message, separators=(",", ":")).encode("utf-8")
        frame = struct.pack(">I", len(data)) + data

        def _write() -> None:
            try:
                self._writer.write(frame)
            except Exception:
                pass  # the read loop notices the dead socket

        self._io.loop.call_soon_threadsafe(_write)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._inbox.put(_EOF)

        def _shutdown() -> None:
            try:
                self._writer.close()
            except Exception:
                pass

        self._io.loop.call_soon_threadsafe(_shutdown)


class TcpListener:
    """Accept side of the TCP transport."""

    def __init__(self, host: str, port: int) -> None:
        import asyncio

        self._io = _AsyncLoop.get()
        self._accept_q: "queue.Queue[TcpConnection]" = queue.Queue()
        self._closed = False

        def _on_client(reader, writer) -> None:
            self._accept_q.put(TcpConnection(self._io, reader, writer))

        try:
            self._server = self._io.run(
                asyncio.start_server(_on_client, host, port)
            )
        except OSError as exc:
            raise AddressInUse(
                f"cannot bind tcp://{host}:{port}: {exc}"
            ) from exc
        bound = self._server.sockets[0].getsockname()
        self.address = f"tcp://{bound[0]}:{bound[1]}"

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        if self._closed:
            raise ConnectionClosed(f"listener {self.address} closed")
        try:
            if timeout is not None and timeout <= 0:
                return self._accept_q.get_nowait()
            return self._accept_q.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._io.loop.call_soon_threadsafe(self._server.close)


def _parse_host_port(rest: str) -> Tuple[str, int]:
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise ClusterError(
            f"tcp address must be tcp://host:port, got tcp://{rest}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterError(f"invalid tcp port {port_text!r}") from None
    return host, port


def _tcp_connect(rest: str, timeout: Optional[float]) -> Connection:
    import asyncio

    host, port = _parse_host_port(rest)
    io = _AsyncLoop.get()
    try:
        reader, writer = io.run(
            asyncio.open_connection(host, port), timeout=timeout or 10.0
        )
    except (OSError, TimeoutError) as exc:
        raise ClusterUnavailable(
            f"cannot reach tcp://{host}:{port}: {exc}"
        ) from exc
    return TcpConnection(io, reader, writer)


# -- public API ----------------------------------------------------------

def listen(address: str):
    """Bind a listener at ``address`` (``inproc://...`` or ``tcp://...``)."""
    scheme, rest = _parse_address(address)
    if scheme == "inproc":
        return _inproc_listen(rest)
    host, port = _parse_host_port(rest)
    return TcpListener(host, port)


def connect(address: str, timeout: Optional[float] = None) -> Connection:
    """Open a connection to the listener at ``address``.

    Raises :class:`ClusterUnavailable` when nothing is listening —
    callers that expect the peer to come back (the worker's reconnect
    loop) catch it and retry with backoff.
    """
    scheme, rest = _parse_address(address)
    if scheme == "inproc":
        return _inproc_connect(rest)
    return _tcp_connect(rest, timeout)


__all__ = [
    "AddressInUse",
    "ClusterError",
    "ClusterUnavailable",
    "Connection",
    "ConnectionClosed",
    "InprocListener",
    "MAX_FRAME_BYTES",
    "TcpConnection",
    "TcpListener",
    "connect",
    "listen",
]
