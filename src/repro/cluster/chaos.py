"""Deterministic chaos harness for the cluster backend.

The harness injects worker failures on a **seeded schedule** and proves
the recovery machinery end to end: a fig5-style sweep executed under
the inproc cluster backend — while workers stall, get killed, go
silent, and partition — must produce **bit-identical per-cell metrics**
to a plain local run, with the failures actually observed (≥1 lease
expiry, ≥1 reclaim, ≥1 suppressed duplicate commit) in the
``cluster_*`` telemetry counters, and zero duplicate checkpoint
commits.  Determinism lives in the results, never the schedule: chaos
perturbs *when and where* cells execute, and the exactly-once commit
layer guarantees *what* they produce.

Event kinds (see ``docs/cluster.md`` for the failure matrix):

``stall``
    An executor thread sleeps mid-lease past the lease deadline while
    the worker keeps heartbeating — exercises expiry, reclaim, and the
    late-duplicate suppression path (the zombie finishes after all).
``pause``
    The worker's *main loop* sleeps through its heartbeats while
    executor threads keep running — exercises silence-based death,
    reclaim-with-zombies, and revival when the worker wakes.
``kill``
    Abrupt death: the connection drops, buffered results are lost —
    exercises crash reclaim and the retry budget.
``partition``
    The connection drops but the worker survives, reconnects after a
    delay, re-registers, and flushes its buffered results — exercises
    re-registration and key-based duplicate arbitration.

Run the proof directly (exits non-zero on any violation)::

    PYTHONPATH=src python -m repro.cluster.chaos --seed 0
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Baseline chaos timing (seconds).  Scaled by ``--stretch`` on slow CI.
STALL_SECONDS = 1.0
PAUSE_SECONDS = 1.6
PARTITION_SECONDS = 0.3
LEASE_TIMEOUT = 0.35
LIVENESS_TIMEOUT = 1.0
HEARTBEAT_INTERVAL = 0.1


@dataclass
class ChaosEvent:
    """One scheduled failure, fired at most once.

    ``after_results`` gates the event on the worker's completed-result
    count — a deterministic, wall-clock-free trigger.
    """

    kind: str  # "kill" | "pause" | "partition"
    after_results: int
    duration: float = 0.0
    fired: bool = False


@dataclass
class WorkerChaos:
    """The failure schedule injected into one :class:`ClusterWorker`."""

    events: List[ChaosEvent] = field(default_factory=list)
    #: worker-local run index -> seconds to sleep mid-lease (after
    #: ``started`` is sent, before execution).
    stalls: Dict[int, float] = field(default_factory=dict)

    def stall_before(self, run_index: int) -> float:
        return self.stalls.pop(run_index, 0.0)

    def next_event(self, results_completed: int) -> Optional[ChaosEvent]:
        for event in self.events:
            if not event.fired and results_completed >= event.after_results:
                event.fired = True
                return event
        return None


def make_plan(
    seed: int = 0, workers: int = 3, stretch: float = 1.0
) -> Dict[str, WorkerChaos]:
    """Build the seeded per-worker failure schedule.

    The plan always includes the three guarantees the acceptance proof
    asserts on — a stall (→ lease expiry → reclaim → suppressed
    duplicate), a pause (→ silence death → reclaim → revival), and a
    kill (→ crash reclaim → retry) — and salts the remaining knobs
    (trigger counts, a partition) from ``seed``.
    """
    import random

    rng = random.Random(seed)
    plan: Dict[str, WorkerChaos] = {
        f"chaos-{i}": WorkerChaos() for i in range(max(workers, 1))
    }
    names = sorted(plan)
    # One stall on the first worker's first run: the lease expires while
    # the worker heartbeats, and the zombie's late result is suppressed.
    plan[names[0]].stalls[0] = STALL_SECONDS * stretch
    if len(names) > 1:
        plan[names[1]].events.append(
            ChaosEvent(
                kind="pause",
                after_results=1 + rng.randrange(2),
                duration=PAUSE_SECONDS * stretch,
            )
        )
    if len(names) > 2:
        plan[names[2]].events.append(
            ChaosEvent(kind="kill", after_results=2 + rng.randrange(3))
        )
    if len(names) > 1 and rng.random() < 0.5:
        # A partition somewhere else in the fleet, when the seed says so.
        target = names[1 + rng.randrange(len(names) - 1)]
        plan[target].events.append(
            ChaosEvent(
                kind="partition",
                after_results=3 + rng.randrange(3),
                duration=PARTITION_SECONDS * stretch,
            )
        )
    return plan


def _fig5_specs(seeds: int = 3):
    """A small fig5-style grid: schedulers x parallelism x seeds on the
    TX2 preset (cheap simulated runs, a couple dozen cells)."""
    from repro.sweep.spec import RunSpec

    specs = []
    for scheduler in ("rws", "da", "dam-c"):
        for parallelism in (2, 3):
            for seed in range(seeds):
                specs.append(
                    RunSpec(
                        kind="single",
                        params={
                            "workload": {
                                "name": "layered",
                                "kernel": "matmul",
                                "parallelism": parallelism,
                                "total": parallelism * 10,
                            },
                            "machine": "jetson_tx2",
                            "scheduler": scheduler,
                        },
                        seed=seed,
                        metrics=("makespan", "tasks_completed"),
                    )
                )
    return specs


def _metrics_fingerprint(specs, metrics_list) -> Dict[str, str]:
    """Canonical per-cell fingerprint: key -> sorted-JSON of metrics."""
    return {
        spec.key(): json.dumps(metrics, sort_keys=True)
        for spec, metrics in zip(specs, metrics_list)
    }


def run_chaos_proof(
    seed: int = 0,
    workers: int = 3,
    stretch: float = 1.0,
    log=print,
) -> Dict[str, float]:
    """Execute the acceptance proof; returns the observed counters.

    Raises :class:`AssertionError` on any violation: a metrics mismatch
    vs. the local-pool run, a duplicate checkpoint commit, or chaos
    that failed to exercise expiry/reclaim/suppression.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.cluster.worker import start_worker_thread
    from repro.sweep.engine import SweepRunner
    from repro.telemetry import Telemetry

    specs = _fig5_specs()

    # 1. The yardstick: a plain local run of the same grid, uncached.
    local = SweepRunner(
        jobs=1, use_cache=False, progress=False, label="chaos-baseline"
    )
    baseline = _metrics_fingerprint(specs, local.run(specs))

    # 2. The same grid under the inproc cluster backend with chaos.
    #    A fresh cache directory so every cell misses and the checkpoint
    #    records exactly the commits this run made.
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    tele = Telemetry(enabled=True)
    address = f"inproc://chaos-proof-{seed}"
    plan = make_plan(seed=seed, workers=workers, stretch=stretch)
    runner = SweepRunner(
        jobs=1,
        cache_dir=cache_dir,
        use_cache=True,
        label="chaos-cluster",
        progress=False,
        cluster=address,
        max_attempts=4,  # headroom: a cell may be hit by several faults
        retry_backoff=0.2 * stretch,
        lease_timeout=LEASE_TIMEOUT * stretch,
        liveness_timeout=LIVENESS_TIMEOUT * stretch,
        telemetry=tele,
    )
    spawned = [
        start_worker_thread(
            address,
            name=name,
            capacity=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            reconnect_timeout=10.0 * stretch,
            chaos=worker_chaos,
        )
        for name, worker_chaos in sorted(plan.items())
    ]
    try:
        chaotic = _metrics_fingerprint(specs, runner.run(specs))
        checkpoint = (
            Path(cache_dir) / "checkpoints" / "chaos-cluster.jsonl"
        )
        committed = [
            json.loads(line)["key"]
            for line in checkpoint.read_text().splitlines()
            if line.strip()
        ]
    finally:
        runner.close()
        for worker in spawned:
            worker.stop()
        shutil.rmtree(cache_dir, ignore_errors=True)

    # 3. Bit-identical per-cell metrics, exactly-once commits.
    mismatched = sorted(
        k for k in baseline if chaotic.get(k) != baseline[k]
    )
    assert not mismatched, (
        f"{len(mismatched)} cell(s) differ from the local run: "
        f"{mismatched[:3]}"
    )
    assert len(committed) == len(set(committed)), (
        "duplicate checkpoint commits: "
        f"{len(committed)} lines, {len(set(committed))} unique"
    )
    assert set(committed) == set(baseline), (
        "checkpoint does not cover the grid exactly once"
    )

    # 4. Chaos actually happened, and recovery observed it.
    counters = {
        name: tele.registry.get(name).value
        for name in (
            "cluster_leases_expired_total",
            "cluster_leases_reclaimed_total",
            "cluster_reexec_suppressed_total",
            "cluster_workers_lost_total",
            "cluster_retries_total",
        )
    }
    assert counters["cluster_leases_expired_total"] >= 1, counters
    assert counters["cluster_leases_reclaimed_total"] >= 1, counters
    assert counters["cluster_reexec_suppressed_total"] >= 1, counters
    log(
        "chaos proof ok: "
        f"{len(baseline)} cells bit-identical under chaos "
        f"(expired={counters['cluster_leases_expired_total']:g}, "
        f"reclaimed={counters['cluster_leases_reclaimed_total']:g}, "
        f"suppressed={counters['cluster_reexec_suppressed_total']:g}, "
        f"lost={counters['cluster_workers_lost_total']:g}, "
        f"retries={counters['cluster_retries_total']:g})"
    )
    return counters


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.cluster.chaos``; exit 1 on failure."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.chaos",
        description="Run the cluster chaos acceptance proof.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=3, help="chaos workers to spawn"
    )
    parser.add_argument(
        "--stretch",
        type=float,
        default=1.0,
        help="scale every chaos delay/timeout (slow CI: 2.0)",
    )
    args = parser.parse_args(argv)
    try:
        run_chaos_proof(
            seed=args.seed, workers=args.workers, stretch=args.stretch
        )
    except AssertionError as exc:
        print(f"chaos proof FAILED: {exc}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
