"""Message vocabulary of the coordinator/worker conversation.

Every frame on a cluster connection is a JSON object with a ``"type"``
key.  The full protocol (see ``docs/cluster.md`` for the lifecycle):

Worker → coordinator
    ``register``   name, capacity, pid, and the worker's execution mode.
    ``started``    a leased run began executing (arms the lease deadline).
    ``result``     lease outcome: ``ok`` + metrics payload (or a captured
                   exception), wall seconds, optional telemetry snapshot.
    ``heartbeat``  periodic liveness ping with per-lease elapsed times.
    ``revoked``    acknowledges a revoke; the lease never started here.
    ``goodbye``    orderly departure (remaining leases reclaim instantly).

Coordinator → worker
    ``welcome``    registration accepted: sweep config (timeout,
                   heartbeat interval, telemetry on/off).
    ``lease``      one cell to execute: lease id, cache key, spec data,
                   replicate width, per-run timeout.
    ``revoke``     return an *unstarted* lease (work stealing).
    ``shutdown``   sweep over; the worker loop exits.

Specs cross the wire as their constructor data — a spec is already
plain data (that is the whole point of :class:`~repro.sweep.spec.RunSpec`),
so serialization is lossless and the remote ``spec.key()`` necessarily
equals the coordinator's.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.sweep.spec import RunSpec

MSG_REGISTER = "register"
MSG_WELCOME = "welcome"
MSG_LEASE = "lease"
MSG_REVOKE = "revoke"
MSG_REVOKED = "revoked"
MSG_STARTED = "started"
MSG_RESULT = "result"
MSG_HEARTBEAT = "heartbeat"
MSG_SHUTDOWN = "shutdown"
MSG_GOODBYE = "goodbye"


def spec_to_data(spec: RunSpec) -> Dict[str, Any]:
    """Serialize a spec for the wire (inverse of :func:`spec_from_data`)."""
    return {
        "kind": spec.kind,
        "params": dict(spec.params),
        "seed": spec.seed,
        "metrics": list(spec.metrics),
        "tags": dict(spec.tags),
    }


def spec_from_data(data: Dict[str, Any]) -> RunSpec:
    """Rebuild a spec from its wire form."""
    return RunSpec(
        kind=data["kind"],
        params=data["params"],
        seed=data["seed"],
        metrics=tuple(data["metrics"]),
        tags=data.get("tags", {}),
    )


__all__ = [
    "MSG_GOODBYE",
    "MSG_HEARTBEAT",
    "MSG_LEASE",
    "MSG_REGISTER",
    "MSG_RESULT",
    "MSG_REVOKE",
    "MSG_REVOKED",
    "MSG_SHUTDOWN",
    "MSG_STARTED",
    "MSG_WELCOME",
    "spec_from_data",
    "spec_to_data",
]
