"""Message vocabulary of the coordinator/worker conversation.

Every frame on a cluster connection is a JSON object with a ``"type"``
key.  The full protocol (see ``docs/cluster.md`` for the lifecycle):

Worker → coordinator
    ``register``   name, capacity, pid, and the worker's execution mode.
    ``started``    a leased run began executing (arms the lease deadline).
    ``result``     lease outcome: ``ok`` + metrics payload (or a captured
                   exception), wall seconds, optional telemetry snapshot.
    ``heartbeat``  periodic liveness ping with per-lease elapsed times.
    ``revoked``    acknowledges a revoke; the lease never started here.
    ``goodbye``    orderly departure (remaining leases reclaim instantly).

Coordinator → worker
    ``welcome``    registration accepted: sweep config (timeout,
                   heartbeat interval, telemetry on/off).
    ``spec_base``  interned base spec: content id + full spec data.
                   Sent once per connection before the first lease that
                   delta-encodes against it (see
                   :mod:`repro.sweep.wire`).
    ``lease``      one cell to execute: lease id, cache key, replicate
                   width, per-run timeout, and the spec — either whole
                   (``"spec"``) or as ``"base"`` + ``"delta"``.
    ``lease_batch``  several leases in one frame (the dispatch fast
                   lane's batched grant); each entry is one ``lease``
                   body.
    ``revoke``     return an *unstarted* lease (work stealing).
    ``shutdown``   sweep over; the worker loop exits.

Specs cross the wire as their constructor data — a spec is already
plain data (that is the whole point of :class:`~repro.sweep.spec.RunSpec`),
so serialization is lossless and the remote ``spec.key()`` necessarily
equals the coordinator's.  Delta-encoded specs keep that property: the
receiver rebuilds the full constructor data before hashing anything,
and base registration is content-checked (see ``docs/cluster.md``).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.sweep.spec import RunSpec

MSG_REGISTER = "register"
MSG_WELCOME = "welcome"
MSG_LEASE = "lease"
MSG_LEASE_BATCH = "lease_batch"
MSG_SPEC_BASE = "spec_base"
MSG_REVOKE = "revoke"
MSG_REVOKED = "revoked"
MSG_STARTED = "started"
MSG_RESULT = "result"
MSG_HEARTBEAT = "heartbeat"
MSG_SHUTDOWN = "shutdown"
MSG_GOODBYE = "goodbye"


def spec_to_data(spec: RunSpec) -> Dict[str, Any]:
    """Serialize a spec for the wire (inverse of :func:`spec_from_data`)."""
    return {
        "kind": spec.kind,
        "params": dict(spec.params),
        "seed": spec.seed,
        "metrics": list(spec.metrics),
        "tags": dict(spec.tags),
    }


def spec_from_data(data: Dict[str, Any]) -> RunSpec:
    """Rebuild a spec from its wire form."""
    return RunSpec(
        kind=data["kind"],
        params=data["params"],
        seed=data["seed"],
        metrics=tuple(data["metrics"]),
        tags=data.get("tags", {}),
    )


__all__ = [
    "MSG_GOODBYE",
    "MSG_HEARTBEAT",
    "MSG_LEASE",
    "MSG_LEASE_BATCH",
    "MSG_REGISTER",
    "MSG_RESULT",
    "MSG_REVOKE",
    "MSG_REVOKED",
    "MSG_SHUTDOWN",
    "MSG_SPEC_BASE",
    "MSG_STARTED",
    "MSG_WELCOME",
    "spec_from_data",
    "spec_to_data",
]
