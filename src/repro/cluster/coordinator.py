"""The sweep-cell coordinator: leases, liveness, exactly-once commit.

The coordinator owns a :mod:`repro.cluster.comm` listener and drives one
:meth:`ClusterCoordinator.execute` call per batch of pending sweep
cells.  The design generalizes PR 4's simulated-core recovery machinery
(lease expiry, queue reclaim, exactly-once re-execution, retry budgets)
to real workers over a connection, following the classic scheduler/worker
split:

* every pending cell is **leased** to a worker; the lease's expiry
  deadline arms when the worker reports the run *started*;
* **liveness** is the PR 7 heartbeat channel generalized over the comm
  layer: any message refreshes ``last_seen``; a closed connection or
  silence past ``liveness_timeout`` declares the worker lost and
  reclaims its leases onto the live pool;
* faulted cells retry with **exponential backoff + seeded jitter** up to
  ``max_attempts``, then resolve to *exhausted* (the CLI maps that to
  exit code 4);
* **exactly-once commit**: results are committed by cache key, first
  writer wins.  A reclaimed-then-finished lease's late result either
  commits (and the queued re-execution is dropped) or is suppressed as
  a duplicate — both paths count into
  ``cluster_reexec_suppressed_total`` and neither can double-commit a
  checkpoint line;
* **graceful degradation**: zero live workers parks the sweep (logged,
  resumable) instead of aborting, and a worker joining mid-sweep is
  granted leases immediately;
* **work stealing**: when the queue drains, an idle worker steals an
  *unstarted* lease from the slowest backlogged worker's tail.

Stragglers keep PR 7's contract: a slow-but-heartbeating run is flagged
(``cluster_stragglers_total``) and *never* reclaimed early — only the
lease deadline (the distributed analog of the per-run timeout) or
worker death takes work away.  See ``docs/cluster.md``.

The **dispatch fast lane** (default on; ``REPRO_DISPATCH_FAST=0``
restores the PR 9 wire behavior for apples-to-apples benchmarking)
layers three throughput optimisations over that machinery without
touching any of its invariants:

* leases are granted in **batches** (up to ``prefetch`` per frame, as
  ``lease_batch``) so a worker's backlog refills in one round-trip;
* specs are **delta-encoded** against interned base specs
  (:mod:`repro.sweep.wire`): the base ships once per connection, each
  cell as a compact diff, with a full-spec fallback whenever the diff
  would not be smaller;
* placement is **spec-aware**: per-worker throughput EWMAs — the cost
  model's wall-time predictions scored against observed walls, with a
  completion-rate fallback — rank workers fastest-first, and since the
  engine submits cells longest-first, the head of the queue (the
  longest work) lands on the fastest host.  Work stealing stays as the
  escape hatch when the ranking is wrong.
"""

from __future__ import annotations

import itertools
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster import comm, protocol
from repro.errors import ConfigurationError
from repro.sweep import wire
from repro.sweep.spec import RunSpec
from repro.telemetry import Telemetry
from repro.telemetry.heartbeat import straggler_after

#: How many leases a worker may hold per capacity slot (the extra is
#: the prefetch backlog that work stealing later raids).
BACKLOG_FACTOR = 2

#: Default cap on leases granted per frame by the fast lane's batched
#: grant (``lease_batch``); the per-worker backlog bound stays
#: ``capacity * BACKLOG_FACTOR`` regardless.
PREFETCH = 8

#: EWMA weight of the newest per-worker speed observation.
SPEED_ALPHA = 0.3

#: Throughput-factor clamp: one wild outlier (cold import, page cache)
#: must not park a worker at the back of the placement order forever.
SPEED_CLAMP = (0.05, 20.0)


def dispatch_fast_default() -> bool:
    """The fast-lane default: on unless ``REPRO_DISPATCH_FAST=0``."""
    return wire.dispatch_fast_default()

#: Default multiple of the per-run timeout after which a *started*
#: lease expires (the run timeout is the worker's kill budget; the
#: lease deadline must sit beyond it to stay a backstop).
LEASE_TIMEOUT_FACTOR = 2.5

#: Default worker-silence budget, in heartbeat intervals.  Generous on
#: purpose: heartbeats can stall while a run holds the GIL, and PR 7's
#: contract is that silence alone never kills *early*.
LIVENESS_INTERVALS = 20.0


@dataclass
class LeaseOutcome:
    """Terminal state of one cell, as seen by the sweep runner."""

    status: str  # "ok" | "exception" | "exhausted"
    payload: Any = None  # metrics dict, or {"type", "message"} on failure
    wall: float = 0.0
    attempts: int = 1
    kind: str = ""  # exception | crash | timeout | expired (failures only)
    snap: Optional[Dict[str, Any]] = None  # worker telemetry snapshot


@dataclass
class ExecuteReport:
    """Aggregate counters of one :meth:`ClusterCoordinator.execute`."""

    outcomes: Dict[str, LeaseOutcome] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    expired: int = 0
    reclaimed: int = 0
    suppressed: int = 0
    steals: int = 0
    peak_workers: int = 0


@dataclass
class _Cell:
    """One pending sweep cell plus its retry state."""

    key: str
    spec: RunSpec
    width: int = 1
    attempts: int = 0
    not_before: float = 0.0


@dataclass
class _Lease:
    """One grant of a cell to a worker."""

    lease_id: str
    cell: _Cell
    worker: str
    granted: float
    started_at: Optional[float] = None
    deadline: Optional[float] = None
    straggler: bool = False
    #: A steal revocation is in flight; the lease is requeued only when
    #: the worker confirms it never started the run (MSG_REVOKED).
    revoking: bool = False

    @property
    def started(self) -> bool:
        return self.started_at is not None


@dataclass
class _Remote:
    """Coordinator-side state of one registered worker."""

    name: str
    conn: comm.Connection
    capacity: int = 1
    pid: Optional[int] = None
    mode: str = "inline"
    last_seen: float = 0.0
    leases: Dict[str, _Lease] = field(default_factory=dict)
    results_done: int = 0
    #: Base-spec ids already shipped over *this* connection (a
    #: reconnect makes a fresh ``_Remote``, so bases re-ship).
    bases_sent: Set[str] = field(default_factory=set)
    #: Throughput factor EWMA: cost-model expectation / observed wall
    #: (>1 = faster than the model; placement ranks by it).
    speed: float = 1.0
    speed_samples: int = 0
    #: Observed per-replicate wall EWMA — the completion-rate fallback
    #: signal when the cost model has no expectation yet.
    wall_ewma: Optional[float] = None

    def unstarted(self) -> List[_Lease]:
        return [l for l in self.leases.values() if not l.started]


class ClusterCoordinator:
    """Leases sweep cells to remote workers and survives their failures.

    Parameters
    ----------
    address:
        Where to listen (``inproc://name`` or ``tcp://host:port``).
        ``tcp`` port 0 binds ephemerally; :attr:`address` reports the
        bound endpoint either way.
    telemetry:
        Hub whose registry receives the ``cluster_*`` metrics.
    max_attempts / retry_backoff:
        Per-cell retry budget and backoff base for *infrastructure*
        failures (worker death, lease expiry, remote crash/timeout),
        matching the local supervised pool's contract.  Attempt ``n``
        backs off ``retry_backoff * 2**(n-1)`` seconds plus seeded
        jitter.
    run_timeout:
        Per-run wall-clock budget shipped to workers with each lease
        (pool-mode workers kill and report ``timeout``).
    lease_timeout:
        Seconds (per replicate of width) after a lease *starts* before
        the coordinator expires and reclaims it.  Defaults to
        ``LEASE_TIMEOUT_FACTOR * run_timeout`` when a run timeout is
        set, else no expiry (liveness alone reclaims).
    liveness_timeout:
        Worker-silence budget; ``None`` derives a generous default from
        the heartbeat interval (silence must not kill *early*).
    drain_timeout:
        After the last cell resolves, how long to keep listening for
        in-flight duplicate results from reclaimed-but-alive leases so
        they are counted (and suppressed) rather than orphaned.
    cost_model:
        Optional :class:`~repro.sweep.cost.CostModel` for straggler
        yardsticks and spec-aware placement.
    seed:
        Seeds the backoff jitter — scheduling only, never results.
    prefetch:
        Fast-lane cap on leases granted per ``lease_batch`` frame.
    dispatch_fast:
        Force the dispatch fast lane on/off; ``None`` (default) reads
        ``REPRO_DISPATCH_FAST`` (on unless ``"0"``).
    """

    def __init__(
        self,
        address: str,
        telemetry: Optional[Telemetry] = None,
        max_attempts: int = 2,
        retry_backoff: float = 0.5,
        run_timeout: Optional[float] = None,
        lease_timeout: Optional[float] = None,
        liveness_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.25,
        drain_timeout: float = 0.25,
        cost_model=None,
        seed: int = 0,
        log: Optional[Callable[..., None]] = None,
        prefetch: int = PREFETCH,
        dispatch_fast: Optional[bool] = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if prefetch < 1:
            raise ConfigurationError(f"prefetch must be >= 1, got {prefetch}")
        self.listener = comm.listen(address)
        self.address = self.listener.address
        self.telemetry = telemetry or Telemetry(enabled=False)
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.run_timeout = run_timeout
        if lease_timeout is None and run_timeout is not None:
            lease_timeout = LEASE_TIMEOUT_FACTOR * run_timeout
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        if liveness_timeout is None:
            liveness_timeout = max(
                LIVENESS_INTERVALS * heartbeat_interval, 5.0
            )
        self.liveness_timeout = liveness_timeout
        self.drain_timeout = drain_timeout
        self.cost_model = cost_model
        self.prefetch = int(prefetch)
        self.dispatch_fast = (
            dispatch_fast_default() if dispatch_fast is None
            else bool(dispatch_fast)
        )
        self._rng = random.Random(seed)
        self._log = log or (lambda message, kind="info": None)
        self._lease_ids = itertools.count(1)
        self._workers: Dict[str, _Remote] = {}
        #: Sender-side base-spec table for delta encoding.
        self._interner = wire.SpecInterner()
        #: Cell key -> count of leases currently granted for it,
        #: maintained incrementally so `_next_ready` never rebuilds it.
        self._inflight: Dict[str, int] = {}
        #: Names of workers holding >= 1 lease — the expiry/straggler
        #: rescans iterate this instead of the whole worker table.
        self._leased: Set[str] = set()
        self._held_count = 0
        #: Fleet-wide per-replicate wall EWMA (the yardstick of the
        #: completion-rate placement fallback).
        self._wall_ewma: Optional[float] = None
        #: Connections accepted but not yet registered.
        self._pending_conns: List[comm.Connection] = []
        #: Connections of lost-but-possibly-returning workers, still
        #: pumped so a paused worker's late results are seen (and
        #: suppressed or committed) instead of silently dropped.
        self._lost_conns: Dict[str, comm.Connection] = {}
        #: Reclaimed-but-maybe-still-running leases by id (the owner is
        #: alive; its result may still arrive).
        self._zombies: Dict[str, _Lease] = {}
        self._closed = False

        reg = self.telemetry.registry
        self._m_live = reg.gauge(
            "cluster_workers_live", "Registered cluster workers currently live"
        )
        self._m_held = reg.gauge(
            "cluster_leases_held", "Leases currently granted to workers"
        )
        self._m_joined = reg.counter(
            "cluster_workers_joined_total", "Worker registrations accepted"
        )
        self._m_lost = reg.counter(
            "cluster_workers_lost_total",
            "Workers declared dead (connection closed or heartbeat silence)",
        )
        self._m_granted = reg.counter(
            "cluster_leases_granted_total", "Leases granted (retries re-count)"
        )
        self._m_expired = reg.counter(
            "cluster_leases_expired_total",
            "Started leases that outlived their expiry deadline",
        )
        self._m_reclaimed = reg.counter(
            "cluster_leases_reclaimed_total",
            "Leases taken back onto the queue (expiry, death, stealing)",
        )
        self._m_suppressed = reg.counter(
            "cluster_reexec_suppressed_total",
            "Duplicate commits avoided: late results dropped by cache key "
            "and queued re-executions cancelled by an earlier commit",
        )
        self._m_steals = reg.counter(
            "cluster_steals_total",
            "Unstarted leases stolen from a backlogged worker's tail",
        )
        self._m_retries = reg.counter(
            "cluster_retries_total",
            "Cell re-queues after an infrastructure failure",
        )
        self._m_results = reg.counter(
            "cluster_results_total", "Results received from workers"
        )
        self._m_heartbeats = reg.counter(
            "cluster_heartbeats_total", "Worker heartbeat messages received"
        )
        self._m_stragglers = reg.counter(
            "cluster_stragglers_total",
            "Remote runs flagged past their expected envelope (never killed)",
        )
        self._m_parked = reg.counter(
            "cluster_parked_total",
            "Dispatch-loop intervals spent parked with zero live workers",
        )
        self._m_frames = reg.counter(
            "dispatch_frames_total",
            "Messages sent on the dispatch path (lease, lease_batch and "
            "spec_base frames; pool assignments on the local path)",
        )
        self._m_spec_bytes = reg.counter(
            "dispatch_spec_bytes_total",
            "Encoded spec payload bytes actually shipped",
        )
        self._m_bytes_saved = reg.counter(
            "dispatch_bytes_saved_total",
            "Spec payload bytes avoided by delta encoding",
        )
        self._m_deltas = reg.counter(
            "dispatch_deltas_total",
            "Specs shipped as deltas against an interned base",
        )
        self._m_roundtrips_saved = reg.counter(
            "dispatch_roundtrips_saved_total",
            "Extra leases piggybacked on batched grant frames "
            "(grants minus grant messages)",
        )
        self._m_placements = reg.counter(
            "dispatch_placements_total",
            "Leases placed by the dispatch path",
        )
        self._m_placement_informed = reg.counter(
            "dispatch_placement_informed_total",
            "Leases placed with a per-worker throughput estimate in hand",
        )

    # -- worker bookkeeping ---------------------------------------------
    def workers_live(self) -> int:
        return len(self._workers)

    def _welcome(self, worker: _Remote) -> None:
        worker.conn.send(
            {
                "type": protocol.MSG_WELCOME,
                "worker": worker.name,
                "run_timeout": self.run_timeout,
                "heartbeat_interval": self.heartbeat_interval,
                "telemetry": bool(self.telemetry.enabled),
            }
        )

    def _register(
        self, conn: comm.Connection, message: Dict[str, Any], now: float
    ) -> None:
        name = str(message.get("name") or f"worker-{len(self._workers)}")
        old = self._workers.get(name)
        if old is not None and old.conn is not conn:
            # The worker reconnected (partition healed, coordinator
            # restart): reclaim whatever the old connection held — its
            # started leases become zombies whose late results are
            # resolved by key — and adopt the new connection.
            self._reclaim_worker(
                old, reason="connection replaced", keep_zombies=True
            )
        self._lost_conns.pop(name, None)
        worker = _Remote(
            name=name,
            conn=conn,
            capacity=max(1, int(message.get("capacity", 1))),
            pid=message.get("pid"),
            mode=str(message.get("mode", "inline")),
            last_seen=now,
        )
        self._workers[name] = worker
        self._m_joined.inc()
        self._m_live.set(len(self._workers))
        self._welcome(worker)
        self._log(
            f"cluster: worker {name} joined "
            f"(capacity {worker.capacity}, {worker.mode})"
        )

    def _revive(
        self, name: str, conn: comm.Connection, now: float
    ) -> _Remote:
        """A lost worker spoke again without re-registering: rejoin it
        with zero leases (everything it held was already reclaimed)."""
        worker = _Remote(name=name, conn=conn, last_seen=now)
        self._workers[name] = worker
        self._lost_conns.pop(name, None)
        self._m_joined.inc()
        self._m_live.set(len(self._workers))
        self._log(f"cluster: worker {name} resumed after silence")
        return worker

    def _reclaim_worker(
        self, worker: _Remote, reason: str, keep_zombies: bool
    ) -> None:
        """Take every lease back from ``worker`` and fault the started
        ones.  ``keep_zombies`` preserves started leases as zombies —
        used when the worker may still be executing (pause, partition,
        reconnect) so its late result is matched instead of orphaned."""
        leases = list(worker.leases.values())
        worker.leases.clear()
        for lease in leases:
            self._lease_removed(worker, lease)
            self._m_reclaimed.inc()
            self._report.reclaimed += 1
            if lease.started:
                if keep_zombies:
                    self._zombies[lease.lease_id] = lease
                self._fault(
                    lease.cell,
                    kind="crash",
                    etype="SweepWorkerError",
                    message=f"worker {worker.name} lost ({reason})",
                )
            else:
                # Never started: recycling costs no attempt.
                lease.cell.not_before = 0.0
                self._queue.append(lease.cell)
        self._update_held()

    def _lose_worker(self, worker: _Remote, reason: str) -> None:
        self._workers.pop(worker.name, None)
        self._m_lost.inc()
        self._m_live.set(len(self._workers))
        self._log(
            f"cluster: worker {worker.name} lost ({reason}); "
            f"reclaiming {len(worker.leases)} lease(s)",
            kind="retry",
        )
        # Keep the connection on file when it is still open: a paused
        # worker that wakes up will speak again and be revived.
        still_open = not worker.conn.closed
        self._reclaim_worker(worker, reason=reason, keep_zombies=still_open)
        if still_open:
            self._lost_conns[worker.name] = worker.conn

    def _update_held(self) -> None:
        self._m_held.set(self._held_count)

    def _lease_added(self, worker: _Remote, lease: _Lease) -> None:
        """Record a grant: worker table, inflight index, leased index."""
        worker.leases[lease.lease_id] = lease
        self._held_count += 1
        self._leased.add(worker.name)
        key = lease.cell.key
        self._inflight[key] = self._inflight.get(key, 0) + 1

    def _lease_removed(self, worker: Optional[_Remote], lease: _Lease) -> None:
        """Undo :meth:`_lease_added` after a lease left a worker table
        (result, expiry, revoke, reclaim) — call *after* the removal."""
        self._held_count -= 1
        if worker is not None and not worker.leases:
            self._leased.discard(worker.name)
        key = lease.cell.key
        remaining = self._inflight.get(key, 0) - 1
        if remaining > 0:
            self._inflight[key] = remaining
        else:
            self._inflight.pop(key, None)

    # -- cell resolution -------------------------------------------------
    def _resolve(self, cell_key: str, outcome: LeaseOutcome) -> None:
        self._report.outcomes[cell_key] = outcome
        self._unresolved.discard(cell_key)
        # Cancel any queued re-execution of the same cell (a reclaimed
        # lease finished after all): that is a suppressed re-execution.
        queued = [c for c in self._queue if c.key == cell_key]
        for cell in queued:
            self._queue.remove(cell)
            self._m_suppressed.inc()
            self._report.suppressed += 1
        # Revoke unstarted sibling leases of the same cell (stolen-then-
        # committed races); started siblings run to completion and their
        # results are suppressed on arrival.
        for worker in self._workers.values():
            for lease in list(worker.leases.values()):
                if lease.cell.key == cell_key and not lease.started:
                    del worker.leases[lease.lease_id]
                    self._lease_removed(worker, lease)
                    self._m_suppressed.inc()
                    self._report.suppressed += 1
                    try:
                        worker.conn.send(
                            {
                                "type": protocol.MSG_REVOKE,
                                "lease": lease.lease_id,
                            }
                        )
                    except comm.ClusterError:
                        pass
        if self._on_resolved is not None:
            extra = self._on_resolved(cell_key, outcome)
            if extra:
                for key, spec, width in extra:
                    self._add_cell(key, spec, width)

    def _add_cell(self, key: str, spec: RunSpec, width: int) -> None:
        if key in self._unresolved or key in self._report.outcomes:
            return
        self._unresolved.add(key)
        cell = _Cell(key=key, spec=spec, width=width)
        self._cells[key] = cell
        self._queue.append(cell)

    def _fault(
        self, cell: _Cell, kind: str, etype: str, message: str
    ) -> None:
        """Infrastructure failure of one execution: retry or exhaust."""
        cell.attempts += 1
        if kind in ("timeout", "expired"):
            self._report.timeouts += 1
        if cell.key not in self._unresolved:
            return  # already committed by a racing duplicate
        if cell.attempts >= self.max_attempts:
            self._resolve(
                cell.key,
                LeaseOutcome(
                    status="exhausted",
                    payload={"type": etype, "message": message},
                    attempts=cell.attempts,
                    kind=kind,
                ),
            )
            self._log(
                f"cluster: run {cell.key[:12]}: {kind} on attempt "
                f"{cell.attempts}/{self.max_attempts}; giving up "
                f"({message})",
                kind="fail",
            )
            return
        self._m_retries.inc()
        self._report.retries += 1
        delay = self.retry_backoff * (2 ** (cell.attempts - 1))
        delay *= 1.0 + 0.25 * self._rng.random()  # seeded jitter
        cell.not_before = time.monotonic() + delay
        self._queue.append(cell)
        self._log(
            f"cluster: run {cell.key[:12]}: {kind} on attempt "
            f"{cell.attempts}/{self.max_attempts}; retrying in "
            f"{delay:.2f}s ({message})",
            kind="retry",
        )

    # -- message handling -------------------------------------------------
    def _handle_result(
        self, worker: Optional[_Remote], message: Dict[str, Any]
    ) -> None:
        lease_id = message.get("lease")
        cell_key = message.get("key")
        self._m_results.inc()
        lease = self._zombies.pop(lease_id, None)
        wall = float(message.get("wall") or 0.0)
        if worker is not None:
            found = worker.leases.pop(lease_id, None)
            if found is not None:
                lease = found
                worker.results_done += 1
                self._lease_removed(worker, found)
                if message.get("ok") and wall > 0:
                    self._observe_speed(worker, found, wall)
        if str(message.get("kind") or "") == "decode" and worker is not None:
            # The worker could not decode the spec (e.g. a base that
            # never arrived on a torn connection): re-ship every base on
            # the retry rather than trusting the send-side bookkeeping.
            worker.bases_sent.clear()
        self._update_held()
        if cell_key not in self._unresolved:
            # Late duplicate of an already-committed cell (the reclaim
            # raced a finish): detected by cache key and dropped.
            self._m_suppressed.inc()
            self._report.suppressed += 1
            self._log(
                f"cluster: duplicate result for {str(cell_key)[:12]} "
                "suppressed (cell already committed)"
            )
            return
        cell = lease.cell if lease is not None else None
        attempts = (cell.attempts if cell is not None else 0) + 1
        snap = message.get("snap")
        if message.get("ok"):
            self._resolve(
                cell_key,
                LeaseOutcome(
                    status="ok",
                    payload=message.get("payload"),
                    wall=wall,
                    attempts=attempts,
                    snap=snap,
                ),
            )
            return
        payload = message.get("payload") or {}
        kind = str(message.get("kind") or "exception")
        if kind == "exception":
            # Deterministic: captured once, never retried.
            self._resolve(
                cell_key,
                LeaseOutcome(
                    status="exception",
                    payload=payload,
                    wall=wall,
                    attempts=attempts,
                    kind=kind,
                    snap=snap,
                ),
            )
            return
        # Remote infrastructure failure (pool worker crash/timeout).
        target = cell if cell is not None else self._find_cell(cell_key)
        if target is not None:
            self._fault(
                target,
                kind=kind,
                etype=str(payload.get("type") or "SweepWorkerError"),
                message=str(payload.get("message") or "remote failure"),
            )

    def _observe_speed(
        self, worker: _Remote, lease: _Lease, wall: float
    ) -> None:
        """Fold one completed lease into the worker's throughput EWMAs.

        Two signals, per the placement design: the cost model's wall-time
        expectation scored against the observed wall (the primary
        throughput factor), and the raw per-replicate wall (the
        completion-rate fallback used before the model knows the spec).
        Scheduling-only state — it can never change what is computed.
        """
        width = max(lease.cell.width, 1)
        per_rep = wall / width
        if worker.wall_ewma is None:
            worker.wall_ewma = per_rep
        else:
            worker.wall_ewma = (
                (1.0 - SPEED_ALPHA) * worker.wall_ewma + SPEED_ALPHA * per_rep
            )
        if self._wall_ewma is None:
            self._wall_ewma = per_rep
        else:
            self._wall_ewma = (
                (1.0 - SPEED_ALPHA) * self._wall_ewma + SPEED_ALPHA * per_rep
            )
        expected = (
            self.cost_model.predict(lease.cell.spec)
            if self.cost_model is not None
            else None
        )
        if expected is None or expected <= 0:
            return
        lo, hi = SPEED_CLAMP
        ratio = min(max(expected / wall, lo), hi)
        if worker.speed_samples == 0:
            worker.speed = ratio
        else:
            worker.speed = (
                (1.0 - SPEED_ALPHA) * worker.speed + SPEED_ALPHA * ratio
            )
        worker.speed_samples += 1

    def _worker_speed(self, worker: _Remote) -> float:
        """Placement rank: model-scored EWMA, else completion-rate
        fallback against the fleet-wide wall EWMA, else neutral 1.0."""
        if worker.speed_samples:
            return worker.speed
        if worker.wall_ewma and self._wall_ewma:
            lo, hi = SPEED_CLAMP
            return min(max(self._wall_ewma / worker.wall_ewma, lo), hi)
        return 1.0

    def _find_cell(self, cell_key: str) -> Optional[_Cell]:
        for cell in self._queue:
            if cell.key == cell_key:
                return None  # already queued for retry; nothing to fault
        for w in self._workers.values():
            for lease in w.leases.values():
                if lease.cell.key == cell_key:
                    return None
        if cell_key in self._unresolved and cell_key in self._cells:
            return self._cells[cell_key]
        return None

    def _handle_message(
        self,
        conn: comm.Connection,
        worker: Optional[_Remote],
        message: Dict[str, Any],
        now: float,
    ) -> Optional[_Remote]:
        mtype = message.get("type")
        if mtype == protocol.MSG_REGISTER:
            self._register(conn, message, now)
            return self._workers.get(str(message.get("name")))
        if worker is None:
            # A lost-but-open connection spoke: revive, then process.
            name = next(
                (n for n, c in self._lost_conns.items() if c is conn), None
            )
            if name is not None:
                worker = self._revive(name, conn, now)
            elif mtype == protocol.MSG_RESULT:
                # Unknown sender (e.g. pre-restart worker): results are
                # still matched by key — exactly-once is key-based.
                self._handle_result(None, message)
                return None
            else:
                return None
        worker.last_seen = now
        if mtype == protocol.MSG_HEARTBEAT:
            self._m_heartbeats.inc()
        elif mtype == protocol.MSG_STARTED:
            lease = worker.leases.get(message.get("lease"))
            if lease is not None and not lease.started:
                lease.started_at = now
                # The worker won any in-flight steal race: a started
                # lease is never handed back.
                lease.revoking = False
                if self.lease_timeout is not None:
                    lease.deadline = (
                        now + self.lease_timeout * max(lease.cell.width, 1)
                    )
        elif mtype == protocol.MSG_RESULT:
            self._handle_result(worker, message)
        elif mtype == protocol.MSG_REVOKED:
            lease = worker.leases.get(message.get("lease"))
            if lease is not None and not lease.started:
                # Confirmed unstarted: the steal completes and the cell
                # is free for the next idle worker.
                del worker.leases[lease.lease_id]
                self._lease_removed(worker, lease)
                self._m_steals.inc()
                self._report.steals += 1
                self._m_reclaimed.inc()
                self._report.reclaimed += 1
                lease.cell.not_before = 0.0
                self._queue.appendleft(lease.cell)
                self._update_held()
                self._log(
                    f"cluster: stole unstarted lease {lease.lease_id} "
                    f"({lease.cell.key[:12]}) from {worker.name}"
                )
        elif mtype == protocol.MSG_GOODBYE:
            self._lose_worker(worker, reason="goodbye")
        return worker

    def _pump(self, now: float) -> bool:
        """Accept joins and drain every connection; True if anything
        happened (used to decide whether the loop may sleep)."""
        activity = False
        while True:
            try:
                conn = self.listener.accept(timeout=0)
            except comm.ClusterError:
                break
            if conn is None:
                break
            self._pending_conns.append(conn)
            activity = True
        # Unregistered connections: wait for their register frame.
        for conn in list(self._pending_conns):
            try:
                while True:
                    message = conn.recv(timeout=0)
                    if message is None:
                        break
                    activity = True
                    self._handle_message(conn, None, message, now)
                    if any(
                        w.conn is conn for w in self._workers.values()
                    ):
                        self._pending_conns.remove(conn)
                        break
            except comm.ConnectionClosed:
                if conn in self._pending_conns:
                    self._pending_conns.remove(conn)
        for worker in list(self._workers.values()):
            try:
                while True:
                    message = worker.conn.recv(timeout=0)
                    if message is None:
                        break
                    activity = True
                    self._handle_message(worker.conn, worker, message, now)
                    if self._workers.get(worker.name) is not worker:
                        break  # replaced or lost mid-drain
            except comm.ConnectionClosed:
                if self._workers.get(worker.name) is worker:
                    self._lose_worker(worker, reason="connection closed")
                activity = True
        for name, conn in list(self._lost_conns.items()):
            try:
                while True:
                    message = conn.recv(timeout=0)
                    if message is None:
                        break
                    activity = True
                    self._handle_message(conn, None, message, now)
            except comm.ConnectionClosed:
                self._lost_conns.pop(name, None)
                # Whatever it was still running will never arrive.
                for lease_id, lease in list(self._zombies.items()):
                    if lease.worker == name:
                        del self._zombies[lease_id]
        return activity

    # -- lease management --------------------------------------------------
    def _check_liveness(self, now: float) -> None:
        for worker in list(self._workers.values()):
            if worker.conn.closed:
                self._lose_worker(worker, reason="connection closed")
            elif (
                self.liveness_timeout is not None
                and now - worker.last_seen > self.liveness_timeout
            ):
                self._lose_worker(
                    worker,
                    reason=(
                        f"no heartbeat for {now - worker.last_seen:.1f}s"
                    ),
                )

    def _check_expiry(self, now: float) -> None:
        # Only workers holding leases can have one expire — the rescan
        # walks the leased index, not the whole worker table, so an idle
        # fleet costs nothing per tick.
        if not self._leased:
            return
        for name in list(self._leased):
            worker = self._workers.get(name)
            if worker is None or not worker.leases:
                self._leased.discard(name)
                continue
            for lease in list(worker.leases.values()):
                if lease.deadline is None or now < lease.deadline:
                    continue
                del worker.leases[lease.lease_id]
                self._lease_removed(worker, lease)
                self._m_expired.inc()
                self._report.expired += 1
                self._m_reclaimed.inc()
                self._report.reclaimed += 1
                # The worker is alive — it cannot kill an in-flight
                # inline run, so the lease survives as a zombie whose
                # eventual result is matched by key.
                self._zombies[lease.lease_id] = lease
                self._log(
                    f"cluster: lease {lease.lease_id} "
                    f"({lease.cell.key[:12]}) on {worker.name} expired "
                    f"after {now - (lease.started_at or now):.1f}s; "
                    "reclaiming",
                    kind="retry",
                )
                self._fault(
                    lease.cell,
                    kind="expired",
                    etype="SweepTimeout",
                    message=(
                        f"lease outlived its "
                        f"{self.lease_timeout:g}s/replicate deadline on "
                        f"{worker.name}"
                    ),
                )
        self._update_held()

    def _check_stragglers(self, now: float) -> None:
        # Same leased-index walk as `_check_expiry`: lease-free workers
        # cannot straggle.
        for name in self._leased:
            worker = self._workers.get(name)
            if worker is None:
                continue
            for lease in worker.leases.values():
                if not lease.started or lease.straggler:
                    continue
                expected = (
                    self.cost_model.predict(lease.cell.spec)
                    if self.cost_model is not None
                    else None
                )
                limit = straggler_after(expected, self.lease_timeout)
                if limit is None:
                    continue
                elapsed = now - (lease.started_at or now)
                if elapsed > limit * max(lease.cell.width, 1):
                    lease.straggler = True
                    self._m_stragglers.inc()
                    self._log(
                        f"cluster: worker {worker.name} straggling on "
                        f"run {lease.cell.key[:12]}: {elapsed:.1f}s "
                        "elapsed; letting it finish",
                        kind="straggler",
                    )

    def _grant(self, now: float) -> None:
        """Hand queued cells to workers, fastest host first.

        The engine submits cells cost-ordered longest-first, so ranking
        workers by throughput makes the head of the queue (the longest
        outstanding work) land on the fastest host — the longest-cell-to-
        fastest-host placement — without any per-cell scan.  With the
        fast lane off, the pre-fast-lane emptiest-first order is kept.
        """
        if not self._queue or not self._workers:
            return
        fast = self.dispatch_fast
        if fast:
            workers = sorted(
                self._workers.values(),
                key=lambda w: (-self._worker_speed(w), len(w.leases), w.name),
            )
        else:
            workers = sorted(
                self._workers.values(), key=lambda w: (len(w.leases), w.name)
            )
        drained = False
        for worker in workers:
            if drained:
                break
            room = worker.capacity * BACKLOG_FACTOR - len(worker.leases)
            while room > 0 and not drained:
                batch_cap = min(room, self.prefetch) if fast else 1
                cells: List[_Cell] = []
                while len(cells) < batch_cap:
                    cell = self._next_ready(now)
                    if cell is None:
                        drained = True
                        break
                    cells.append(cell)
                if not cells:
                    break
                granted = self._send_grants(worker, cells, now)
                room -= granted
                if granted < len(cells):
                    break  # dead conn; liveness check reaps it
        self._update_held()

    def _send_grants(
        self, worker: _Remote, cells: List[_Cell], now: float
    ) -> int:
        """Ship one grant frame (plus any base frames) carrying
        ``cells`` to ``worker``; returns how many leases stuck.  On a
        send failure every cell goes back to the queue head and the
        answer is 0 — the liveness check reaps the dead connection."""
        fast = self.dispatch_fast
        frames: List[Dict[str, Any]] = []
        bodies: List[Dict[str, Any]] = []
        leases: List[_Lease] = []
        informed = fast and worker.speed_samples > 0
        for cell in cells:
            lease = _Lease(
                lease_id=f"L{next(self._lease_ids)}",
                cell=cell,
                worker=worker.name,
                granted=now,
            )
            body: Dict[str, Any] = {
                "lease": lease.lease_id,
                "key": cell.key,
                "width": cell.width,
                "timeout": self.run_timeout,
            }
            if fast:
                enc = self._interner.encode(cell.spec)
                if enc.delta is not None:
                    if enc.base_id not in worker.bases_sent:
                        base = self._interner.bases[enc.base_id]
                        frames.append(
                            {
                                "type": protocol.MSG_SPEC_BASE,
                                "base": enc.base_id,
                                "spec": wire.spec_to_wire(base),
                            }
                        )
                        worker.bases_sent.add(enc.base_id)
                    body["base"] = enc.base_id
                    body["delta"] = enc.delta
                    self._m_deltas.inc()
                else:
                    body["spec"] = enc.full
                self._m_spec_bytes.inc(enc.wire_bytes)
                self._m_bytes_saved.inc(enc.saved_bytes)
            else:
                body["spec"] = protocol.spec_to_data(cell.spec)
            bodies.append(body)
            leases.append(lease)
        if len(bodies) == 1:
            frames.append({"type": protocol.MSG_LEASE, **bodies[0]})
        else:
            frames.append(
                {"type": protocol.MSG_LEASE_BATCH, "leases": bodies}
            )
            self._m_roundtrips_saved.inc(len(bodies) - 1)
        try:
            for frame in frames:
                worker.conn.send(frame)
                self._m_frames.inc()
        except comm.ClusterError:
            # Nothing was leased: the worker-side effect of any frame
            # that did land is recovered by the decode-failure retry
            # path (bases re-ship) or duplicate-lease suppression.
            for cell in reversed(cells):
                self._queue.appendleft(cell)
            return 0
        for lease in leases:
            self._lease_added(worker, lease)
            self._m_granted.inc()
        self._m_placements.inc(len(leases))
        if informed:
            self._m_placement_informed.inc(len(leases))
        return len(leases)

    def _next_ready(self, now: float) -> Optional[_Cell]:
        """Pop the first queued cell whose backoff has elapsed; leaves
        cells that (a) are still backing off or (b) already have an
        in-flight lease (no point racing ourselves while the original
        might still land)."""
        for _ in range(len(self._queue)):
            cell = self._queue.popleft()
            if cell.not_before <= now and cell.key not in self._inflight:
                return cell
            self._queue.append(cell)
        return None

    def _steal(self, now: float) -> None:
        """Move one unstarted tail lease from the most backlogged worker
        to an idle one when the queue has nothing ready."""
        if self._queue and any(
            c.not_before <= now for c in self._queue
        ):
            return  # plenty of ordinary work to grant
        idle = [w for w in self._workers.values() if not w.leases]
        if not idle:
            return
        def stealable(w):
            return [l for l in w.unstarted() if not l.revoking]

        victims = [
            w
            for w in self._workers.values()
            if stealable(w) and len(w.leases) > w.capacity
        ]
        if not victims:
            return
        victim = max(
            victims,
            key=lambda w: (len(stealable(w)), -w.results_done),
        )
        lease = stealable(victim)[-1]  # the tail of its backlog
        # Two-phase: the worker may be starting this run right now, so
        # only its MSG_REVOKED confirmation (it found the lease still
        # queued) releases the cell for re-grant — an optimistic requeue
        # here would race MSG_STARTED and execute the cell twice.
        lease.revoking = True
        try:
            victim.conn.send(
                {"type": protocol.MSG_REVOKE, "lease": lease.lease_id}
            )
        except comm.ClusterError:
            lease.revoking = False  # dead conn; liveness check reaps it
        self._log(
            f"cluster: revoking unstarted lease {lease.lease_id} "
            f"({lease.cell.key[:12]}) on {victim.name} for an idle "
            "worker"
        )

    # -- the dispatch loop -------------------------------------------------
    def execute(
        self,
        jobs: Sequence[Tuple[str, RunSpec, int]],
        on_resolved: Optional[
            Callable[[str, LeaseOutcome], Optional[List[Tuple[str, RunSpec, int]]]]
        ] = None,
        tick: Optional[Callable[[int, int, int], None]] = None,
    ) -> ExecuteReport:
        """Drive every job to resolution; returns the outcome report.

        ``on_resolved(key, outcome)`` fires as each cell commits (the
        sweep runner records, caches and checkpoints there — streaming,
        so a killed sweep still resumes past committed cells); it may
        return extra ``(key, spec, width)`` jobs to enqueue (the batch
        fall-back path).  ``tick(queue_depth, busy, live)`` lets the
        runner refresh its telemetry gauges each loop.
        """
        if self._closed:
            raise comm.ClusterError("coordinator is closed")
        self._report = ExecuteReport()
        self._on_resolved = on_resolved
        self._queue: deque = deque()
        self._unresolved: set = set()
        self._cells: Dict[str, _Cell] = {}
        # Rebuild the lease indexes from the worker tables: leases can
        # survive between execute() calls (e.g. a started sibling whose
        # cell committed), and the indexes must agree with the tables.
        self._inflight = {}
        self._leased = set()
        self._held_count = 0
        for worker in self._workers.values():
            for lease in list(worker.leases.values()):
                self._lease_added(worker, lease)  # re-keying is a no-op
        for key, spec, width in jobs:
            self._add_cell(key, spec, width)
        parked_since: Optional[float] = None
        last_park_log = 0.0
        while self._unresolved:
            now = time.monotonic()
            activity = self._pump(now)
            self._check_liveness(now)
            self._check_expiry(now)
            self._check_stragglers(now)
            self._steal(now)
            self._grant(now)
            self._report.peak_workers = max(
                self._report.peak_workers, len(self._workers)
            )
            if tick is not None:
                busy = sum(
                    1
                    for w in self._workers.values()
                    for lease in w.leases.values()
                    if lease.started
                )
                tick(len(self._queue), busy, len(self._workers))
            if not self._workers:
                if parked_since is None:
                    parked_since = now
                if now - last_park_log > 2.0:
                    last_park_log = now
                    self._m_parked.inc()
                    self._log(
                        f"cluster: parked — zero live workers, "
                        f"{len(self._unresolved)} cell(s) outstanding; "
                        "waiting for workers to join",
                        kind="retry",
                    )
            elif parked_since is not None:
                self._log(
                    f"cluster: resumed after parking "
                    f"{now - parked_since:.1f}s"
                )
                parked_since = None
            if not activity:
                # Fast lane: while leases are outstanding, results can
                # land any millisecond — a 10ms nap would dominate tiny
                # cells' round-trip time.
                time.sleep(
                    0.001
                    if (self.dispatch_fast and self._held_count)
                    else 0.01
                )
        # Linger briefly for duplicate results from reclaimed-but-alive
        # leases so they are observed (and suppressed) rather than left
        # to hit a closed socket.
        drain_until = time.monotonic() + self.drain_timeout
        while self._zombies and time.monotonic() < drain_until:
            if not self._pump(time.monotonic()):
                time.sleep(0.01)
            self._check_liveness(time.monotonic())
        self._on_resolved = None
        return self._report

    def close(self) -> None:
        """Shut down: tell every worker to exit and release the listener."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                worker.conn.send({"type": protocol.MSG_SHUTDOWN})
            except comm.ClusterError:
                pass
            worker.conn.close()
        for conn in self._pending_conns:
            conn.close()
        for conn in self._lost_conns.values():
            conn.close()
        self._workers.clear()
        self._m_live.set(0)
        self.listener.close()


__all__ = [
    "BACKLOG_FACTOR",
    "ClusterCoordinator",
    "ExecuteReport",
    "LeaseOutcome",
    "PREFETCH",
    "dispatch_fast_default",
]
