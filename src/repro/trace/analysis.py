"""Analysis over recorded trace events.

Three families of questions the raw event stream answers:

* **Where did worker time go?** — :func:`worker_breakdown` integrates the
  ``WorkerStateEvent`` timeline into per-worker exec / poll / steal / idle
  seconds (the observable behind the paper's Fig. 6 work-time plots).
* **How fast did the PTT converge?** — :func:`ptt_series` extracts each
  table cell's value over time; :func:`ptt_convergence` reduces that to a
  time-to-within-``rel_tol``-of-final per place (optionally aggregated per
  cluster), which is the quantity separating DAS from RWS in Figs. 4-8.
* **How good were the decisions?** — :func:`decision_quality` compares
  each placement against the rate-oracle-fastest place recorded at
  decision time, and reports the exploration fraction.

All helpers accept a plain event sequence — a live
:meth:`~repro.trace.tracer.FullTracer.events` list or one re-read through
:func:`~repro.trace.export.read_jsonl`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import (
    DecisionEvent,
    PttUpdateEvent,
    StealEvent,
    TraceEvent,
    WorkerStateEvent,
)

PlaceKey = Tuple[int, int]  # (leader, width)


def worker_breakdown(
    events: Sequence[TraceEvent], until: Optional[float] = None
) -> Dict[int, Dict[str, float]]:
    """Per-worker seconds spent in each loop state.

    The last open state of each worker is closed at ``until`` (default:
    the latest event timestamp in the trace).  Returns
    ``{core: {"exec": s, "poll": s, "steal": s, "idle": s}}``.
    """
    transitions: Dict[int, List[WorkerStateEvent]] = defaultdict(list)
    horizon = 0.0
    for event in events:
        horizon = max(horizon, event.t)
        if isinstance(event, WorkerStateEvent):
            transitions[event.core].append(event)
    if until is None:
        until = horizon
    out: Dict[int, Dict[str, float]] = {}
    for core, seq in transitions.items():
        acc = {"exec": 0.0, "poll": 0.0, "steal": 0.0, "idle": 0.0}
        for event, end in zip(seq, [e.t for e in seq[1:]] + [until]):
            if end > event.t:
                acc[event.state] = acc.get(event.state, 0.0) + (end - event.t)
        out[core] = acc
    return dict(sorted(out.items()))


def steal_breakdown(events: Sequence[TraceEvent]) -> Dict[int, Dict[str, int]]:
    """Per-thief counts of steal hits and failed scans."""
    out: Dict[int, Dict[str, int]] = defaultdict(lambda: {"hit": 0, "miss": 0})
    for event in events:
        if isinstance(event, StealEvent):
            out[event.thief][event.outcome] += 1
    return dict(sorted(out.items()))


def ptt_series(
    events: Sequence[TraceEvent], type_name: Optional[str] = None
) -> Dict[Tuple[str, PlaceKey], List[Tuple[float, float]]]:
    """Each PTT cell's ``(t, value)`` trajectory.

    Keyed by ``(type_name, (leader, width))``; restricted to one task type
    when ``type_name`` is given.
    """
    out: Dict[Tuple[str, PlaceKey], List[Tuple[float, float]]] = defaultdict(list)
    for event in events:
        if not isinstance(event, PttUpdateEvent):
            continue
        if type_name is not None and event.type_name != type_name:
            continue
        out[(event.type_name, (event.leader, event.width))].append(
            (event.t, event.new)
        )
    return dict(out)


def _settle_time(
    series: Sequence[Tuple[float, float]], rel_tol: float
) -> Optional[float]:
    """Earliest time from which every later value stays within
    ``rel_tol`` of the final value; None for an empty series."""
    if not series:
        return None
    final = series[-1][1]
    if final <= 0:
        return series[-1][0]
    settled = series[0][0]
    inside = False
    for t, value in series:
        if abs(value - final) <= rel_tol * final:
            if not inside:
                settled = t
                inside = True
        else:
            inside = False
    return settled if inside else series[-1][0]


def ptt_convergence(
    events: Sequence[TraceEvent],
    rel_tol: float = 0.1,
    machine=None,
    type_name: Optional[str] = None,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Time for each PTT cell to settle within ``rel_tol`` of its final
    prediction, aggregated per task type.

    Returns ``{type_name: {place_label: settle_time, ..., "all": worst}}``
    where ``place_label`` is ``"C<leader>x<width>"``.  With a ``machine``,
    cluster-level aggregates (``"cluster:<name>"`` = worst settle time
    among that cluster's places) are added — the paper's "PTT converges on
    the fast cluster" claim made measurable.
    """
    out: Dict[str, Dict[str, Optional[float]]] = {}
    by_type: Dict[str, Dict[PlaceKey, Optional[float]]] = defaultdict(dict)
    for (tname, place), series in ptt_series(events, type_name).items():
        by_type[tname][place] = _settle_time(series, rel_tol)
    for tname, places in by_type.items():
        entry: Dict[str, Optional[float]] = {
            f"C{leader}x{width}": settle
            for (leader, width), settle in sorted(places.items())
        }
        settles = [s for s in places.values() if s is not None]
        entry["all"] = max(settles) if settles else None
        if machine is not None:
            per_cluster: Dict[str, List[float]] = defaultdict(list)
            for (leader, _width), settle in places.items():
                if settle is not None:
                    per_cluster[machine.cluster_of(leader).name].append(settle)
            for cluster, values in sorted(per_cluster.items()):
                entry[f"cluster:{cluster}"] = max(values)
        out[tname] = entry
    return out


def decision_quality(
    events: Sequence[TraceEvent], high_priority_only: bool = False
) -> Dict[str, float]:
    """Fraction of placements matching the rate-oracle-fastest place.

    ``oracle_match`` counts a decision as matched when the chosen place
    equals the place the speed model's instantaneous core rates ranked
    fastest at decision time (queueing excluded).  Also reports the
    exploration fraction (decisions that picked a PTT cell with no
    samples yet).  Decisions without an oracle (``oracle_leader == -1``)
    are excluded from the match rate but counted in ``decisions``.
    """
    decisions = matched = explored = with_oracle = 0
    for event in events:
        if not isinstance(event, DecisionEvent):
            continue
        if high_priority_only and event.priority != "high":
            continue
        decisions += 1
        if event.exploration:
            explored += 1
        if event.oracle_leader >= 0:
            with_oracle += 1
            if (event.leader, event.width) == (
                event.oracle_leader,
                event.oracle_width,
            ):
                matched += 1
    return {
        "decisions": float(decisions),
        "oracle_match": (matched / with_oracle) if with_oracle else 0.0,
        "exploration_fraction": (explored / decisions) if decisions else 0.0,
    }


def summarize(events: Sequence[TraceEvent], machine=None) -> str:
    """Human-readable digest: breakdowns, steals, decision quality."""
    lines: List[str] = []
    breakdown = worker_breakdown(events)
    if breakdown:
        lines.append("worker time breakdown [s]:")
        for core, acc in breakdown.items():
            lines.append(
                f"  core {core}: exec={acc['exec']:.4f} poll={acc['poll']:.4f} "
                f"steal={acc['steal']:.4f} idle={acc['idle']:.4f}"
            )
    steals = steal_breakdown(events)
    if steals:
        hits = sum(s["hit"] for s in steals.values())
        misses = sum(s["miss"] for s in steals.values())
        lines.append(f"steals: {hits} hits, {misses} failed scans")
    quality = decision_quality(events)
    if quality["decisions"]:
        lines.append(
            f"decisions: {int(quality['decisions'])} "
            f"(oracle match {quality['oracle_match']:.0%}, "
            f"exploration {quality['exploration_fraction']:.0%})"
        )
    convergence = ptt_convergence(events, machine=machine)
    for tname, entry in sorted(convergence.items()):
        settle = entry.get("all")
        detail = "never" if settle is None else f"{settle:.4f}s"
        clusters = ", ".join(
            f"{key.split(':', 1)[1]}={value:.4f}s"
            for key, value in sorted(entry.items())
            if key.startswith("cluster:") and value is not None
        )
        lines.append(
            f"ptt[{tname}] settled (±10%) by {detail}"
            + (f" ({clusters})" if clusters else "")
        )
    return "\n".join(lines) if lines else "(empty trace)"
