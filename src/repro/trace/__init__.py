"""repro.trace — structured scheduler tracing.

A zero-overhead-when-off event bus threaded through the runtime, the
policies, the Performance Trace Table and the speed model.  The default
:data:`NULL_TRACER` records nothing; pass a :class:`FullTracer` (or a
bounded :class:`RingBufferTracer`) to :class:`~repro.runtime.executor.
SimulatedRuntime` to capture worker timelines, queue depths, steal
attempts, placement decisions with their PTT snapshots, PTT cell updates
and interference/DVFS transitions.  See ``docs/observability.md``.

Quick use::

    from repro import quick_run
    from repro.trace import FullTracer, write_chrome_trace, summarize

    tracer = FullTracer()
    result = quick_run(scheduler="dam-c", tracer=tracer)
    write_chrome_trace("run.chrome.json", tracer.events())  # open in Perfetto
    print(summarize(tracer.events()))
"""

from repro.trace.analysis import (
    decision_quality,
    ptt_convergence,
    ptt_series,
    steal_breakdown,
    summarize,
    worker_breakdown,
)
from repro.trace.events import (
    EVENT_TYPES,
    DecisionEvent,
    PttUpdateEvent,
    QueueReclaimEvent,
    QueueSampleEvent,
    RunMarkEvent,
    SpeedEvent,
    StealEvent,
    TaskExecEvent,
    TaskRetryEvent,
    TraceEvent,
    WorkerLostEvent,
    WorkerRecoveredEvent,
    WorkerStateEvent,
    event_from_dict,
    event_to_dict,
)
from repro.trace.export import (
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.tracer import (
    NULL_TRACER,
    FullTracer,
    NullTracer,
    RingBufferTracer,
    Tracer,
    make_tracer,
)

__all__ = [
    # tracers
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "FullTracer",
    "RingBufferTracer",
    "make_tracer",
    # events
    "TraceEvent",
    "WorkerStateEvent",
    "QueueSampleEvent",
    "StealEvent",
    "DecisionEvent",
    "PttUpdateEvent",
    "SpeedEvent",
    "TaskExecEvent",
    "RunMarkEvent",
    "WorkerLostEvent",
    "WorkerRecoveredEvent",
    "QueueReclaimEvent",
    "TaskRetryEvent",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    # export
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    # analysis
    "worker_breakdown",
    "steal_breakdown",
    "ptt_series",
    "ptt_convergence",
    "decision_quality",
    "summarize",
]
