"""Validate exported Chrome trace JSON against the checked-in schema.

The container ships no ``jsonschema`` dependency, so this module
implements the small schema subset ``docs/trace_schema.json`` uses:
``type``, ``required``, ``properties``, ``items``, ``enum``,
``minItems`` and ``oneOf``.  CI's trace smoke job runs::

    python -m repro.trace.validate out/fig4.chrome.json

which exits non-zero (listing the first errors) when the export drifts
from the documented format.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, List

from repro.errors import ConfigurationError

#: The checked-in schema the CI smoke job validates against.
DEFAULT_SCHEMA = Path(__file__).resolve().parents[3] / "docs" / "trace_schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}


def _check(value: Any, schema: dict, path: str, errors: List[str]) -> None:
    if "oneOf" in schema:
        branches = schema["oneOf"]
        for branch in branches:
            trial: List[str] = []
            _check(value, branch, path, trial)
            if not trial:
                break
        else:
            errors.append(f"{path}: matches none of the {len(branches)} variants")
        return

    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES.get(expected)
        if py_type is None:
            raise ConfigurationError(f"unsupported schema type {expected!r}")
        if isinstance(value, bool) and expected in ("integer", "number"):
            errors.append(f"{path}: expected {expected}, got boolean")
            return
        if not isinstance(value, py_type):
            errors.append(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )
            return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
        return

    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required key {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                _check(value[name], sub, f"{path}.{name}", errors)

    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            errors.append(
                f"{path}: needs >= {schema['minItems']} items, has {len(value)}"
            )
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                _check(item, items, f"{path}[{i}]", errors)


def validate_payload(payload: Any, schema: dict) -> List[str]:
    """All schema violations in ``payload`` (empty list = valid)."""
    errors: List[str] = []
    _check(payload, schema, "$", errors)
    return errors


def validate_file(trace_path, schema_path=None) -> List[str]:
    """Validate a Chrome trace JSON file; returns the violation list."""
    with open(trace_path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    with open(schema_path or DEFAULT_SCHEMA, "r", encoding="utf-8") as fh:
        schema = json.load(fh)
    return validate_payload(payload, schema)


def main(argv=None) -> int:
    """CLI entry: validate ``trace.json [schema.json]``; exit status 0/1/2."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or len(argv) > 2:
        print(__doc__)
        return 2
    errors = validate_file(*argv)
    if errors:
        for error in errors[:25]:
            print(f"INVALID  {error}")
        if len(errors) > 25:
            print(f"... and {len(errors) - 25} more")
        return 1
    print(f"OK: {argv[0]} conforms to the trace schema")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
