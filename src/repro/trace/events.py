"""Typed scheduler-trace events.

Every event carries ``t``, the simulated time it was emitted at, plus the
fields of its kind.  Events are plain slotted dataclasses so that a traced
run stays cheap (no dict churn per event) and deterministic (emission never
consumes randomness or schedules simulation events — tracing is strictly
write-only observation).

The taxonomy follows the decision lifecycle of the paper's Figure 3:

``WorkerStateEvent``
    A worker's loop-state transition (``exec`` / ``poll`` / ``steal`` /
    ``idle``) — the raw material of busy/idle/steal timelines.
``QueueSampleEvent``
    WSQ/AQ depths of one core, sampled at a queue operation.
``StealEvent``
    One steal attempt: thief, victim, and whether a task moved.
``DecisionEvent``
    One Algorithm-1 placement decision: the chosen execution place, the
    per-place PTT predictions the policy saw at that instant, whether the
    choice was exploration (an unsampled place), and the oracle-fastest
    place under the speed model's true current rates.
``PttUpdateEvent``
    One Performance Trace Table cell folding in an observation.
``SpeedEvent``
    A dynamic-asymmetry transition in the speed model (DVFS frequency
    scale, co-runner CPU share, memory-bandwidth demand).
``TaskExecEvent``
    One committed task assembly: place, member cores, exec window.
``RunMarkEvent``
    Run lifecycle marks (start / finish) for framing exports.
``WorkerLostEvent`` / ``WorkerRecoveredEvent``
    Fault-recovery lifecycle of one core: lease expiry confirmed the
    worker dead; a transient crash healed and the worker respawned.
``QueueReclaimEvent``
    The dead worker's WSQ/AQ contents were salvaged for re-execution.
``TaskRetryEvent``
    One in-flight task re-enqueued after its worker died, with the retry
    attempt number and the backoff delay applied.

``event_to_dict`` / ``event_from_dict`` give a loss-free JSON round-trip
(the JSONL stream exporter and its reader are built on them).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Tuple, Type

from repro.errors import ConfigurationError

#: Worker loop states, in the order they appear in the worker loop.
#: ``dead`` is terminal: the core crashed and (unless revived by a
#: transient fault healing) never re-enters the loop.
WORKER_STATES: Tuple[str, ...] = ("exec", "poll", "steal", "idle", "dead")


@dataclass(frozen=True)
class TraceEvent:
    """Base of all trace events; ``t`` is the simulated emission time."""

    t: float


@dataclass(frozen=True)
class WorkerStateEvent(TraceEvent):
    core: int
    state: str  # one of WORKER_STATES


@dataclass(frozen=True)
class QueueSampleEvent(TraceEvent):
    core: int
    wsq: int
    aq: int
    op: str  # "push" | "pop" | "stolen" | "aq_push" | "aq_pop"


@dataclass(frozen=True)
class StealEvent(TraceEvent):
    thief: int
    victim: int  # -1 for a failed scan (no victim yielded a task)
    task_id: int  # -1 when nothing was stolen
    outcome: str  # "hit" | "miss"


@dataclass(frozen=True)
class DecisionEvent(TraceEvent):
    task_id: int
    type_name: str
    core: int  # the deciding worker
    leader: int  # chosen place
    width: int
    kind: str  # "dequeue" | "steal"
    priority: str  # "high" | "low"
    exploration: bool  # chosen place had no PTT sample yet
    #: ``((leader, width, predicted_seconds), ...)`` over the machine's
    #: places as the policy's PTT saw them at decision time (empty for
    #: policies without a PTT).
    predictions: Tuple[Tuple[int, int, float], ...]
    oracle_leader: int  # rate-oracle-fastest place (-1 when unavailable)
    oracle_width: int


@dataclass(frozen=True)
class PttUpdateEvent(TraceEvent):
    type_name: str
    leader: int
    width: int
    observed: float
    old: float
    new: float
    samples: int  # including this observation


@dataclass(frozen=True)
class SpeedEvent(TraceEvent):
    kind: str  # "freq_scale" | "cpu_share" | "demand" | "fault_scale"
    cores: Tuple[int, ...]  # empty for domain-wide demand events
    domain: str  # "" for core events
    value: float


@dataclass(frozen=True)
class TaskExecEvent(TraceEvent):
    task_id: int
    type_name: str
    leader: int
    width: int
    cores: Tuple[int, ...]
    exec_start: float
    exec_end: float
    priority: str
    stolen: bool


@dataclass(frozen=True)
class RunMarkEvent(TraceEvent):
    label: str  # "start" | "finish"
    detail: str = ""


@dataclass(frozen=True)
class WorkerLostEvent(TraceEvent):
    core: int
    crashed_at: float  # simulated time the crash was injected
    #: tasks salvaged from the dead worker: WSQ entries plus in-flight
    #: assembly members that will be re-enqueued.
    reclaimed: int


@dataclass(frozen=True)
class WorkerRecoveredEvent(TraceEvent):
    core: int
    down_for: float  # simulated seconds between crash and revival


@dataclass(frozen=True)
class QueueReclaimEvent(TraceEvent):
    core: int  # the dead core whose queues were drained
    wsq: int  # ready tasks recovered from the work-stealing queue
    aq: int  # in-flight assemblies aborted and re-enqueued


@dataclass(frozen=True)
class TaskRetryEvent(TraceEvent):
    task_id: int
    type_name: str
    core: int  # the core whose death triggered the retry
    attempt: int  # 1 = first re-execution
    backoff: float  # simulated delay before the re-enqueue lands


#: kind-string <-> class registry for serialization.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    "worker_state": WorkerStateEvent,
    "queue": QueueSampleEvent,
    "steal": StealEvent,
    "decision": DecisionEvent,
    "ptt_update": PttUpdateEvent,
    "speed": SpeedEvent,
    "task_exec": TaskExecEvent,
    "run_mark": RunMarkEvent,
    "worker_lost": WorkerLostEvent,
    "worker_recovered": WorkerRecoveredEvent,
    "queue_reclaim": QueueReclaimEvent,
    "task_retry": TaskRetryEvent,
}

_KIND_BY_TYPE: Dict[Type[TraceEvent], str] = {
    cls: kind for kind, cls in EVENT_TYPES.items()
}


def event_kind(event: TraceEvent) -> str:
    """The registry kind-string of ``event``."""
    try:
        return _KIND_BY_TYPE[type(event)]
    except KeyError:
        raise ConfigurationError(
            f"{type(event).__name__} is not a registered trace event"
        ) from None


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """Serialize one event to a JSON-able dict.

    The registry kind-string goes under the ``"event"`` key — not
    ``"kind"``, which is a payload field of :class:`DecisionEvent` and
    :class:`SpeedEvent`.
    """
    payload = asdict(event)
    payload["event"] = event_kind(event)
    return payload


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`."""
    kind = data.get("event")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown trace event kind {kind!r}")
    kwargs = {}
    for spec in fields(cls):
        if spec.name not in data:
            raise ConfigurationError(
                f"trace event {kind!r} is missing field {spec.name!r}"
            )
        value = data[spec.name]
        # JSON flattens tuples to lists; restore the declared shapes.
        if spec.name == "cores":
            value = tuple(int(c) for c in value)
        elif spec.name == "predictions":
            value = tuple((int(l), int(w), float(v)) for l, w, v in value)
        kwargs[spec.name] = value
    return cls(**kwargs)
