"""Trace exporters: Chrome trace-event JSON and a JSONL event stream.

The Chrome export follows the Trace Event Format (the ``traceEvents``
array consumed by ``chrome://tracing`` and Perfetto):

* one *thread* (``tid``) per core under one *process* (``pid`` 0,
  named after the run) — task assemblies appear as complete (``"X"``)
  slices on every member core's track;
* steal attempts and placement decisions as instant (``"i"``) events on
  the acting core's track;
* counter (``"C"``) tracks for per-core queue depths (``queue cN``),
  per-core DVFS frequency scale (``freq cN``), per-domain external
  bandwidth demand (``demand <dom>``), and per-task-type PTT predictions
  (``ptt <type>``, one series per execution place).

Simulated seconds are scaled to the format's microseconds.

The JSONL export writes one :func:`~repro.trace.events.event_to_dict`
payload per line — the loss-free archival format the analysis helpers and
the round-trip reader consume.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence

from repro.trace.events import (
    DecisionEvent,
    PttUpdateEvent,
    QueueReclaimEvent,
    QueueSampleEvent,
    SpeedEvent,
    StealEvent,
    TaskExecEvent,
    TaskRetryEvent,
    TraceEvent,
    WorkerLostEvent,
    WorkerRecoveredEvent,
    WorkerStateEvent,
    event_from_dict,
    event_to_dict,
)

#: Simulated seconds -> trace-format microseconds.
_US = 1e6


def _cores_in(events: Sequence[TraceEvent]) -> List[int]:
    cores = set()
    for event in events:
        if isinstance(event, (WorkerStateEvent, QueueSampleEvent)):
            cores.add(event.core)
        elif isinstance(event, TaskExecEvent):
            cores.update(event.cores)
        elif isinstance(event, StealEvent):
            cores.add(event.thief)
    return sorted(cores)


def to_chrome_trace(
    events: Sequence[TraceEvent], label: str = "repro"
) -> Dict[str, Any]:
    """Convert a recorded event list into a Chrome trace-event payload."""
    out: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": label},
        }
    ]
    for core in _cores_in(events):
        out.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": core,
                "name": "thread_name",
                "args": {"name": f"core {core}"},
            }
        )

    for event in events:
        ts = event.t * _US
        if isinstance(event, TaskExecEvent):
            dur = (event.exec_end - event.exec_start) * _US
            for core in event.cores:
                out.append(
                    {
                        "ph": "X",
                        "pid": 0,
                        "tid": core,
                        "name": event.type_name,
                        "cat": "task",
                        "ts": event.exec_start * _US,
                        "dur": dur,
                        "args": {
                            "task_id": event.task_id,
                            "place": f"C{event.leader}x{event.width}",
                            "priority": event.priority,
                            "stolen": event.stolen,
                            "leader": core == event.leader,
                        },
                    }
                )
        elif isinstance(event, QueueSampleEvent):
            out.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "tid": event.core,
                    "name": f"queue c{event.core}",
                    "ts": ts,
                    "args": {"wsq": event.wsq, "aq": event.aq},
                }
            )
        elif isinstance(event, PttUpdateEvent):
            out.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "name": f"ptt {event.type_name}",
                    "ts": ts,
                    "args": {f"C{event.leader}x{event.width}": event.new},
                }
            )
        elif isinstance(event, SpeedEvent):
            if event.kind == "demand":
                out.append(
                    {
                        "ph": "C",
                        "pid": 0,
                        "tid": 0,
                        "name": f"demand {event.domain}",
                        "ts": ts,
                        "args": {"demand": event.value},
                    }
                )
            else:
                for core in event.cores:
                    out.append(
                        {
                            "ph": "C",
                            "pid": 0,
                            "tid": core,
                            "name": f"{event.kind} c{core}",
                            "ts": ts,
                            "args": {event.kind: event.value},
                        }
                    )
        elif isinstance(event, StealEvent):
            out.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": event.thief,
                    "name": f"steal {event.outcome}",
                    "cat": "steal",
                    "ts": ts,
                    "s": "t",
                    "args": {"victim": event.victim, "task_id": event.task_id},
                }
            )
        elif isinstance(event, DecisionEvent):
            out.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": event.core,
                    "name": f"decide {event.type_name}",
                    "cat": "decision",
                    "ts": ts,
                    "s": "t",
                    "args": {
                        "task_id": event.task_id,
                        "place": f"C{event.leader}x{event.width}",
                        "kind": event.kind,
                        "priority": event.priority,
                        "exploration": event.exploration,
                        "oracle": f"C{event.oracle_leader}x{event.oracle_width}",
                    },
                }
            )
        elif isinstance(event, WorkerLostEvent):
            out.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": event.core,
                    "name": f"worker lost c{event.core}",
                    "cat": "fault",
                    "ts": ts,
                    "s": "t",
                    "args": {
                        "crashed_at": event.crashed_at,
                        "reclaimed": event.reclaimed,
                    },
                }
            )
        elif isinstance(event, WorkerRecoveredEvent):
            out.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": event.core,
                    "name": f"worker recovered c{event.core}",
                    "cat": "fault",
                    "ts": ts,
                    "s": "t",
                    "args": {"down_for": event.down_for},
                }
            )
        elif isinstance(event, QueueReclaimEvent):
            out.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": event.core,
                    "name": f"queues reclaimed c{event.core}",
                    "cat": "fault",
                    "ts": ts,
                    "s": "t",
                    "args": {"wsq": event.wsq, "aq": event.aq},
                }
            )
        elif isinstance(event, TaskRetryEvent):
            out.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": event.core,
                    "name": f"retry {event.type_name}",
                    "cat": "fault",
                    "ts": ts,
                    "s": "t",
                    "args": {
                        "task_id": event.task_id,
                        "attempt": event.attempt,
                        "backoff": event.backoff,
                    },
                }
            )
        # WorkerStateEvent / RunMarkEvent timelines are derivable from the
        # slices and are kept out of the Chrome payload to bound its size;
        # the JSONL stream retains them for analysis.

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path, events: Sequence[TraceEvent], label: str = "repro"
) -> Path:
    """Write the Chrome trace-event JSON for ``events`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events, label=label), fh)
    return path


def write_jsonl(path, events: Iterable[TraceEvent]) -> Path:
    """Write one JSON event dict per line (loss-free archival stream)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")
    return path


def read_jsonl(path) -> List[TraceEvent]:
    """Inverse of :func:`write_jsonl`; skips blank lines."""
    out: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(event_from_dict(json.loads(line)))
    return out
