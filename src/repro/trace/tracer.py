"""Tracer implementations — the event bus's receiving end.

A *tracer* is any object with two attributes:

``enabled``
    Bool; every instrumented hot path guards its event construction with
    this flag, so a disabled tracer costs one attribute read per site
    (the zero-overhead-when-off contract, gated by
    ``benchmarks/bench_micro.py``).
``emit(event)``
    Receives a :class:`~repro.trace.events.TraceEvent`.

plus a ``clock`` callable (simulated-time source) that the runtime binds
at construction so components without an environment handle — the PTT,
a policy — can still stamp their events.

Three implementations:

* :class:`NullTracer` — the default; ``enabled`` is False and ``emit``
  discards.  A single module-level :data:`NULL_TRACER` instance is shared
  so identity checks (``tracer is NULL_TRACER``) are cheap.
* :class:`FullTracer` — appends every event to an in-memory list.
* :class:`RingBufferTracer` — keeps only the newest ``capacity`` events
  (bounded memory for very long runs; oldest events fall off).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List

from repro.errors import ConfigurationError
from repro.trace.events import TraceEvent


def _zero_clock() -> float:
    return 0.0


class Tracer:
    """Base tracer: disabled, discards everything."""

    __slots__ = ("clock",)

    enabled: bool = False

    def __init__(self, clock: Callable[[], float] = _zero_clock) -> None:
        #: Simulated-time source; rebound by the runtime that carries this
        #: tracer (``tracer.clock = lambda: env.now``).
        self.clock = clock

    def now(self) -> float:
        """Current simulated time, for emitters without an environment."""
        return self.clock()

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - no-op
        pass

    def events(self) -> List[TraceEvent]:
        """The recorded events (empty for non-recording tracers)."""
        return []

    def __len__(self) -> int:
        return len(self.events())


class NullTracer(Tracer):
    """The default tracer: records nothing, costs (almost) nothing."""

    __slots__ = ()


#: Shared disabled tracer; components default to this instance.
NULL_TRACER = NullTracer()


class FullTracer(Tracer):
    """Records every emitted event in order."""

    __slots__ = ("_events",)

    enabled = True

    def __init__(self, clock: Callable[[], float] = _zero_clock) -> None:
        super().__init__(clock)
        self._events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Bulk-append (used when merging streams in tests/tools)."""
        self._events.extend(events)


class RingBufferTracer(Tracer):
    """Keeps the newest ``capacity`` events; older ones are dropped."""

    __slots__ = ("_events", "capacity")

    enabled = True

    def __init__(
        self, capacity: int, clock: Callable[[], float] = _zero_clock
    ) -> None:
        super().__init__(clock)
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._events: deque = deque(maxlen=self.capacity)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def events(self) -> List[TraceEvent]:
        return list(self._events)


def make_tracer(buffer: str = "full", limit: int = 0) -> Tracer:
    """Build a recording tracer from declarative config.

    ``buffer`` is ``"full"`` or ``"ring"``; ``limit`` is the ring
    capacity (required > 0 for ``"ring"``).  Used by the sweep registry to
    reconstruct tracers from :class:`~repro.sweep.spec.RunSpec` data.
    """
    if buffer == "full":
        return FullTracer()
    if buffer == "ring":
        return RingBufferTracer(limit)
    raise ConfigurationError(f"unknown tracer buffer {buffer!r}")
