"""Per-task trace records."""

from __future__ import annotations

from typing import Any, Dict, NamedTuple

from repro.graph.task import Priority
from repro.machine.topology import ExecutionPlace


class TaskRecord(NamedTuple):
    """Everything the metrics layer needs about one executed task.

    Times are simulated seconds.  ``observed`` is the elapsed execution
    time as seen by the leader (including any measurement noise), i.e. the
    value that trained the PTT; ``exec_end - exec_start`` is the true
    duration.

    A NamedTuple (not a frozen dataclass): one record is built per
    executed task, and the frozen-dataclass ``__init__`` costs ~3x more
    per construction.
    """

    task_id: int
    type_name: str
    priority: Priority
    place: ExecutionPlace
    ready_time: float
    dequeue_time: float
    exec_start: float
    exec_end: float
    observed: float
    stolen: bool
    metadata: Dict[str, Any]

    @property
    def duration(self) -> float:
        """True execution time."""
        return self.exec_end - self.exec_start

    @property
    def wait_time(self) -> float:
        """Time from release to execution start (queueing + assembly)."""
        return self.exec_start - self.ready_time

    @property
    def is_high_priority(self) -> bool:
        return self.priority is Priority.HIGH
