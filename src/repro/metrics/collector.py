"""Trace collection during a simulated run."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.metrics.records import TaskRecord


class TraceCollector:
    """Accumulates task records and per-core busy time."""

    def __init__(self, num_cores: int) -> None:
        self.records: List[TaskRecord] = []
        #: Seconds each core spent occupied by task assemblies (paper
        #: Fig. 6): from the instant the core joined the assembly's
        #: rendezvous until the task committed.  For the leader (and every
        #: on-time member) this equals the kernel work time; a member that
        #: arrived early is additionally charged its synchronization wait,
        #: during which the core cannot run anything else.
        self.core_busy: Dict[int, float] = {c: 0.0 for c in range(num_cores)}
        self.steals = 0
        self.failed_steal_scans = 0

    def record_task(
        self,
        record: TaskRecord,
        member_cores,
        joined_at: Optional[Mapping[int, float]] = None,
    ) -> None:
        """Add a task record and charge each member its occupancy window.

        ``joined_at`` maps member cores to their rendezvous arrival time;
        each core is charged ``exec_end - joined_at[core]`` — its actual
        occupancy — rather than a uniform ``record.duration``, which
        undercharges members that joined before the last straggler.
        Without ``joined_at`` (detached/synthetic records) every member is
        charged the execution window.
        """
        self.records.append(record)
        if joined_at is None:
            for core in member_cores:
                self.core_busy[core] += record.duration
        else:
            end = record.exec_end
            for core in member_cores:
                self.core_busy[core] += end - joined_at.get(
                    core, record.exec_start
                )

    def record_steal(self) -> None:
        self.steals += 1

    def record_failed_scan(self) -> None:
        self.failed_steal_scans += 1

    def record_failed_scans(self, count: int) -> None:
        """Bulk form of :meth:`record_failed_scan` for fast-forwarded
        steal-backoff spins (see the executor's spin collapse)."""
        self.failed_steal_scans += count

    def __len__(self) -> int:
        return len(self.records)
