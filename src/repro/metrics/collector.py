"""Trace collection during a simulated run."""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.records import TaskRecord


class TraceCollector:
    """Accumulates task records and per-core busy time."""

    def __init__(self, num_cores: int) -> None:
        self.records: List[TaskRecord] = []
        #: Seconds each core spent inside task assemblies (kernel work
        #: time, excluding runtime activity and idleness — paper Fig. 6).
        self.core_busy: Dict[int, float] = {c: 0.0 for c in range(num_cores)}
        self.steals = 0
        self.failed_steal_scans = 0

    def record_task(self, record: TaskRecord, member_cores) -> None:
        """Add a task record and charge busy time to all member cores."""
        self.records.append(record)
        for core in member_cores:
            self.core_busy[core] += record.duration

    def record_steal(self) -> None:
        self.steals += 1

    def record_failed_scan(self) -> None:
        self.failed_steal_scans += 1

    def __len__(self) -> int:
        return len(self.records)
