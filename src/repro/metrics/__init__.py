"""Execution traces and the paper's derived metrics."""

from repro.metrics.records import TaskRecord
from repro.metrics.collector import TraceCollector
from repro.metrics.export import (
    dump_run,
    load_records,
    record_from_dict,
    record_to_dict,
    records_from_dicts,
    run_result_to_dict,
)
from repro.metrics.analysis import (
    core_work_time,
    iteration_series,
    place_distribution,
    place_distribution_counts,
    priority_core_shares,
    throughput,
)

__all__ = [
    "TaskRecord",
    "TraceCollector",
    "record_to_dict",
    "record_from_dict",
    "records_from_dicts",
    "run_result_to_dict",
    "dump_run",
    "load_records",
    "throughput",
    "core_work_time",
    "place_distribution",
    "place_distribution_counts",
    "priority_core_shares",
    "iteration_series",
]
