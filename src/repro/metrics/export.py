"""Export run results and task traces to plain JSON-able structures.

For post-processing outside the library (pandas, plotting, archiving):

    result = quick_run(...)
    payload = run_result_to_dict(result)
    json.dump(payload, open("run.json", "w"))

The inverse, :func:`records_from_dicts`, rebuilds :class:`TaskRecord`
objects so the analysis helpers work on archived traces too.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.graph.task import Priority
from repro.machine.topology import ExecutionPlace
from repro.metrics.records import TaskRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.executor import RunResult


def record_to_dict(record: TaskRecord) -> Dict[str, Any]:
    """One task record as a flat JSON-able dictionary."""
    return {
        "task_id": record.task_id,
        "type": record.type_name,
        "priority": record.priority.name.lower(),
        "leader": record.place.leader,
        "width": record.place.width,
        "ready_time": record.ready_time,
        "dequeue_time": record.dequeue_time,
        "exec_start": record.exec_start,
        "exec_end": record.exec_end,
        "observed": record.observed,
        "stolen": record.stolen,
        "metadata": {
            k: v for k, v in record.metadata.items()
            if isinstance(v, (str, int, float, bool, type(None)))
        },
    }


def record_from_dict(item: Dict[str, Any]) -> TaskRecord:
    """Rebuild a :class:`TaskRecord` from :func:`record_to_dict` output."""
    try:
        return TaskRecord(
            task_id=int(item["task_id"]),
            type_name=str(item["type"]),
            priority=Priority[item["priority"].upper()],
            place=ExecutionPlace(int(item["leader"]), int(item["width"])),
            ready_time=float(item["ready_time"]),
            dequeue_time=float(item["dequeue_time"]),
            exec_start=float(item["exec_start"]),
            exec_end=float(item["exec_end"]),
            observed=float(item["observed"]),
            stolen=bool(item["stolen"]),
            metadata=dict(item.get("metadata", {})),
        )
    except KeyError as missing:
        raise ConfigurationError(f"record dict missing field {missing}") from None


def records_from_dicts(items: Iterable[Dict[str, Any]]) -> List[TaskRecord]:
    """Rebuild a list of task records from serialized dictionaries."""
    return [record_from_dict(item) for item in items]


def run_result_to_dict(result: "RunResult") -> Dict[str, Any]:
    """A whole run — summary, per-core busy time, and the task trace."""
    return {
        "scheduler": result.scheduler_name,
        "machine": result.machine_name,
        "makespan": result.makespan,
        "tasks_completed": result.tasks_completed,
        "throughput": result.throughput,
        "steals": result.collector.steals,
        "core_busy": {str(c): t for c, t in result.collector.core_busy.items()},
        "records": [record_to_dict(r) for r in result.collector.records],
    }


def dump_run(result: "RunResult", path: str) -> None:
    """Write :func:`run_result_to_dict` as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(run_result_to_dict(result), handle)


def load_records(path: str) -> List[TaskRecord]:
    """Load the task trace back from a :func:`dump_run` file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return records_from_dicts(payload["records"])
