"""Derived metrics matching the paper's evaluation artifacts."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.machine.topology import ExecutionPlace
from repro.metrics.records import TaskRecord


def throughput(records: Iterable[TaskRecord], makespan: float) -> float:
    """Tasks per second: total completed tasks / total execution time."""
    records = list(records)
    if makespan <= 0:
        raise ConfigurationError(f"makespan must be positive, got {makespan}")
    return len(records) / makespan


def core_work_time(core_busy: Dict[int, float]) -> Dict[int, float]:
    """Per-core cumulative kernel work time (paper Fig. 6); a copy."""
    return dict(core_busy)


def place_distribution_counts(
    records: Iterable[TaskRecord], high_priority_only: bool = True
) -> Dict[ExecutionPlace, int]:
    """Task count per execution place (paper Fig. 5 / Fig. 9 b-c)."""
    counts: Dict[ExecutionPlace, int] = defaultdict(int)
    for record in records:
        if high_priority_only and not record.is_high_priority:
            continue
        counts[record.place] += 1
    return dict(counts)


def place_distribution(
    records: Iterable[TaskRecord], high_priority_only: bool = True
) -> Dict[ExecutionPlace, float]:
    """Fractional distribution over places, like the Fig. 5 pie charts."""
    counts = place_distribution_counts(records, high_priority_only)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {place: count / total for place, count in sorted(counts.items())}


def priority_core_shares(records: Iterable[TaskRecord]) -> Dict[int, float]:
    """Fraction of high-priority tasks whose place *includes* each core."""
    member_counts: Dict[int, int] = defaultdict(int)
    total = 0
    for record in records:
        if not record.is_high_priority:
            continue
        total += 1
        for core in range(record.place.leader, record.place.leader + record.place.width):
            member_counts[core] += 1
    if total == 0:
        return {}
    return {core: count / total for core, count in sorted(member_counts.items())}


def iteration_series(
    records: Iterable[TaskRecord],
    iteration_key: str = "iteration",
) -> List[Tuple[int, float]]:
    """Per-iteration wall time (paper Fig. 9a).

    Groups records by the ``iteration_key`` metadata value and reports
    ``max(exec_end) - min(ready_time)`` per iteration, i.e. the span from
    the iteration's release to its last commit.
    """
    spans: Dict[int, Tuple[float, float]] = {}
    for record in records:
        iteration = record.metadata.get(iteration_key)
        if iteration is None:
            continue
        start, end = spans.get(iteration, (float("inf"), float("-inf")))
        spans[iteration] = (
            min(start, record.ready_time),
            max(end, record.exec_end),
        )
    return [(it, end - start) for it, (start, end) in sorted(spans.items())]


def place_series_by_iteration(
    records: Iterable[TaskRecord],
    iteration_key: str = "iteration",
    high_priority_only: bool = False,
) -> Dict[ExecutionPlace, Dict[int, int]]:
    """Task counts per place per iteration (paper Fig. 9 b-c curves)."""
    series: Dict[ExecutionPlace, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for record in records:
        if high_priority_only and not record.is_high_priority:
            continue
        iteration = record.metadata.get(iteration_key)
        if iteration is None:
            continue
        series[record.place][iteration] += 1
    return {place: dict(by_iter) for place, by_iter in series.items()}


def average_wait_time(records: Iterable[TaskRecord]) -> Optional[float]:
    """Mean release-to-execution latency; None when no records."""
    records = list(records)
    if not records:
        return None
    return sum(r.wait_time for r in records) / len(records)


def machine_utilization(core_busy: Dict[int, float], makespan: float) -> float:
    """Fraction of total core-seconds spent inside kernels."""
    if makespan <= 0:
        raise ConfigurationError(f"makespan must be positive, got {makespan}")
    if not core_busy:
        raise ConfigurationError("need at least one core")
    return sum(core_busy.values()) / (makespan * len(core_busy))


def width_histogram(records: Iterable[TaskRecord]) -> Dict[int, int]:
    """Task counts by resource width (how much molding happened)."""
    out: Dict[int, int] = defaultdict(int)
    for record in records:
        out[record.place.width] += 1
    return dict(out)


def stolen_fraction(records: Iterable[TaskRecord]) -> Optional[float]:
    """Fraction of tasks that were executed after a steal."""
    records = list(records)
    if not records:
        return None
    return sum(1 for r in records if r.stolen) / len(records)
