"""repro — Scheduling Task-parallel Applications in Dynamically Asymmetric Environments.

A faithful, fully self-contained reproduction of Chen et al. (ICPP
Workshops 2020): the Dynamic Asymmetry Scheduler family (RWS, RWSM-C, FA,
FAM-C, DA, DAM-C, DAM-P) driven by an online Performance Trace Table, on a
discrete-event simulation of the XiTAO moldable-task runtime, with
co-runner and DVFS interference scenarios, shared-memory and distributed
(simulated MPI) workloads, and one experiment harness per paper figure.

Quick start::

    from repro import quick_run

    result = quick_run(scheduler="dam-c", kernel="matmul", parallelism=4)
    print(result.throughput, "tasks/s")

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro._version import __version__
from repro.core import (
    PerformanceTraceTable,
    PttStore,
    SCHEDULER_NAMES,
    make_scheduler,
    scheduler_feature_rows,
)
from repro.graph import Priority, Task, TaskGraph, layered_synthetic_dag
from repro.interference import (
    CompositeScenario,
    CorunnerInterference,
    DvfsInterference,
    NullScenario,
)
from repro.kernels import CopyKernel, FixedWorkKernel, MatMulKernel, StencilKernel
from repro.machine import (
    ExecutionPlace,
    Machine,
    SpeedModel,
    haswell16,
    haswell_node,
    jetson_tx2,
    symmetric_machine,
)
from repro.runtime import RunResult, RuntimeConfig, SimulatedRuntime
from repro.sim import Environment
from repro.session import run_graph, quick_run
from repro.trace import FullTracer, NullTracer, RingBufferTracer, Tracer

__all__ = [
    "__version__",
    # core contribution
    "PerformanceTraceTable",
    "PttStore",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "scheduler_feature_rows",
    # graph
    "Priority",
    "Task",
    "TaskGraph",
    "layered_synthetic_dag",
    # kernels
    "MatMulKernel",
    "CopyKernel",
    "StencilKernel",
    "FixedWorkKernel",
    # machine
    "Machine",
    "ExecutionPlace",
    "SpeedModel",
    "jetson_tx2",
    "haswell16",
    "haswell_node",
    "symmetric_machine",
    # interference
    "NullScenario",
    "CorunnerInterference",
    "DvfsInterference",
    "CompositeScenario",
    # runtime
    "SimulatedRuntime",
    "RuntimeConfig",
    "RunResult",
    "Environment",
    # sessions
    "run_graph",
    "quick_run",
    # tracing
    "Tracer",
    "NullTracer",
    "FullTracer",
    "RingBufferTracer",
]
