"""A kernel with directly specified cost — used by applications and tests.

Application DAGs (K-means partitions, heat blocks, MPI exchanges) know their
own work; :class:`FixedWorkKernel` lets them state it without inventing an
analytic model.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.base import KernelModel
from repro.machine.topology import ExecutionPlace, Machine


class FixedWorkKernel(KernelModel):
    """A kernel described by explicit (work, parallel fraction, intensity).

    Parameters
    ----------
    name:
        Task-type name (the PTT key).
    work:
        Sequential work units.
    parallel_fraction:
        Amdahl fraction in [0, 1]; 0 makes the task effectively rigid
        (molding never helps).
    memory_intensity:
        Constant bandwidth-bound fraction in [0, 1].
    working_set:
        Optional working-set bytes for cache-fit modelling.
    molding_overhead:
        Per-extra-core overhead fraction (see :class:`KernelModel`).
    l2_penalty / dram_penalty:
        Work multipliers when the per-core working-set slice spills to the
        L2 share / to DRAM (cache-sensitive kernels have steep cliffs).
    """

    def __init__(
        self,
        name: str,
        work: float,
        parallel_fraction: float = 0.9,
        memory_intensity: float = 0.1,
        working_set: float = 0.0,
        molding_overhead: float = 0.03,
        l2_penalty: float = 1.35,
        dram_penalty: float = 1.9,
    ) -> None:
        if work < 0:
            raise ConfigurationError(f"work must be >= 0, got {work}")
        if not (0.0 <= parallel_fraction <= 1.0):
            raise ConfigurationError(
                f"parallel_fraction must be in [0, 1], got {parallel_fraction}"
            )
        if not (0.0 <= memory_intensity <= 1.0):
            raise ConfigurationError(
                f"memory_intensity must be in [0, 1], got {memory_intensity}"
            )
        if working_set < 0:
            raise ConfigurationError(f"working_set must be >= 0, got {working_set}")
        self.name = str(name)
        self._work = float(work)
        self._fraction = float(parallel_fraction)
        self._intensity = float(memory_intensity)
        self._working_set = float(working_set)
        self.molding_overhead = float(molding_overhead)
        if l2_penalty < 1.0 or dram_penalty < l2_penalty:
            raise ConfigurationError(
                "need 1 <= l2_penalty <= dram_penalty, got "
                f"{l2_penalty}/{dram_penalty}"
            )
        self.l2_penalty = float(l2_penalty)
        self.dram_penalty = float(dram_penalty)

    def seq_work(self) -> float:
        return self._work

    def parallel_fraction(self) -> float:
        return self._fraction

    def working_set_bytes(self) -> float:
        return self._working_set

    def memory_intensity(self, machine: Machine, place: ExecutionPlace) -> float:
        return self._intensity
