"""Real NumPy implementations of the three kernels.

These execute the genuine computations (GEMM, streaming copy, 5-point
stencil) on the host.  They back the runnable examples and the cost-model
calibration in :mod:`repro.kernels.calibrate`; the simulation itself uses
the analytic models.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng


def run_matmul(tile: int, rng: SeedLike = 0) -> np.ndarray:
    """Multiply two ``tile x tile`` random matrices; returns the product."""
    if tile <= 0:
        raise ConfigurationError(f"tile must be positive, got {tile}")
    gen = make_rng(rng)
    a = gen.random((tile, tile))
    b = gen.random((tile, tile))
    return a @ b


def run_copy(tile: int, rng: SeedLike = 0) -> np.ndarray:
    """Stream-copy a ``tile x tile`` matrix; returns the copy."""
    if tile <= 0:
        raise ConfigurationError(f"tile must be positive, got {tile}")
    gen = make_rng(rng)
    src = gen.random((tile, tile))
    dst = np.empty_like(src)
    np.copyto(dst, src)
    return dst


def run_stencil(tile: int, sweeps: int = 4, rng: SeedLike = 0) -> np.ndarray:
    """Apply ``sweeps`` 5-point averaging updates to a random grid."""
    if tile <= 2:
        raise ConfigurationError(f"tile must be > 2, got {tile}")
    if sweeps <= 0:
        raise ConfigurationError(f"sweeps must be positive, got {sweeps}")
    gen = make_rng(rng)
    grid = gen.random((tile, tile))
    out = grid.copy()
    for _ in range(sweeps):
        out[1:-1, 1:-1] = 0.2 * (
            grid[1:-1, 1:-1]
            + grid[:-2, 1:-1]
            + grid[2:, 1:-1]
            + grid[1:-1, :-2]
            + grid[1:-1, 2:]
        )
        grid, out = out, grid
    return grid


#: Registry used by calibration and examples.
REAL_KERNELS: Dict[str, Callable[..., np.ndarray]] = {
    "matmul": run_matmul,
    "copy": run_copy,
    "stencil": run_stencil,
}


def time_kernel(kind: str, tile: int, repeats: int = 5, **kwargs) -> Tuple[float, float]:
    """Median and minimum wall time of ``repeats`` runs of a real kernel.

    Returns ``(median_seconds, min_seconds)``.  One warm-up run is discarded
    so allocation and BLAS thread spin-up do not pollute the measurement.
    """
    if kind not in REAL_KERNELS:
        raise ConfigurationError(
            f"unknown kernel {kind!r}; choose from {sorted(REAL_KERNELS)}"
        )
    if repeats <= 0:
        raise ConfigurationError(f"repeats must be positive, got {repeats}")
    fn = REAL_KERNELS[kind]
    fn(tile, **kwargs)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(tile, **kwargs)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2], samples[0]
