"""Kernel models: the three synthetic kernel classes of the paper (§4.2.2).

Each kernel provides an analytic *cost model* used by the simulated runtime:
given an execution place, it yields the effective work units, the memory
intensity (how bandwidth-bound the kernel is), and the bandwidth demand.
The models encode the mechanisms the paper's evaluation leans on:

* ``MatMulKernel`` — compute-intensive; scales with core speed; tile-size
  dependent L1/L2 cache fit (drives the §5.3 sensitivity study).
* ``CopyKernel`` — memory-intensive streaming; throughput limited by the
  memory domain's bandwidth, so it suffers from memory interference and
  gains little from wide molding once bandwidth saturates.
* ``StencilKernel`` — cache-intensive; in between the two.

:mod:`repro.kernels.real` contains genuine NumPy implementations of the same
kernels, used by the examples and by :mod:`repro.kernels.calibrate` to fit
the analytic constants on the host machine.
"""

from repro.kernels.base import KernelModel, WorkProfile
from repro.kernels.matmul import MatMulKernel
from repro.kernels.copy import CopyKernel
from repro.kernels.stencil import StencilKernel
from repro.kernels.fixed import FixedWorkKernel

__all__ = [
    "KernelModel",
    "WorkProfile",
    "MatMulKernel",
    "CopyKernel",
    "StencilKernel",
    "FixedWorkKernel",
]
