"""Stencil kernel: the cache-intensive class (§4.2.2)."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.base import KernelModel
from repro.machine.topology import ExecutionPlace, Machine


class StencilKernel(KernelModel):
    """Repeated 5-point updates over a ``tile x tile`` grid.

    Neighbour reuse makes the kernel cache-intensive: per-core slices that
    fit the L2 run well, spills are both slower and noticeably
    bandwidth-bound.

    Parameters
    ----------
    tile:
        Grid edge length (paper default 1024).
    sweeps:
        Number of update sweeps per task.
    point_cost:
        Work units per grid-point update.
    """

    name = "stencil"

    def __init__(
        self, tile: int = 1024, sweeps: int = 4, point_cost: float = 1.1e-9
    ) -> None:
        if tile <= 0:
            raise ConfigurationError(f"tile must be positive, got {tile}")
        if sweeps <= 0:
            raise ConfigurationError(f"sweeps must be positive, got {sweeps}")
        if point_cost <= 0:
            raise ConfigurationError(f"point_cost must be positive, got {point_cost}")
        self.tile = int(tile)
        self.sweeps = int(sweeps)
        self.point_cost = float(point_cost)
        self.name = f"stencil{self.tile}"

    def seq_work(self) -> float:
        return self.point_cost * self.sweeps * float(self.tile) ** 2

    def parallel_fraction(self) -> float:
        return 0.92

    def working_set_bytes(self) -> float:
        # Two grids (read + write) of doubles.
        return 2.0 * self.tile * self.tile * 8.0

    def memory_intensity(self, machine: Machine, place: ExecutionPlace) -> float:
        penalty = self.cache_penalty(machine, place)
        if penalty >= self.dram_penalty:
            return 0.6
        if penalty > 1.0:
            return 0.35
        return 0.2
