"""Copy kernel: the memory-intensive streaming class (§4.2.2)."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.base import KernelModel
from repro.machine.topology import ExecutionPlace, Machine


class CopyKernel(KernelModel):
    """Stream a ``tile x tile`` double matrix from and back to memory.

    Streaming traffic never fits a cache, so there is no cache penalty;
    instead nearly all the work is bandwidth-bound and registers a large
    demand on the memory domain.  Wide molding helps only until the domain
    saturates — which is exactly why memory interference (a co-running copy
    chain) hits this kernel hardest in the paper's Fig. 4(b).

    Parameters
    ----------
    tile:
        Matrix edge length (paper default 1024).
    byte_cost:
        Work units per byte moved (default gives a ~2.8 ms task at
        tile 1024 on a speed-1 core).
    """

    name = "copy"

    def __init__(self, tile: int = 1024, byte_cost: float = 1.7e-10) -> None:
        if tile <= 0:
            raise ConfigurationError(f"tile must be positive, got {tile}")
        if byte_cost <= 0:
            raise ConfigurationError(f"byte_cost must be positive, got {byte_cost}")
        self.tile = int(tile)
        self.byte_cost = float(byte_cost)
        self.name = f"copy{self.tile}"

    def bytes_moved(self) -> float:
        """Read + write traffic of one task."""
        return 2.0 * self.tile * self.tile * 8.0

    def seq_work(self) -> float:
        return self.byte_cost * self.bytes_moved()

    def parallel_fraction(self) -> float:
        return 0.90

    def working_set_bytes(self) -> float:
        # Streaming: no reuse, cache fit is irrelevant.
        return 0.0

    def memory_intensity(self, machine: Machine, place: ExecutionPlace) -> float:
        return 0.9
