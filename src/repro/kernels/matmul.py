"""Matrix-multiplication kernel: the compute-intensive class (§4.2.2)."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels.base import KernelModel
from repro.machine.topology import ExecutionPlace, Machine


class MatMulKernel(KernelModel):
    """GEMM on a square tile of ``tile x tile`` doubles.

    Work scales with ``tile**3``.  The working set is the three tiles
    (A, B, C); whether it fits the L1 of the executing cores is what the
    paper's §5.3 tile-size sensitivity probes (32 KiB A57 L1 vs 64 KiB
    Denver L1; a tile of 32 fits both, 64/80 only Denver, 96 spills to L2).

    Parameters
    ----------
    tile:
        Tile edge length N (paper default 64).
    flop_cost:
        Work units per ``N^3`` (sets the absolute task granularity; the
        default gives a ~1.6 ms task at tile 64 on a speed-1 core).
    """

    name = "matmul"

    def __init__(self, tile: int = 64, flop_cost: float = 6.0e-9) -> None:
        if tile <= 0:
            raise ConfigurationError(f"tile must be positive, got {tile}")
        if flop_cost <= 0:
            raise ConfigurationError(f"flop_cost must be positive, got {flop_cost}")
        self.tile = int(tile)
        self.flop_cost = float(flop_cost)
        self.name = f"matmul{self.tile}"

    #: Small-tile GEMMs mold poorly: partitioning a ~64x64 product over
    #: several cores costs synchronization comparable to the work saved.
    molding_overhead = 0.10

    def seq_work(self) -> float:
        return self.flop_cost * float(self.tile) ** 3

    def parallel_fraction(self) -> float:
        return 0.75

    def working_set_bytes(self) -> float:
        # The inner-loop-resident tile of doubles (B is streamed, C
        # accumulates in registers); this reproduces the paper's §5.3 L1
        # classification on the TX2 (32 fits both L1s, 64/80 only the
        # 64 KiB Denver L1, 96 spills to L2).
        return self.tile * self.tile * 8.0

    def memory_intensity(self, machine: Machine, place: ExecutionPlace) -> float:
        """Mostly compute-bound; slightly bandwidth-sensitive when the
        working set spills past the L2 share."""
        penalty = self.cache_penalty(machine, place)
        if penalty >= self.dram_penalty:
            return 0.35
        if penalty > 1.0:
            return 0.15
        return 0.05
