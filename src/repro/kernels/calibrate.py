"""Fit analytic kernel-cost constants from real NumPy timings.

The simulation's absolute time scale is arbitrary; what matters for the
reproduction is the *relative* structure (compute vs memory bound, cache
cliffs).  This module lets a user anchor the scale to their own host: it
times the real kernels and returns analytic models whose sequential work
matches the measured single-core durations, treating the host as a speed-1
core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.kernels.copy import CopyKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.real import time_kernel
from repro.kernels.stencil import StencilKernel


@dataclass(frozen=True)
class CalibrationResult:
    """Measured single-core seconds per task and the fitted constants."""

    matmul_seconds: float
    copy_seconds: float
    stencil_seconds: float
    flop_cost: float
    byte_cost: float
    point_cost: float


def calibrate(
    matmul_tile: int = 64,
    copy_tile: int = 1024,
    stencil_tile: int = 1024,
    stencil_sweeps: int = 4,
    repeats: int = 5,
) -> CalibrationResult:
    """Time the real kernels and fit per-unit cost constants.

    The fitted constants can be passed straight into the analytic kernels::

        res = calibrate()
        kernel = MatMulKernel(tile=64, flop_cost=res.flop_cost)
    """
    mm_t, _ = time_kernel("matmul", matmul_tile, repeats=repeats)
    cp_t, _ = time_kernel("copy", copy_tile, repeats=repeats)
    st_t, _ = time_kernel("stencil", stencil_tile, repeats=repeats, sweeps=stencil_sweeps)

    flop_cost = mm_t / float(matmul_tile) ** 3
    byte_cost = cp_t / (2.0 * copy_tile * copy_tile * 8.0)
    point_cost = st_t / (stencil_sweeps * float(stencil_tile) ** 2)
    return CalibrationResult(
        matmul_seconds=mm_t,
        copy_seconds=cp_t,
        stencil_seconds=st_t,
        flop_cost=flop_cost,
        byte_cost=byte_cost,
        point_cost=point_cost,
    )


def calibrated_kernels(result: CalibrationResult) -> Dict[str, object]:
    """Build the three analytic kernels from a calibration result."""
    return {
        "matmul": MatMulKernel(flop_cost=result.flop_cost),
        "copy": CopyKernel(byte_cost=result.byte_cost),
        "stencil": StencilKernel(point_cost=result.point_cost),
    }
