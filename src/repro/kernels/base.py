"""Kernel cost-model interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.topology import ExecutionPlace, Machine


@dataclass(frozen=True)
class WorkProfile:
    """What executing one task of a kernel at a given place costs.

    Attributes
    ----------
    work:
        Effective work units handed to the speed model.  The assembly
        advances at the slowest member core's rate, so the *duration* on an
        uncontended place is ``work / min(core rates)``.
    memory_intensity:
        Fraction in [0, 1] of the work that is memory-bandwidth bound and
        therefore subject to domain contention.
    demand:
        Bandwidth demand units registered on the place's memory domain
        while the task runs.
    """

    work: float
    memory_intensity: float
    demand: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ConfigurationError(f"work must be >= 0, got {self.work}")
        if not (0.0 <= self.memory_intensity <= 1.0):
            raise ConfigurationError(
                f"memory_intensity must be in [0, 1], got {self.memory_intensity}"
            )
        if self.demand < 0:
            raise ConfigurationError(f"demand must be >= 0, got {self.demand}")


class KernelModel(abc.ABC):
    """Analytic cost model of one task kernel.

    Subclasses define sequential work, a parallel-efficiency law for
    moldable widths, and cache/bandwidth behaviour.
    """

    #: Display / PTT-type name; subclasses override.
    name: str = "kernel"

    #: Per-extra-core molding overhead (fraction of sequential work added
    #: per additional core: synchronization, partitioning).
    molding_overhead: float = 0.03

    @abc.abstractmethod
    def seq_work(self) -> float:
        """Sequential work units on a speed-1 core with perfect cache fit."""

    @abc.abstractmethod
    def parallel_fraction(self) -> float:
        """Amdahl parallel fraction of the kernel in [0, 1]."""

    @abc.abstractmethod
    def memory_intensity(self, machine: Machine, place: ExecutionPlace) -> float:
        """Bandwidth-bound fraction at ``place``."""

    def working_set_bytes(self) -> float:
        """Total bytes touched repeatedly by one task (0 = cache-oblivious)."""
        return 0.0

    def cache_penalty(self, machine: Machine, place: ExecutionPlace) -> float:
        """Work multiplier from cache fit at ``place`` (>= 1).

        The per-core slice of the working set is compared against the L1 of
        the member cores and the (shared) L2 of the cluster.  Fitting L1 is
        the baseline; spilling adds work.
        """
        ws = self.working_set_bytes()
        if ws <= 0:
            return 1.0
        cluster = machine.cluster_of(place.leader)
        per_core = ws / place.width
        l1_bytes = min(
            machine.cores[c].l1_kib for c in machine.place_cores(place)
        ) * 1024.0
        l2_share = cluster.l2_kib * 1024.0 * place.width / cluster.num_cores
        # Strict inequality: a working set exactly the cache's size still
        # conflict-misses (matches the paper's "tile 64 only fits the
        # 64 KiB Denver L1", where one 64x64 tile is exactly 32 KiB).
        if per_core < l1_bytes:
            return 1.0
        if per_core < l2_share:
            return self.l2_penalty
        return self.dram_penalty

    #: Work multipliers for L2-resident / DRAM-resident working sets.
    l2_penalty: float = 1.35
    dram_penalty: float = 1.9

    def bandwidth_demand(self, machine: Machine, place: ExecutionPlace) -> float:
        """Demand units while running: memory intensity times width."""
        return self.memory_intensity(machine, place) * place.width

    def profile(self, machine: Machine, place: ExecutionPlace) -> WorkProfile:
        """Full cost profile of one task of this kernel at ``place``.

        Combines Amdahl scaling, per-core molding overhead and cache fit:

        ``work(w) = seq_work * penalty(place) * ((1-f) + f/w)
        * (1 + overhead*(w-1))``
        """
        machine.validate_place(place)
        w = place.width
        f = self.parallel_fraction()
        scaling = (1.0 - f) + f / w
        overhead = 1.0 + self.molding_overhead * (w - 1)
        work = self.seq_work() * self.cache_penalty(machine, place) * scaling * overhead
        return WorkProfile(
            work=work,
            memory_intensity=self.memory_intensity(machine, place),
            demand=self.bandwidth_demand(machine, place),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
