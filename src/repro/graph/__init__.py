"""Task and DAG model (paper §2).

Tasks carry a kernel (their *task type* — the PTT key), a priority (high =
critical, low = the rest), and dependencies.  :class:`TaskGraph` supports
both static DAGs (fully built before execution) and dynamic DAGs (tasks
conditionally inserted at runtime through spawn hooks), and computes the
structural measures the paper uses: DAG parallelism and critical-path
length.
"""

from repro.graph.task import Priority, Task, TaskState
from repro.graph.dag import TaskGraph
from repro.graph.generators import (
    chain_dag,
    diamond_dag,
    fork_join_dag,
    layered_synthetic_dag,
    random_layered_dag,
)

__all__ = [
    "Priority",
    "Task",
    "TaskState",
    "TaskGraph",
    "chain_dag",
    "diamond_dag",
    "fork_join_dag",
    "layered_synthetic_dag",
    "random_layered_dag",
]
