"""The task graph: static and dynamic DAGs of moldable tasks."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.task import Priority, SpawnHook, Task, TaskState
from repro.kernels.base import KernelModel


class TaskGraph:
    """A DAG of tasks with runtime-safe dynamic insertion.

    Acyclicity is guaranteed by construction: a task's dependencies must
    already exist when the task is added, so every edge points from an
    earlier to a later insertion.  Completed dependencies count as
    satisfied, which is what makes insertion during execution (dynamic
    DAGs) well-defined.

    The graph is the single source of truth for dependency state; the
    runtime drives it through :meth:`complete` and receives newly released
    tasks back.
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._tasks: Dict[int, Task] = {}
        self._next_id = 0
        self._completed = 0
        #: Tasks released (deps satisfied) but not yet handed to the runtime.
        self._fresh_ready: List[Task] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(
        self,
        kernel: KernelModel,
        deps: Sequence[Task] = (),
        priority: Priority = Priority.LOW,
        label: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
        spawn: Optional[SpawnHook] = None,
    ) -> Task:
        """Create a task depending on ``deps`` (which must belong to this graph).

        May be called before execution (static DAG) or from a ``spawn``
        hook while the runtime is executing (dynamic DAG).
        """
        task = Task(
            self._next_id,
            kernel,
            priority=priority,
            label=label,
            metadata=metadata,
            spawn=spawn,
        )
        self._next_id += 1

        pending = 0
        seen = set()
        for dep in deps:
            if dep.task_id not in self._tasks or self._tasks[dep.task_id] is not dep:
                raise GraphError(
                    f"dependency {dep!r} does not belong to graph {self.name!r}"
                )
            if dep.task_id in seen:
                continue  # duplicate dependency edges collapse
            seen.add(dep.task_id)
            if dep.state is not TaskState.DONE:
                dep._dependents.append(task)
                pending += 1
        task._pending_deps = pending
        self._tasks[task.task_id] = task
        if pending == 0:
            task.state = TaskState.READY
            self._fresh_ready.append(task)
        return task

    # ------------------------------------------------------------------
    # execution-side protocol
    # ------------------------------------------------------------------
    def drain_ready(self) -> List[Task]:
        """Return and clear the tasks released since the last drain.

        The runtime calls this at start-up (initial roots) and after every
        :meth:`complete` (which may both release dependents and, through
        spawn hooks, insert new root tasks).
        """
        out, self._fresh_ready = self._fresh_ready, []
        return out

    def complete(self, task: Task) -> List[Task]:
        """Mark ``task`` done; run its spawn hook; return newly ready tasks."""
        if self._tasks.get(task.task_id) is not task:
            raise GraphError(f"{task!r} does not belong to graph {self.name!r}")
        if task.state is not TaskState.READY:
            raise GraphError(
                f"cannot complete {task!r} in state {task.state.value!r}"
            )
        task.state = TaskState.DONE
        self._completed += 1
        for child in task._dependents:
            child._pending_deps -= 1
            if child._pending_deps < 0:
                raise GraphError(f"dependency underflow on {child!r}")
            if child._pending_deps == 0 and child.state is TaskState.WAITING:
                child.state = TaskState.READY
                self._fresh_ready.append(child)
        if task.spawn is not None:
            task.spawn(self, task)
        return self.drain_ready()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def total_tasks(self) -> int:
        return len(self._tasks)

    @property
    def completed_tasks(self) -> int:
        return self._completed

    @property
    def is_finished(self) -> bool:
        """All currently known tasks are done and none are pending release."""
        return self._completed == len(self._tasks) and not self._fresh_ready

    def tasks(self) -> Iterable[Task]:
        """All tasks in insertion (topological) order."""
        return self._tasks.values()

    def task(self, task_id: int) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise GraphError(f"no task {task_id} in graph {self.name!r}") from None

    # ------------------------------------------------------------------
    # structural measures (paper §2)
    # ------------------------------------------------------------------
    def longest_path(
        self, weight: Callable[[Task], float] = lambda _t: 1.0
    ) -> float:
        """Longest weighted path over the *current* task set.

        Insertion order is a topological order (edges point forward), so a
        single forward sweep suffices.  With the default unit weight this
        is the longest path in task counts.
        """
        if not self._tasks:
            return 0.0
        dist: Dict[int, float] = {}
        best = 0.0
        for task in self._tasks.values():
            d = dist.get(task.task_id, 0.0) + weight(task)
            best = max(best, d)
            for child in task._dependents:
                if dist.get(child.task_id, 0.0) < d:
                    dist[child.task_id] = d
        return best

    def dag_parallelism(self) -> float:
        """Total tasks divided by the longest path length (paper §2)."""
        path = self.longest_path()
        if path == 0:
            return 0.0
        return self.total_tasks / path

    def critical_path_work(self) -> float:
        """Longest path weighted by sequential kernel work.

        A lower bound on makespan for a machine whose fastest core has
        speed ``s`` is ``critical_path_work() / s`` (ignoring cache
        penalties, which only add work).
        """
        return self.longest_path(weight=lambda t: t.kernel.seq_work())

    def total_work(self) -> float:
        """Sum of sequential work over all tasks (area lower bound)."""
        return sum(t.kernel.seq_work() for t in self._tasks.values())

    def validate(self) -> None:
        """Check internal invariants; raises :class:`GraphError` on breakage."""
        for task in self._tasks.values():
            live = sum(
                1
                for other in self._tasks.values()
                for child in other._dependents
                if child is task and other.state is not TaskState.DONE
            )
            if task.state is TaskState.WAITING and task._pending_deps == 0:
                raise GraphError(f"{task!r} waiting with zero pending deps")
            if task._pending_deps > live:
                raise GraphError(
                    f"{task!r} pending count {task._pending_deps} exceeds "
                    f"live in-edges {live}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TaskGraph {self.name!r} tasks={len(self._tasks)} "
            f"done={self._completed}>"
        )
