"""Structural DAG templates: build a shape once, instantiate cheaply.

Sweeps re-create the same DAG shapes thousands of times — every cell of
a figure builds a layered/fork-join/random graph whose *structure* is a
pure function of the generator's parameters (and seed).  A
:class:`DagTemplate` captures that structure from the first build; later
builds with the same parameters replay it by constructing the ``Task``
objects directly, skipping dependency validation, dedup and per-edge
bookkeeping in :meth:`~repro.graph.dag.TaskGraph.add_task`.

Instantiation is exactly equivalent to direct generation — same task
ids, kernels, priorities, labels, metadata (fresh dicts), dependency
counts, ``_dependents`` order and initial ready set — which is asserted
by property tests over every generator family.  Graphs using spawn
hooks (dynamic DAGs) are never templated.

The cache is per-process (sweep workers each warm their own) and keyed
by canonical generator parameters, like the sweep result cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.dag import TaskGraph
from repro.graph.task import Priority, Task, TaskState
from repro.kernels.base import KernelModel

#: Oldest templates are evicted beyond this many cached shapes.
TEMPLATE_CACHE_MAX = 256

#: node = (kernel, priority, label, metadata, dep_ids)
_Node = Tuple[KernelModel, Priority, str, dict, Tuple[int, ...]]


class DagTemplate:
    """A captured DAG structure, replayable into fresh :class:`TaskGraph`\\ s."""

    __slots__ = ("name", "nodes")

    def __init__(self, name: str, nodes: Tuple[_Node, ...]) -> None:
        self.name = name
        self.nodes = nodes

    @classmethod
    def capture(cls, graph: TaskGraph) -> Optional["DagTemplate"]:
        """Snapshot ``graph``'s structure, or ``None`` if not templatable.

        Only freshly built static graphs qualify: no completed tasks, no
        spawn hooks, ids contiguous from zero.
        """
        tasks = list(graph.tasks())
        if graph.completed_tasks or any(t.spawn is not None for t in tasks):
            return None
        deps: List[List[int]] = [[] for _ in tasks]
        for i, task in enumerate(tasks):
            if task.task_id != i:
                return None
            for child in task._dependents:
                deps[child.task_id].append(i)
        nodes = tuple(
            (task.kernel, task.priority, task.label, dict(task.metadata),
             tuple(deps[i]))
            for i, task in enumerate(tasks)
        )
        return cls(graph.name, nodes)

    def instantiate(self, name: Optional[str] = None) -> TaskGraph:
        """A fresh graph structurally identical to the captured one."""
        graph = TaskGraph(name or self.name)
        tasks = graph._tasks
        fresh = graph._fresh_ready
        built: List[Task] = []
        for task_id, (kernel, priority, label, metadata, dep_ids) in enumerate(
            self.nodes
        ):
            task = Task(
                task_id, kernel, priority=priority, label=label,
                metadata=metadata,
            )
            if dep_ids:
                task._pending_deps = len(dep_ids)
                for dep in dep_ids:
                    built[dep]._dependents.append(task)
            else:
                task.state = TaskState.READY
                fresh.append(task)
            tasks[task_id] = task
            built.append(task)
        graph._next_id = len(built)
        return graph


_CACHE: Dict[tuple, DagTemplate] = {}
_STATS = {"hits": 0, "misses": 0, "bypasses": 0}


def kernel_cache_key(kernel: KernelModel) -> Optional[tuple]:
    """Canonical content key of a kernel, or ``None`` if not keyable."""
    try:
        state = tuple(sorted(vars(kernel).items()))
        hash(state)
    except TypeError:
        return None
    return (type(kernel).__module__, type(kernel).__qualname__, state)


def template_lookup(key: Optional[tuple]) -> Optional[DagTemplate]:
    """The cached template for ``key``, counting hit/miss/bypass stats."""
    if key is None:
        _STATS["bypasses"] += 1
        return None
    template = _CACHE.get(key)
    if template is None:
        _STATS["misses"] += 1
        return None
    _STATS["hits"] += 1
    return template


def template_store(key: Optional[tuple], graph: TaskGraph) -> None:
    """Capture and cache ``graph`` under ``key`` (no-op if not keyable)."""
    if key is None:
        return
    template = DagTemplate.capture(graph)
    if template is None:
        return
    while len(_CACHE) >= TEMPLATE_CACHE_MAX:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = template


def template_cache_stats() -> Dict[str, int]:
    """Hit/miss/bypass counters plus the current cache size."""
    out = dict(_STATS)
    out["size"] = len(_CACHE)
    return out


def clear_template_cache() -> None:
    """Drop all cached templates and reset the counters (for tests)."""
    _CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0
