"""DAG generators: the paper's synthetic workload plus common test shapes."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.graph.dag import TaskGraph
from repro.graph.task import Priority, Task
from repro.graph.templates import (
    kernel_cache_key,
    template_lookup,
    template_store,
)
from repro.kernels.base import KernelModel
from repro.profile.phases import phase_scope
from repro.util.rng import SeedLike, make_rng


def _template_key(family: str, kernel: KernelModel, *params) -> Optional[tuple]:
    """Template-cache key for a single-kernel generator, or ``None``."""
    kernel_key = kernel_cache_key(kernel)
    if kernel_key is None:
        return None
    return (family, kernel_key) + params


def layered_synthetic_dag(
    kernel: KernelModel,
    parallelism: int,
    total_tasks: int,
    name: Optional[str] = None,
) -> TaskGraph:
    """The paper's synthetic DAG (§4.2.2).

    Each layer holds ``parallelism`` tasks of the same type; exactly one
    task per layer is marked high-priority (critical), and completing it
    releases the entire next layer.  The DAG parallelism therefore equals
    ``parallelism`` and the critical tasks form the longest path.

    ``total_tasks`` is rounded down to a whole number of layers.
    """
    if parallelism <= 0:
        raise ConfigurationError(f"parallelism must be positive, got {parallelism}")
    if total_tasks < parallelism:
        raise ConfigurationError(
            f"total_tasks ({total_tasks}) must be >= parallelism ({parallelism})"
        )
    layers = total_tasks // parallelism
    key = _template_key("layered", kernel, parallelism, layers)
    default_name = name or f"synthetic-{kernel.name}-p{parallelism}"
    template = template_lookup(key)
    if template is not None:
        with phase_scope("dag-build"):
            return template.instantiate(default_name)
    with phase_scope("dag-build"):
        graph = TaskGraph(default_name)
        previous_critical: Optional[Task] = None
        for layer in range(layers):
            deps = [previous_critical] if previous_critical is not None else []
            critical = graph.add_task(
                kernel,
                deps=deps,
                priority=Priority.HIGH,
                metadata={"layer": layer, "critical": True},
            )
            for i in range(parallelism - 1):
                graph.add_task(
                    kernel,
                    deps=deps,
                    priority=Priority.LOW,
                    metadata={"layer": layer, "critical": False},
                )
            previous_critical = critical
        template_store(key, graph)
        return graph


def chain_dag(
    kernel: KernelModel,
    length: int,
    priority: Priority = Priority.LOW,
    name: Optional[str] = None,
) -> TaskGraph:
    """A single chain of ``length`` tasks (the paper's co-runner app shape)."""
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length}")
    key = _template_key("chain", kernel, length, int(priority))
    default_name = name or f"chain-{kernel.name}"
    template = template_lookup(key)
    if template is not None:
        with phase_scope("dag-build"):
            return template.instantiate(default_name)
    with phase_scope("dag-build"):
        graph = TaskGraph(default_name)
        prev: Optional[Task] = None
        for i in range(length):
            prev = graph.add_task(
                kernel,
                deps=[prev] if prev is not None else [],
                priority=priority,
                metadata={"position": i},
            )
        template_store(key, graph)
        return graph


def fork_join_dag(
    kernel: KernelModel,
    fan_out: int,
    stages: int = 1,
    name: Optional[str] = None,
) -> TaskGraph:
    """``stages`` rounds of fork(fan_out)/join; joins are high priority."""
    if fan_out <= 0 or stages <= 0:
        raise ConfigurationError("fan_out and stages must be positive")
    key = _template_key("forkjoin", kernel, fan_out, stages)
    default_name = name or f"forkjoin-{kernel.name}"
    template = template_lookup(key)
    if template is not None:
        with phase_scope("dag-build"):
            return template.instantiate(default_name)
    with phase_scope("dag-build"):
        graph = TaskGraph(default_name)
        source = graph.add_task(
            kernel, priority=Priority.HIGH, metadata={"role": "source"}
        )
        frontier = [source]
        for stage in range(stages):
            forks = [
                graph.add_task(
                    kernel,
                    deps=frontier,
                    metadata={"role": "fork", "stage": stage},
                )
                for _ in range(fan_out)
            ]
            join = graph.add_task(
                kernel,
                deps=forks,
                priority=Priority.HIGH,
                metadata={"role": "join", "stage": stage},
            )
            frontier = [join]
        template_store(key, graph)
        return graph


def diamond_dag(kernel: KernelModel, name: Optional[str] = None) -> TaskGraph:
    """The four-task diamond (source, two branches, sink) used in tests."""
    key = _template_key("diamond", kernel)
    default_name = name or "diamond"
    template = template_lookup(key)
    if template is not None:
        with phase_scope("dag-build"):
            return template.instantiate(default_name)
    with phase_scope("dag-build"):
        graph = TaskGraph(default_name)
        top = graph.add_task(kernel, priority=Priority.HIGH, metadata={"role": "top"})
        left = graph.add_task(kernel, deps=[top], metadata={"role": "left"})
        right = graph.add_task(kernel, deps=[top], metadata={"role": "right"})
        graph.add_task(
            kernel, deps=[left, right], priority=Priority.HIGH,
            metadata={"role": "bottom"},
        )
        template_store(key, graph)
        return graph


def random_layered_dag(
    kernels: Sequence[KernelModel],
    layers: int,
    max_width: int,
    seed: SeedLike = 0,
    edge_probability: float = 0.5,
    name: Optional[str] = None,
) -> TaskGraph:
    """A random layered DAG for stress tests.

    Each layer has 1..``max_width`` tasks with random kernels; every task
    depends on each task of the previous layer independently with
    ``edge_probability`` (at least one edge is forced so layers stay
    ordered).  The widest task of each layer is marked high priority.
    """
    if layers <= 0 or max_width <= 0:
        raise ConfigurationError("layers and max_width must be positive")
    if not kernels:
        raise ConfigurationError("need at least one kernel")
    if not (0.0 <= edge_probability <= 1.0):
        raise ConfigurationError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    key = None
    if isinstance(seed, int) and not isinstance(seed, bool):
        kernel_keys = tuple(kernel_cache_key(k) for k in kernels)
        if None not in kernel_keys:
            key = (
                "random", kernel_keys, layers, max_width, seed,
                float(edge_probability),
            )
    default_name = name or "random-layered"
    template = template_lookup(key)
    if template is not None:
        with phase_scope("dag-build"):
            return template.instantiate(default_name)
    rng = make_rng(seed)
    with phase_scope("dag-build"):
        graph = TaskGraph(default_name)
        previous: List[Task] = []
        for layer in range(layers):
            width = int(rng.integers(1, max_width + 1))
            current: List[Task] = []
            for i in range(width):
                kernel = kernels[int(rng.integers(0, len(kernels)))]
                if previous:
                    mask = rng.random(len(previous)) < edge_probability
                    deps = [t for t, keep in zip(previous, mask) if keep]
                    if not deps:
                        deps = [previous[int(rng.integers(0, len(previous)))]]
                else:
                    deps = []
                current.append(
                    graph.add_task(
                        kernel,
                        deps=deps,
                        priority=Priority.HIGH if i == 0 else Priority.LOW,
                        metadata={"layer": layer},
                    )
                )
            previous = current
        template_store(key, graph)
        return graph
