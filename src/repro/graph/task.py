"""Task objects."""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.kernels.base import KernelModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.dag import TaskGraph


class Priority(enum.IntEnum):
    """Task criticality (paper §2): high-priority tasks release large
    amounts of dependent work or lie on the critical path."""

    LOW = 0
    HIGH = 1


class TaskState(enum.Enum):
    """Graph-level lifecycle of a task."""

    WAITING = "waiting"    # has unsatisfied dependencies
    READY = "ready"        # released, owned by the runtime
    DONE = "done"          # committed


SpawnHook = Callable[["TaskGraph", "Task"], None]


class Task:
    """One node of the DAG.

    Attributes
    ----------
    kernel:
        The task's :class:`KernelModel`; ``kernel.name`` is the task *type*
        used to index the Performance Trace Table.
    priority:
        :class:`Priority` — high-priority tasks get criticality-aware
        placement and are exempt from stealing.
    spawn:
        Optional hook invoked (by the graph) when the task completes,
        allowing dynamic DAGs to insert successor tasks (paper §2,
        "irregular computations ... conditionally insert new tasks").
    metadata:
        Free-form labels (iteration number, layer index, ...) used by
        metrics and applications.
    """

    __slots__ = (
        "task_id",
        "kernel",
        "priority",
        "label",
        "metadata",
        "spawn",
        "state",
        "_pending_deps",
        "_dependents",
    )

    def __init__(
        self,
        task_id: int,
        kernel: KernelModel,
        priority: Priority = Priority.LOW,
        label: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
        spawn: Optional[SpawnHook] = None,
    ) -> None:
        self.task_id = task_id
        self.kernel = kernel
        self.priority = Priority(priority)
        self.label = label or f"{kernel.name}#{task_id}"
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.spawn = spawn
        self.state = TaskState.WAITING
        self._pending_deps = 0
        self._dependents: List["Task"] = []

    @property
    def type_name(self) -> str:
        """The PTT key for this task."""
        return self.kernel.name

    @property
    def is_high_priority(self) -> bool:
        return self.priority is Priority.HIGH

    @property
    def dependents(self) -> List["Task"]:
        """Tasks waiting on this one (read-only view by convention)."""
        return self._dependents

    @property
    def pending_dependencies(self) -> int:
        return self._pending_deps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "H" if self.is_high_priority else "L"
        return f"<Task {self.task_id} {self.label} [{flag}] {self.state.value}>"
