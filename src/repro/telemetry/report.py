"""Post-run standalone HTML report with inline-SVG sparklines.

``python -m repro.telemetry.report <manifest.json | run dir>`` reads the
sweep artifacts written next to ``manifest.json`` — the periodic
``metrics.jsonl`` snapshots and the manifest itself — and renders one
self-contained HTML file (no external assets, scripts or CDN fonts): a
summary strip, sparklines of throughput / worker occupancy / queue depth
/ CI convergence / recent run wall times, the run-duration histogram,
per-scheduler result tables and the full metric catalogue.  Harnesses
expose the same renderer behind ``--report``.

Everything is hand-rolled stdlib: snapshots in, one HTML string out.
"""

from __future__ import annotations

import html
import json
import math
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default output file name, next to the manifest.
REPORT_HTML = "report.html"

_SPARK_W = 280
_SPARK_H = 56
_PAD = 4

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.8em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccd; padding: 0.25em 0.7em; text-align: right; }
th { background: #eef; } td.l, th.l { text-align: left; }
.cards { display: flex; flex-wrap: wrap; gap: 1.2em; }
.card { border: 1px solid #ccd; border-radius: 6px; padding: 0.6em 0.9em; }
.card .t { font-size: 0.85em; color: #556; margin-bottom: 0.2em; }
.card .v { font-size: 0.95em; color: #223; }
.muted { color: #778; } svg { display: block; }
.err { color: #a22; }
"""


# -- artifact loading ---------------------------------------------------
def resolve_run_dir(path: os.PathLike) -> Path:
    """Accept a manifest path or the directory that contains it."""
    p = Path(path)
    return p.parent if p.is_file() else p


def load_manifest(run_dir: Path) -> Optional[Dict[str, Any]]:
    """The sweep's ``manifest.json`` payload, or None when absent."""
    try:
        with open(run_dir / "manifest.json", "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def load_snapshots(run_dir: Path) -> List[Dict[str, Any]]:
    """The ``metrics.jsonl`` snapshot stream, torn lines tolerated."""
    from repro.telemetry import METRICS_JSONL

    snaps: List[Dict[str, Any]] = []
    try:
        fh = open(run_dir / METRICS_JSONL, "r", encoding="utf-8")
    except OSError:
        return snaps
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                snap = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(snap, dict) and "metrics" in snap:
                snaps.append(snap)
    return snaps


# -- tiny SVG toolkit ---------------------------------------------------
def _finite(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    return [
        (float(t), float(v))
        for t, v in points
        if isinstance(t, (int, float)) and isinstance(v, (int, float))
        and math.isfinite(float(t)) and math.isfinite(float(v))
    ]


def sparkline(
    points: Sequence[Tuple[float, float]],
    width: int = _SPARK_W,
    height: int = _SPARK_H,
    color: str = "#3657a6",
) -> str:
    """An inline-SVG sparkline of ``(t, value)`` points (no axes; the
    min/max are annotated instead).  Degrades to a 'no data' box."""
    pts = _finite(points)
    if len(pts) < 2:
        return (
            f'<svg width="{width}" height="{height}" role="img">'
            f'<rect width="{width}" height="{height}" fill="#f4f4fa"/>'
            f'<text x="{width / 2}" y="{height / 2 + 4}" fill="#99a" '
            f'font-size="11" text-anchor="middle">no data</text></svg>'
        )
    pts.sort(key=lambda p: p[0])
    t0, t1 = pts[0][0], pts[-1][0]
    vs = [v for _, v in pts]
    v0, v1 = min(vs), max(vs)
    tspan = (t1 - t0) or 1.0
    vspan = (v1 - v0) or 1.0
    inner_w = width - 2 * _PAD
    inner_h = height - 2 * _PAD - 10  # leave room for the max label
    coords = " ".join(
        f"{_PAD + inner_w * (t - t0) / tspan:.1f},"
        f"{_PAD + 10 + inner_h * (1 - (v - v0) / vspan):.1f}"
        for t, v in pts
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<rect width="{width}" height="{height}" fill="#fafaff"/>'
        f'<polyline points="{coords}" fill="none" stroke="{color}" '
        f'stroke-width="1.5"/>'
        f'<text x="{_PAD}" y="10" fill="#667" font-size="10">'
        f"max {v1:.4g}</text>"
        f'<text x="{width - _PAD}" y="10" fill="#667" font-size="10" '
        f'text-anchor="end">min {v0:.4g}</text></svg>'
    )


def histogram_svg(
    buckets: Sequence[float],
    counts: Sequence[int],
    width: int = 560,
    height: int = 140,
) -> str:
    """Bar chart of fixed-bucket counts (last slot is the +Inf overflow)."""
    counts = [int(c) for c in counts]
    if not counts or not any(counts):
        return '<p class="muted">no observations</p>'
    labels = [f"&le;{b:g}" for b in buckets] + ["+Inf"]
    n = len(counts)
    top = max(counts)
    bar_w = max(6, (width - 2 * _PAD) // n - 2)
    parts = [
        f'<svg width="{width}" height="{height}" role="img">',
        f'<rect width="{width}" height="{height}" fill="#fafaff"/>',
    ]
    base = height - 18
    for i, count in enumerate(counts):
        bar_h = int((base - 14) * count / top) if top else 0
        x = _PAD + i * (bar_w + 2)
        parts.append(
            f'<rect x="{x}" y="{base - bar_h}" width="{bar_w}" '
            f'height="{bar_h}" fill="#3657a6"><title>'
            f"{labels[i]}: {count}</title></rect>"
        )
        if count:
            parts.append(
                f'<text x="{x + bar_w / 2}" y="{base - bar_h - 3}" '
                f'font-size="9" fill="#445" text-anchor="middle">'
                f"{count}</text>"
            )
        parts.append(
            f'<text x="{x + bar_w / 2}" y="{height - 6}" font-size="8" '
            f'fill="#667" text-anchor="middle">{labels[i]}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


# -- snapshot-derived series --------------------------------------------
def _gauge_series(
    snaps: Sequence[Dict[str, Any]], name: str
) -> List[Tuple[float, float]]:
    out = []
    for snap in snaps:
        entry = (snap.get("metrics") or {}).get(name)
        if isinstance(entry, dict) and "value" in entry:
            out.append((snap.get("t", 0.0), entry["value"]))
    return out


def _counter_value(snap: Dict[str, Any], name: str) -> float:
    entry = (snap.get("metrics") or {}).get(name) or {}
    try:
        return float(entry.get("value", 0.0))
    except (TypeError, ValueError):
        return 0.0


def throughput_series(
    snaps: Sequence[Dict[str, Any]]
) -> List[Tuple[float, float]]:
    """Completed runs per second between successive snapshots."""
    out: List[Tuple[float, float]] = []
    prev_t = prev_n = None
    for snap in snaps:
        t = snap.get("t", 0.0)
        n = _counter_value(snap, "sweep_runs_finished_total")
        if prev_t is not None and t > prev_t:
            out.append((t, (n - prev_n) / (t - prev_t)))
        prev_t, prev_n = t, n
    return out


def run_wall_series(snap: Dict[str, Any]) -> List[Tuple[float, float]]:
    """The run-duration ring buffer from the final (forced) snapshot."""
    entry = (snap.get("metrics") or {}).get("sweep_run_seconds") or {}
    series = entry.get("series") or []
    out = []
    for item in series:
        try:
            out.append((float(item[0]), float(item[1])))
        except (TypeError, ValueError, IndexError):
            continue
    return out


# -- report assembly ----------------------------------------------------
def _card(title: str, svg: str, note: str = "") -> str:
    note_html = f'<div class="t muted">{note}</div>' if note else ""
    return (
        f'<div class="card"><div class="t">{html.escape(title)}</div>'
        f"{svg}{note_html}</div>"
    )


def _summary_cards(manifest: Optional[Dict[str, Any]]) -> str:
    stats = (manifest or {}).get("stats") or {}
    if not stats:
        return '<p class="muted">no sweep stats in the manifest</p>'
    shown = [
        ("specs", "runs"), ("unique", "unique"), ("hits", "cached"),
        ("executed", "executed"), ("failures", "failed"),
        ("retries", "retried"), ("timeouts", "timed out"),
        ("resumed", "resumed"), ("seeds_added", "seeds grown"),
        ("seeds_saved", "seeds saved"), ("batched_runs", "batched runs"),
    ]
    cells = "".join(
        f'<div class="card"><div class="t">{label}</div>'
        f'<div class="v">{stats.get(key, 0)}</div></div>'
        for key, label in shown
        if stats.get(key) or key in ("specs", "unique", "executed")
    )
    elapsed = stats.get("elapsed")
    if isinstance(elapsed, (int, float)):
        cells += (
            '<div class="card"><div class="t">elapsed</div>'
            f'<div class="v">{elapsed:.1f}s</div></div>'
        )
    return f'<div class="cards">{cells}</div>'


def _scheduler_table(manifest: Optional[Dict[str, Any]]) -> str:
    runs = (manifest or {}).get("runs") or []
    if not runs:
        return '<p class="muted">no per-run entries in the manifest</p>'
    groups: Dict[str, Dict[str, Any]] = {}
    for run in runs:
        tags = run.get("tags") or {}
        name = str(tags.get("scheduler", "(untagged)"))
        g = groups.setdefault(
            name,
            {"runs": 0, "cached": 0, "failed": 0, "walls": [],
             "attempts": 0},
        )
        g["runs"] += 1
        if run.get("cached"):
            g["cached"] += 1
        if run.get("error"):
            g["failed"] += 1
        wall = run.get("wall_time")
        if isinstance(wall, (int, float)):
            g["walls"].append(wall)
        g["attempts"] = max(g["attempts"], int(run.get("attempts") or 0))
    rows = []
    for name in sorted(groups):
        g = groups[name]
        mean_wall = (
            f"{sum(g['walls']) / len(g['walls']):.3f}" if g["walls"] else "–"
        )
        failed = (
            f'<span class="err">{g["failed"]}</span>'
            if g["failed"]
            else "0"
        )
        rows.append(
            f'<tr><td class="l">{html.escape(name)}</td>'
            f"<td>{g['runs']}</td><td>{g['cached']}</td>"
            f"<td>{failed}</td><td>{mean_wall}</td>"
            f"<td>{g['attempts']}</td></tr>"
        )
    return (
        '<table><tr><th class="l">scheduler</th><th>runs</th>'
        "<th>cached</th><th>failed</th><th>mean wall (s)</th>"
        "<th>max attempts</th></tr>" + "".join(rows) + "</table>"
    )


def _dispatch_cards(final: Dict[str, Any]) -> str:
    """Dispatch fast-lane counters, shown only when the path ran."""
    frames = _counter_value(final, "dispatch_frames_total")
    if not frames:
        return ""
    shown = [
        ("dispatch_frames_total", "dispatch frames"),
        ("dispatch_deltas_total", "delta-encoded specs"),
        ("dispatch_spec_bytes_total", "spec bytes shipped"),
        ("dispatch_bytes_saved_total", "spec bytes saved"),
        ("dispatch_roundtrips_saved_total", "round-trips saved"),
        ("dispatch_placements_total", "placements"),
        ("dispatch_placement_informed_total", "informed placements"),
    ]
    cells = "".join(
        f'<div class="card"><div class="t">{label}</div>'
        f'<div class="v">{_counter_value(final, name):.0f}</div></div>'
        for name, label in shown
        if _counter_value(final, name)
    )
    return (
        "<h2>Dispatch fast lane</h2>"
        f'<div class="cards">{cells}</div>'
    )


def _worker_table(snaps: Sequence[Dict[str, Any]]) -> str:
    rows_by_ident: Dict[int, Dict[str, Any]] = {}
    for snap in snaps:
        for worker in snap.get("workers") or []:
            ident = worker.get("ident")
            if isinstance(ident, int):
                rows_by_ident[ident] = worker
    if not rows_by_ident:
        return '<p class="muted">no worker snapshots recorded</p>'
    rows = []
    for ident in sorted(rows_by_ident):
        w = rows_by_ident[ident]
        rows.append(
            f"<tr><td>{ident}</td><td>{w.get('pid') or '–'}</td>"
            f'<td class="l">{html.escape(str(w.get("state", "")))}</td>'
            f"<td>{w.get('runs_done', 0)}</td>"
            f"<td>{'yes' if w.get('straggler') else ''}</td></tr>"
        )
    return (
        "<table><tr><th>worker</th><th>pid</th>"
        '<th class="l">last state</th><th>runs done</th>'
        "<th>straggled</th></tr>" + "".join(rows) + "</table>"
    )


def _metric_table(final: Dict[str, Any]) -> str:
    metrics = final.get("metrics") or {}
    if not metrics:
        return '<p class="muted">no metrics recorded</p>'
    rows = []
    for name, entry in metrics.items():
        kind = entry.get("type", "?")
        if kind == "histogram":
            value = (
                f"count {int(entry.get('count', 0))}, "
                f"sum {float(entry.get('sum', 0.0)):.4g}"
            )
        else:
            value = f"{float(entry.get('value', 0.0)):.6g}"
        rows.append(
            f'<tr><td class="l"><code>{html.escape(name)}</code></td>'
            f'<td class="l">{kind}</td><td>{value}</td>'
            f'<td class="l muted">{html.escape(str(entry.get("help", "")))}'
            "</td></tr>"
        )
    return (
        '<table><tr><th class="l">metric</th><th class="l">type</th>'
        '<th>value</th><th class="l">help</th></tr>'
        + "".join(rows)
        + "</table>"
    )


def render_report(
    manifest: Optional[Dict[str, Any]],
    snapshots: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
) -> str:
    """One standalone HTML page from the sweep's telemetry artifacts."""
    final = snapshots[-1] if snapshots else {}
    label = title or (manifest or {}).get("label") or final.get(
        "label", "sweep"
    )
    cards = "".join(
        [
            _card(
                "throughput (runs/s)",
                sparkline(throughput_series(snapshots)),
            ),
            _card(
                "workers busy",
                sparkline(
                    _gauge_series(snapshots, "sweep_workers_busy"),
                    color="#2e7d4f",
                ),
            ),
            _card(
                "queue depth",
                sparkline(
                    _gauge_series(snapshots, "sweep_queue_depth"),
                    color="#8a5a2e",
                ),
            ),
            _card(
                "max relative CI (adaptive)",
                sparkline(
                    _gauge_series(snapshots, "adaptive_max_relative_ci"),
                    color="#8a2e6e",
                ),
            ),
            _card(
                "recent run wall times (s)",
                sparkline(run_wall_series(final), color="#2e6e8a"),
            ),
        ]
    )
    hist = (final.get("metrics") or {}).get("sweep_run_seconds") or {}
    hist_svg = histogram_svg(
        hist.get("buckets") or [], hist.get("counts") or []
    )
    version = (manifest or {}).get("version", "")
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>sweep report: {html.escape(str(label))}</title>
<style>{_CSS}</style></head><body>
<h1>Sweep report: <code>{html.escape(str(label))}</code></h1>
<p class="muted">{len(snapshots)} telemetry snapshots,
package version {html.escape(str(version))}</p>
<h2>Summary</h2>
{_summary_cards(manifest)}
<h2>Timelines</h2>
<div class="cards">{cards}</div>
{_dispatch_cards(final)}
<h2>Run duration distribution</h2>
{hist_svg}
<h2>Per-scheduler results</h2>
{_scheduler_table(manifest)}
<h2>Workers</h2>
{_worker_table(snapshots)}
<h2>Metric catalogue</h2>
{_metric_table(final)}
</body></html>
"""


def write_report(
    run_dir: os.PathLike,
    out: Optional[os.PathLike] = None,
    title: Optional[str] = None,
) -> Path:
    """Render ``report.html`` for a run directory; returns its path."""
    run_dir = resolve_run_dir(run_dir)
    manifest = load_manifest(run_dir)
    snapshots = load_snapshots(run_dir)
    out_path = Path(out) if out else run_dir / REPORT_HTML
    out_path.parent.mkdir(parents=True, exist_ok=True)
    text = render_report(manifest, snapshots, title=title)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return out_path


def main(argv=None) -> int:
    """CLI: render ``report.html`` from a recorded sweep directory."""
    args = list(sys.argv[1:] if argv is None else argv)
    out: Optional[str] = None
    paths: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("-h", "--help"):
            print(
                "usage: python -m repro.telemetry.report "
                "<manifest.json | run dir> [-o report.html]",
                file=sys.stderr,
            )
            return 0
        if arg in ("-o", "--out"):
            if i + 1 >= len(args):
                print(f"{arg} needs a value", file=sys.stderr)
                return 2
            out = args[i + 1]
            i += 2
            continue
        paths.append(arg)
        i += 1
    if len(paths) != 1:
        print(
            "usage: python -m repro.telemetry.report "
            "<manifest.json | run dir> [-o report.html]",
            file=sys.stderr,
        )
        return 2
    run_dir = resolve_run_dir(paths[0])
    if not run_dir.is_dir():
        print(f"{run_dir}: not a directory", file=sys.stderr)
        return 1
    path = write_report(run_dir, out)
    print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "REPORT_HTML",
    "histogram_svg",
    "load_manifest",
    "load_snapshots",
    "main",
    "render_report",
    "resolve_run_dir",
    "run_wall_series",
    "sparkline",
    "throughput_series",
    "write_report",
]
