"""The ``--watch`` terminal dashboard (pure stdlib, ANSI on stderr).

One :class:`Dashboard` consumes the sweep's
:meth:`~repro.telemetry.Telemetry.snapshot` and redraws a fixed-height
frame in place: a progress bar with ETA (from the cost-model EWMAs), a
counter strip, the per-worker table (state, current run, attempt,
elapsed, heartbeat age, straggler flag) and the newest progress lines.
While open it installs itself as the
:class:`~repro.telemetry.progress.ProgressEmitter` sink so ordinary
``[sweep:<label>]`` lines land in the frame's log pane instead of
tearing it.

On a non-TTY stderr (CI logs, redirects) there is no cursor addressing:
the dashboard degrades to a plain one-line progress summary every few
seconds, and progress lines keep printing normally.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

#: Seconds between frames (TTY) and summary lines (non-TTY).
FRAME_INTERVAL = 0.25
PLAIN_INTERVAL = 5.0

#: Progress-bar width in characters.
BAR_WIDTH = 30

#: Log-pane height (newest emitter lines shown).
LOG_LINES = 5

_CSI = "\x1b["


def _fmt_secs(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _bar(done: int, total: int, width: int = BAR_WIDTH) -> str:
    if total <= 0:
        return "-" * width
    filled = int(width * min(done, total) / total)
    return "#" * filled + "-" * (width - filled)


def _counter(metrics: Dict[str, Any], name: str) -> int:
    entry = metrics.get(name) or {}
    try:
        return int(entry.get("value", 0))
    except (TypeError, ValueError):
        return 0


class Dashboard:
    """Live terminal view over one telemetry hub."""

    def __init__(self, telemetry, stream=None) -> None:
        self.telemetry = telemetry
        self.stream = stream if stream is not None else sys.stderr
        self.tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.interval = FRAME_INTERVAL if self.tty else PLAIN_INTERVAL
        self._open = False
        self._last_frame = -float("inf")
        self._height = 0  # lines of the previous frame to overwrite

    # -- lifecycle ------------------------------------------------------
    def open(self) -> None:
        if self._open:
            return
        self._open = True
        self._height = 0
        self._last_frame = -float("inf")
        if self.tty and self.telemetry.progress_emitter is not None:
            # Capture progress lines into the frame's log pane; the
            # emitter already records them, so the sink just redraws.
            self.telemetry.progress_emitter.sink = self._on_line
        self.tick(force=True)

    def close(self) -> None:
        if not self._open:
            return
        self.tick(force=True)
        self._open = False
        emitter = self.telemetry.progress_emitter
        if emitter is not None and emitter.sink == self._on_line:
            emitter.sink = None
        if self.tty and self._height:
            # Leave the final frame on screen; subsequent output starts
            # below it.
            self.stream.write("\n")
            self.stream.flush()
        self._height = 0

    def _on_line(self, line: str, kind: str) -> None:
        # The emitter has already recorded the line; refresh the frame so
        # it appears in the log pane promptly.
        self.tick()

    # -- rendering ------------------------------------------------------
    def tick(self, force: bool = False) -> None:
        if not self._open:
            return
        now = time.monotonic()
        if not force and now - self._last_frame < self.interval:
            return
        self._last_frame = now
        snap = self.telemetry.snapshot(include_series=False)
        if self.tty:
            self._render_frame(snap)
        else:
            self._render_plain(snap)

    def _render_plain(self, snap: Dict[str, Any]) -> None:
        progress = snap["progress"]
        busy = sum(1 for w in snap["workers"] if w["state"] == "busy")
        self.stream.write(
            f"[sweep:{snap['label']}] watch: "
            f"{progress['done']}/{progress['total']} done, "
            f"{busy} busy, elapsed {_fmt_secs(progress['elapsed'])}, "
            f"eta {_fmt_secs(progress['eta'])}\n"
        )
        self.stream.flush()

    def _frame_lines(self, snap: Dict[str, Any]) -> List[str]:
        progress = snap["progress"]
        metrics = snap["metrics"]
        total = progress["total"]
        done = progress["done"]
        pct = f"{100.0 * done / total:5.1f}%" if total else "   --"
        lines = [
            f"sweep:{snap['label']}  "
            f"[{_bar(done, total)}] {done}/{total} {pct}  "
            f"elapsed {_fmt_secs(progress['elapsed'])}  "
            f"eta {_fmt_secs(progress['eta'])}",
            "ok {ok}  failed {failed}  retries {retries}  "
            "timeouts {timeouts}  cached {cached}  stragglers {strag}".format(
                ok=_counter(metrics, "sweep_runs_finished_total"),
                failed=_counter(metrics, "sweep_failures_total"),
                retries=_counter(metrics, "sweep_retries_total"),
                timeouts=_counter(metrics, "sweep_timeouts_total"),
                cached=_counter(metrics, "sweep_cache_hits_total")
                + _counter(metrics, "sweep_resumed_total"),
                strag=snap["stragglers"],
            ),
        ]
        if _counter(metrics, "dispatch_frames_total"):
            lines.append(
                "dispatch: frames {frames:.0f}  deltas {deltas:.0f}  "
                "spec B {bytes:.0f} (saved {saved:.0f})  "
                "batched {batched:.0f}".format(
                    frames=_counter(metrics, "dispatch_frames_total"),
                    deltas=_counter(metrics, "dispatch_deltas_total"),
                    bytes=_counter(metrics, "dispatch_spec_bytes_total"),
                    saved=_counter(metrics, "dispatch_bytes_saved_total"),
                    batched=_counter(
                        metrics, "dispatch_roundtrips_saved_total"
                    ),
                )
            )
        lines.append(
            f"{'id':>3} {'pid':>7} {'state':<6} {'run':<12} "
            f"{'att':>3} {'w':>3} {'elapsed':>8} {'hb age':>7}  flag"
        )
        for worker in snap["workers"]:
            key = (worker["key"] or "")[:12]
            age = worker["heartbeat_age"]
            flag = "STRAGGLER" if worker["straggler"] else ""
            lines.append(
                f"{worker['ident']:>3} {worker['pid'] or '-':>7} "
                f"{worker['state']:<6} {key:<12} "
                f"{worker['attempt']:>3} {worker['width']:>3} "
                f"{_fmt_secs(worker['elapsed']):>8} "
                f"{_fmt_secs(age) if age is not None else '--':>7}  {flag}"
            )
        if not snap["workers"]:
            lines.append("  (no workers yet)")
        lines.append("-" * 72)
        log = snap["log"][-LOG_LINES:]
        for entry in log:
            lines.append(entry["line"][:110])
        lines.extend([""] * (LOG_LINES - len(log)))
        return lines

    def _render_frame(self, snap: Dict[str, Any]) -> None:
        lines = self._frame_lines(snap)
        out = []
        if self._height:
            out.append(f"{_CSI}{self._height}F")  # up to the frame top
        for line in lines:
            out.append(f"{_CSI}2K{line}\n")  # clear the old line, redraw
        if self._height > len(lines):
            # Previous frame was taller: blank the leftovers, come back.
            extra = self._height - len(lines)
            out.append(f"{_CSI}2K\n" * extra)
            out.append(f"{_CSI}{extra}F")
        self._height = len(lines)
        self.stream.write("".join(out))
        self.stream.flush()


__all__ = ["Dashboard", "FRAME_INTERVAL", "PLAIN_INTERVAL"]
