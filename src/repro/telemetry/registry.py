"""The metrics registry — counters, gauges and histograms for sweeps.

Mirrors the :mod:`repro.trace` contract (see ``docs/observability.md``):

* **Zero overhead when off.**  The default registry is the shared
  :data:`NULL_REGISTRY` whose ``enabled`` flag is ``False``; instrumented
  sites guard metric updates behind that flag (or hold the shared no-op
  metric objects, whose methods discard), so an un-metered run pays one
  attribute read per site.  CI gates this on the ``runtime_task``
  micro-bench exactly like the tracer gate.
* **Bit-identity.**  Metrics are write-only observation: recording never
  consumes randomness and never schedules simulation events, so results
  are byte-identical with the registry on or off (property-tested in
  ``tests/test_telemetry.py``).

Process model: each process owns its registry (no shared memory, no
locks on the hot path).  Sweep worker processes record into a private
registry installed per run and ship its :meth:`MetricsRegistry.snapshot`
back over the existing result pipe; the parent folds worker snapshots
into its own registry with :meth:`MetricsRegistry.merge`.  That is the
whole process-safety story — snapshots are plain JSON data, merging is
commutative for counters and histograms, and nothing ever blocks a
worker.

Metric types:

:class:`Counter`
    Monotone float; ``inc(amount)``.
:class:`Gauge`
    Last-written float; ``set``/``inc``/``dec``.  Time series of gauges
    come from the periodic ``metrics.jsonl`` snapshots, not the gauge
    itself.
:class:`Histogram`
    Fixed upper-bound buckets (Prometheus ``le`` semantics: a value lands
    in the first bucket whose bound is >= it) plus a bounded ring-buffer
    time series of the newest raw observations — the data behind the
    dashboard/report sparklines.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds, in seconds (sweep runs span
#: milliseconds for cached tiny cells to minutes for paper-scale ones).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    120.0, 300.0,
)

#: Ring-buffer capacity of each histogram's raw-observation time series.
DEFAULT_SERIES_CAPACITY = 512


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A value that can go up and down; last write wins."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Fixed-bucket distribution plus a ring buffer of raw observations.

    ``counts[i]`` is the number of observations ``v`` with
    ``buckets[i-1] < v <= buckets[i]`` (non-cumulative storage; the
    Prometheus exporter cumulates on render), with one implicit ``+Inf``
    overflow bucket at the end.  ``series`` keeps the newest
    ``capacity`` ``(t, value)`` pairs for sparklines, where ``t`` is the
    registry clock at observation time.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count",
                 "series", "_clock")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        capacity: int = DEFAULT_SERIES_CAPACITY,
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name} buckets must be a strictly increasing "
                f"non-empty sequence, got {buckets!r}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0
        self.series: deque = deque(maxlen=int(capacity))
        self._clock = clock

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        self.series.append((self._clock(), float(value)))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "series": [[t, v] for t, v in self.series],
        }


class _NullMetric:
    """Shared do-nothing metric handed out by the null registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A process-local, insertion-ordered collection of named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent,
    type-checked); :meth:`snapshot` returns JSON-ready plain data and
    :meth:`merge` folds another process's snapshot in.  The registry
    clock stamps histogram series relative to the registry's creation,
    so sparklines line up with the sweep's own elapsed time.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._t0 = time.monotonic()

    # -- clock ----------------------------------------------------------
    def clock(self) -> float:
        """Seconds since this registry was created."""
        return time.monotonic() - self._t0

    # -- metric construction --------------------------------------------
    def _get(self, name: str, kind: str, factory: Callable[[], Any]):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if metric.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        capacity: int = DEFAULT_SERIES_CAPACITY,
    ) -> Histogram:
        return self._get(
            name,
            "histogram",
            lambda: Histogram(name, help, buckets, capacity, self.clock),
        )

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready view of every metric, in registration order."""
        return {name: m.as_dict() for name, m in self._metrics.items()}

    # -- cross-process folding ------------------------------------------
    def merge(self, snapshot: Optional[Dict[str, Dict[str, Any]]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram bucket counts/sums add; gauges take the
        incoming value (last write wins); histogram series entries are
        re-stamped onto *this* registry's clock (the origin clocks are
        not comparable across processes).  Unknown metric shapes are
        ignored rather than crashing the sweep — telemetry must never
        take a run down.
        """
        if not snapshot:
            return
        for name, entry in snapshot.items():
            if not isinstance(entry, dict):
                continue
            kind = entry.get("type")
            if kind not in _KINDS:
                continue
            help_text = entry.get("help", "")
            if kind == "counter":
                self.counter(name, help_text).inc(float(entry.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name, help_text).set(float(entry.get("value", 0.0)))
            else:
                self._merge_histogram(name, help_text, entry)

    def _merge_histogram(
        self, name: str, help_text: str, entry: Dict[str, Any]
    ) -> None:
        buckets = entry.get("buckets") or list(DEFAULT_BUCKETS)
        hist = self.histogram(name, help_text, buckets=buckets)
        counts = entry.get("counts")
        if list(hist.buckets) != [float(b) for b in buckets] or not isinstance(
            counts, list
        ) or len(counts) != len(hist.counts):
            return  # incompatible shape: drop rather than corrupt
        for i, n in enumerate(counts):
            hist.counts[i] += int(n)
        hist.sum += float(entry.get("sum", 0.0))
        hist.count += int(entry.get("count", 0))
        now = self.clock()
        for item in entry.get("series") or []:
            try:
                hist.series.append((now, float(item[1])))
            except (TypeError, ValueError, IndexError):
                continue

    def reset(self) -> None:
        self._metrics.clear()
        self._t0 = time.monotonic()


class NullRegistry(MetricsRegistry):
    """The default registry: records nothing, costs (almost) nothing."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullMetric:  # type: ignore[override]
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:  # type: ignore[override]
        return _NULL_METRIC

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS,  # type: ignore[override]
                  capacity=DEFAULT_SERIES_CAPACITY) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def merge(self, snapshot) -> None:
        pass


#: Shared disabled registry; components default to this instance.
NULL_REGISTRY = NullRegistry()

#: The process-wide current registry (see :func:`install`).  Components
#: that cannot be handed a registry explicitly — the simulated runtime's
#: fault-recovery paths — read this at construction time.
_current: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide current registry (default: :data:`NULL_REGISTRY`)."""
    return _current


def install(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Set the process-wide registry; returns the previous one.

    ``None`` restores :data:`NULL_REGISTRY`.  Sweep worker processes
    install a fresh enabled registry per metered run and restore the
    null registry afterwards, so metrics can never leak across runs.
    """
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SERIES_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "get_registry",
    "install",
]
