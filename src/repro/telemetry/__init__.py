"""Live sweep telemetry: metrics, heartbeats, dashboard, reports.

``repro.telemetry`` is the observability layer of the sweep/runtime tier
(PR 2's :mod:`repro.trace` covers the *inside* of one simulated run; this
package covers the machinery that executes many runs).  One
:class:`Telemetry` hub per sweep owns:

* a :class:`~repro.telemetry.registry.MetricsRegistry` (counters,
  gauges, histograms — zero-overhead-when-off, bit-identity preserved);
* a :class:`~repro.telemetry.heartbeat.WorkerTable` — the parent's live
  model of every pool worker, fed by heartbeat messages multiplexed over
  the existing result pipes;
* the structured :class:`~repro.telemetry.progress.ProgressEmitter`
  behind every ``[sweep:<label>]`` line;
* one **snapshot API** (:meth:`Telemetry.snapshot`) that both
  front-ends consume: the ``--watch`` terminal dashboard
  (:mod:`repro.telemetry.dashboard`) and the post-run HTML report
  (:mod:`repro.telemetry.report`);
* periodic ``metrics.jsonl`` snapshot lines plus a final
  ``metrics.prom`` Prometheus exposition, written next to
  ``manifest.json`` so CI can trend them.

See ``docs/observability.md`` ("Live sweep telemetry") for the metric
name catalogue and usage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.telemetry.heartbeat import (
    DEFAULT_INTERVAL,
    HEARTBEAT_TAG,
    HeartbeatSender,
    WorkerTable,
    WorkerView,
    straggler_after,
)
from repro.telemetry.progress import ProgressEmitter
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    install,
)

#: File names written next to ``manifest.json`` when telemetry is on.
METRICS_JSONL = "metrics.jsonl"
METRICS_PROM = "metrics.prom"


def _strip_series(metrics: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """A snapshot copy without histogram ring buffers (for periodic
    JSONL lines, which would otherwise re-serialize the full series
    every flush — the final snapshot keeps them)."""
    out: Dict[str, Any] = {}
    for name, entry in metrics.items():
        if entry.get("type") == "histogram":
            entry = {k: v for k, v in entry.items() if k != "series"}
        out[name] = entry
    return out


class Telemetry:
    """One sweep's live telemetry: registry + workers + progress + files.

    Parameters
    ----------
    label:
        Sweep label (figure name) stamped into snapshots.
    enabled:
        Master switch.  Off (default): the registry is the shared
        :data:`~repro.telemetry.registry.NULL_REGISTRY`, snapshots are
        skeletal and nothing is written — the zero-overhead contract.
    out_dir:
        When set (and enabled), periodic snapshots append to
        ``<out_dir>/metrics.jsonl`` and :meth:`finalize` writes
        ``<out_dir>/metrics.prom``.
    flush_interval:
        Minimum seconds between periodic JSONL snapshot lines.
    heartbeat_interval:
        Seconds between worker heartbeat messages (workers receive this
        with each assignment).
    """

    def __init__(
        self,
        label: str = "sweep",
        enabled: bool = False,
        out_dir: Optional[os.PathLike] = None,
        flush_interval: float = 1.0,
        heartbeat_interval: float = DEFAULT_INTERVAL,
    ) -> None:
        self.label = label
        self.enabled = enabled
        self.registry: MetricsRegistry = (
            MetricsRegistry() if enabled else NULL_REGISTRY
        )
        self.workers = WorkerTable()
        self.out_dir = Path(out_dir) if out_dir else None
        self.flush_interval = flush_interval
        self.heartbeat_interval = heartbeat_interval
        #: Bound by the sweep runner so snapshots can carry recent lines.
        self.progress_emitter: Optional[ProgressEmitter] = None
        self.total = 0
        self.done = 0
        self.eta: Optional[float] = None
        self._t0 = time.monotonic()
        self._last_flush = -float("inf")
        self._flushed_lines = 0

    # -- progress -------------------------------------------------------
    def now(self) -> float:
        return time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def set_progress(
        self, total: int, done: int, eta: Optional[float] = None
    ) -> None:
        self.total = total
        self.done = done
        self.eta = eta

    # -- snapshot API ---------------------------------------------------
    def snapshot(self, include_series: bool = True) -> Dict[str, Any]:
        """JSON-ready view of the whole sweep at this instant.

        The single source both front-ends read: progress counts and ETA,
        per-worker rows (state, current spec, attempt, wall time,
        heartbeat age, straggler flag), straggler total, recent progress
        lines, and the full metrics registry.
        """
        now = time.monotonic()
        metrics = self.registry.snapshot()
        if not include_series:
            metrics = _strip_series(metrics)
        emitter = self.progress_emitter
        return {
            "t": round(now - self._t0, 6),
            "label": self.label,
            "progress": {
                "total": self.total,
                "done": self.done,
                "eta": self.eta,
                "elapsed": round(now - self._t0, 6),
            },
            "workers": self.workers.snapshot(now),
            "stragglers": self.workers.stragglers_flagged,
            "log": [
                {"t": round(t, 3), "kind": kind, "line": line}
                for t, kind, line in (emitter.tail(5) if emitter else [])
            ],
            "metrics": metrics,
        }

    # -- persistence ----------------------------------------------------
    def flush(self, force: bool = False) -> bool:
        """Append a snapshot line to ``metrics.jsonl`` (throttled)."""
        if not self.enabled or self.out_dir is None:
            return False
        now = time.monotonic()
        if not force and now - self._last_flush < self.flush_interval:
            return False
        self._last_flush = now
        self.out_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            self.snapshot(include_series=force), sort_keys=True
        )
        with open(
            self.out_dir / METRICS_JSONL, "a", encoding="utf-8"
        ) as fh:
            fh.write(line + "\n")
        self._flushed_lines += 1
        return True

    def begin(self) -> None:
        """Start-of-sweep: truncate any stale snapshot stream."""
        if not self.enabled or self.out_dir is None:
            return
        self.out_dir.mkdir(parents=True, exist_ok=True)
        try:
            (self.out_dir / METRICS_JSONL).unlink()
        except OSError:
            pass
        self._flushed_lines = 0

    def finalize(self) -> None:
        """End-of-sweep: final JSONL snapshot + Prometheus exposition."""
        if not self.enabled or self.out_dir is None:
            return
        from repro.telemetry.prom import write_prometheus

        self.flush(force=True)
        write_prometheus(
            self.out_dir / METRICS_PROM, self.registry.snapshot()
        )


#: Shared disabled hub — the default for runners constructed without
#: telemetry, so call sites never need a None check.
NULL_TELEMETRY = Telemetry(enabled=False)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_INTERVAL",
    "Gauge",
    "HEARTBEAT_TAG",
    "HeartbeatSender",
    "Histogram",
    "METRICS_JSONL",
    "METRICS_PROM",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NullRegistry",
    "ProgressEmitter",
    "Telemetry",
    "WorkerTable",
    "WorkerView",
    "get_registry",
    "install",
    "straggler_after",
]
