"""Prometheus text-format exposition of a metrics snapshot.

:func:`render_prometheus` turns a
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` into the
Prometheus `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP`` / ``# TYPE`` headers, ``<name>_total`` counters, gauges, and
cumulative ``le``-labelled histogram buckets with ``_sum``/``_count``.
Sweeps write the rendered text as ``metrics.prom`` next to
``manifest.json``; point a Prometheus *textfile collector* (or any CI
trend script) at it.  No client library involved — the format is
hand-rolled and pinned by a golden file in ``tests/test_telemetry.py``.

``python -m repro.telemetry.prom <file.prom>`` validates a file against
the format (CI's telemetry-smoke job runs this on real sweep output).
"""

from __future__ import annotations

import math
import os
import re
import sys
from typing import Any, Dict, List, Optional

#: Every exported metric name is prefixed with this namespace.
PREFIX = "repro_"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LINE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$"
)


def _fmt(value: float) -> str:
    """Prometheus value formatting: integral floats print as integers."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def render_prometheus(
    snapshot: Dict[str, Dict[str, Any]], prefix: str = PREFIX
) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    Metrics render in snapshot (registration) order.  Counter names gain
    a ``_total`` suffix unless they already carry one; histogram buckets
    are cumulated and closed with the mandatory ``+Inf`` bucket.
    """
    lines: List[str] = []
    for raw_name, entry in (snapshot or {}).items():
        kind = entry.get("type")
        name = prefix + _sanitize(raw_name)
        help_text = str(entry.get("help", "")).replace("\n", " ")
        if kind == "counter":
            if not name.endswith("_total"):
                name += "_total"
            lines.append(f"# HELP {name} {help_text}".rstrip())
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(float(entry.get('value', 0.0)))}")
        elif kind == "gauge":
            lines.append(f"# HELP {name} {help_text}".rstrip())
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(float(entry.get('value', 0.0)))}")
        elif kind == "histogram":
            lines.append(f"# HELP {name} {help_text}".rstrip())
            lines.append(f"# TYPE {name} histogram")
            buckets = entry.get("buckets") or []
            counts = entry.get("counts") or []
            running = 0
            for bound, count in zip(buckets, counts):
                running += int(count)
                lines.append(
                    f'{name}_bucket{{le="{_fmt(float(bound))}"}} {running}'
                )
            total = int(entry.get("count", 0))
            lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{name}_sum {_fmt(float(entry.get('sum', 0.0)))}")
            lines.append(f"{name}_count {total}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    path: os.PathLike, snapshot: Dict[str, Dict[str, Any]],
    prefix: str = PREFIX,
) -> str:
    """Atomically write the exposition text to ``path``; returns it."""
    text = render_prometheus(snapshot, prefix)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)
    return text


def validate_exposition(text: str) -> List[str]:
    """Problems with a Prometheus text exposition (empty list = valid).

    Checks line syntax, that every sample is preceded by a matching
    ``# TYPE``, that histogram buckets are cumulative and end with
    ``+Inf == _count``, and that counters never carry a negative value.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    hist_last: Dict[str, float] = {}
    hist_inf: Dict[str, Optional[float]] = {}
    hist_count: Dict[str, Optional[float]] = {}
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {i}: malformed TYPE line: {line!r}")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {i}: unknown comment: {line!r}")
            continue
        match = _LINE_RE.match(line)
        if not match:
            problems.append(f"line {i}: malformed sample: {line!r}")
            continue
        name, labels, value_text = match.groups()
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        base = re.sub(r"_(total|bucket|sum|count)$", "", name)
        declared = types.get(name) or types.get(base)
        if declared is None:
            problems.append(f"line {i}: sample {name} has no TYPE header")
            continue
        if declared == "counter" and value < 0:
            problems.append(f"line {i}: counter {name} is negative")
        if name.endswith("_bucket") and declared == "histogram":
            if value < hist_last.get(base, 0.0):
                problems.append(
                    f"line {i}: histogram {base} buckets not cumulative"
                )
            hist_last[base] = value
            if labels and 'le="+Inf"' in labels:
                hist_inf[base] = value
        if name.endswith("_count") and declared == "histogram":
            hist_count[base] = value
    for base, count in hist_count.items():
        inf = hist_inf.get(base)
        if inf is None:
            problems.append(f"histogram {base} is missing its +Inf bucket")
        elif count is not None and inf != count:
            problems.append(
                f"histogram {base}: +Inf bucket {inf:g} != _count {count:g}"
            )
    return problems


def main(argv=None) -> int:
    """Validate one or more ``.prom`` files; exit 0 iff all are valid."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or any(a in ("-h", "--help") for a in args):
        print(
            "usage: python -m repro.telemetry.prom <metrics.prom> [...]\n"
            "Validates Prometheus text-exposition files written by sweeps.",
            file=sys.stderr,
        )
        return 0 if args else 2
    status = 0
    for path in args:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 1
            continue
        problems = validate_exposition(text)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            samples = sum(
                1
                for line in text.splitlines()
                if line.strip() and not line.startswith("#")
            )
            print(f"{path}: OK ({samples} samples)")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "PREFIX",
    "main",
    "render_prometheus",
    "validate_exposition",
    "write_prometheus",
]
