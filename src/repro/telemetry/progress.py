"""The structured sweep progress stream.

Every human-readable ``[sweep:<label>] ...`` line the sweep engine used
to print ad hoc now flows through one :class:`ProgressEmitter`.  Plain
mode prints the exact same lines to stderr; ``--watch`` mode installs
the dashboard as a *sink* so the lines land in its log pane instead of
tearing the ANSI frame — one source of truth, so the two modes cannot
drift.  The emitter also keeps a bounded history of recent lines, which
the dashboard and the telemetry snapshot expose.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

#: Progress line kinds (free-form, but these are the ones emitted today).
KINDS = ("info", "straggler", "retry", "fail", "done")


class ProgressEmitter:
    """Formats, records and routes ``[sweep:<label>]`` progress lines.

    Parameters
    ----------
    label:
        Sweep label interpolated into every line.
    enabled:
        When False (and no sink is installed) lines are recorded but not
        printed — the historical ``progress=False`` behaviour.
    stream:
        Destination for printed lines (default ``sys.stderr``).
    keep:
        Bounded history length.
    """

    def __init__(
        self,
        label: str,
        enabled: bool = True,
        stream=None,
        keep: int = 50,
    ) -> None:
        self.label = label
        self.enabled = enabled
        self.stream = stream
        #: When set, lines are handed to this callable instead of being
        #: printed (the dashboard installs itself here).
        self.sink: Optional[Callable[[str, str], None]] = None
        self.recent: Deque[Tuple[float, str, str]] = deque(maxlen=keep)
        self._t0 = time.monotonic()

    def emit(self, message: str, kind: str = "info") -> None:
        line = f"[sweep:{self.label}] {message}"
        self.recent.append((time.monotonic() - self._t0, kind, line))
        if self.sink is not None:
            self.sink(line, kind)
        elif self.enabled:
            print(line, file=self.stream or sys.stderr, flush=True)

    def tail(self, n: int = 8) -> List[Tuple[float, str, str]]:
        """The newest ``n`` ``(t, kind, line)`` entries, oldest first."""
        if n <= 0:
            return []
        return list(self.recent)[-n:]


__all__ = ["KINDS", "ProgressEmitter"]
