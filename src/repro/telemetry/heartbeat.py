"""Worker heartbeats and the parent's live model of the pool.

The supervised sweep pool (see :mod:`repro.sweep.engine`) talks to each
worker over one pipe.  When telemetry is on, the worker additionally
starts a :class:`HeartbeatSender` — a daemon thread that sends a small
``(HEARTBEAT_TAG, key, elapsed)`` message every ``interval`` seconds
while the (blocking, single-threaded) run executes, sharing the pipe
under a lock with the result message.  The parent folds those messages
into a :class:`WorkerTable`: one :class:`WorkerView` per worker holding
its state, current spec, attempt number, wall time and heartbeat age —
the live model behind the ``--watch`` dashboard.

**Heartbeats are diagnostic, never disciplinary.**  A worker whose run
is slow — or whose heartbeats stop arriving because the run is stuck in
a C extension holding the GIL — is flagged as a *straggler* and surfaced
on the dashboard/progress stream, but it is only ever killed by the
per-run wall-clock ``timeout``; heartbeat age neither shortens nor
extends that deadline (regression-tested in
``tests/test_sweep_robustness.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: First element of a heartbeat message on the worker result pipe.
HEARTBEAT_TAG = "hb"

#: Default seconds between worker heartbeats.
DEFAULT_INTERVAL = 0.25

#: A busy run is a straggler once its elapsed wall time exceeds this
#: multiple of the cost model's prediction for its spec...
STRAGGLER_FACTOR = 3.0

#: ...or this fraction of the per-run timeout, whichever bound is known
#: and smaller.  With neither a prediction nor a timeout there is no
#: yardstick, and nothing is flagged.
STRAGGLER_TIMEOUT_FRACTION = 0.5

#: A worker whose last heartbeat is older than this many intervals is
#: shown as ``stalled`` (still alive as far as the OS knows — possibly
#: GIL-bound — and still subject only to the run timeout).
STALL_INTERVALS = 4.0


def straggler_after(
    expected: Optional[float], timeout: Optional[float]
) -> Optional[float]:
    """Elapsed seconds after which a busy run counts as a straggler."""
    bounds = []
    if expected is not None and expected > 0:
        bounds.append(STRAGGLER_FACTOR * expected)
    if timeout is not None and timeout > 0:
        bounds.append(STRAGGLER_TIMEOUT_FRACTION * timeout)
    return min(bounds) if bounds else None


class HeartbeatSender:
    """Worker-side daemon thread: periodic progress pings over the pipe.

    ``send`` is the (already lock-guarded) pipe send callable.  Use as a
    context manager around the blocking run; exceptions from a closed
    pipe are swallowed — the parent observing the dead pipe is the real
    signal.
    """

    def __init__(
        self, send: Callable[[Any], None], key: str, interval: float
    ) -> None:
        self._send = send
        self._key = key
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._started = time.monotonic()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._send(
                    (HEARTBEAT_TAG, self._key,
                     time.monotonic() - self._started)
                )
            except (OSError, BrokenPipeError, ValueError):
                return

    def __enter__(self) -> "HeartbeatSender":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


@dataclass
class WorkerView:
    """Parent-side live state of one pool worker."""

    ident: int
    pid: Optional[int] = None
    state: str = "idle"  # idle | busy | retired
    key: Optional[str] = None
    label: str = ""
    attempt: int = 0
    width: int = 1
    started: float = 0.0
    last_heartbeat: float = 0.0
    expected: Optional[float] = None
    straggler: bool = False
    runs_done: int = 0
    heartbeats: int = 0

    def elapsed(self, now: float) -> float:
        return (now - self.started) if self.state == "busy" else 0.0

    def heartbeat_age(self, now: float) -> Optional[float]:
        if self.state != "busy" or not self.heartbeats:
            return None
        return now - self.last_heartbeat

    def as_dict(self, now: float) -> Dict[str, Any]:
        return {
            "ident": self.ident,
            "pid": self.pid,
            "state": self.state,
            "key": self.key,
            "label": self.label,
            "attempt": self.attempt,
            "width": self.width,
            "elapsed": self.elapsed(now),
            "heartbeat_age": self.heartbeat_age(now),
            "expected": self.expected,
            "straggler": self.straggler,
            "runs_done": self.runs_done,
        }


class WorkerTable:
    """Every worker the sweep has spawned, keyed by a stable ident."""

    def __init__(self) -> None:
        self._views: Dict[int, WorkerView] = {}
        self._next_ident = 0
        self.stragglers_flagged = 0

    def spawn(self, pid: Optional[int]) -> int:
        """Register a new worker process; returns its ident."""
        ident = self._next_ident
        self._next_ident += 1
        self._views[ident] = WorkerView(ident=ident, pid=pid)
        return ident

    def inline(self) -> int:
        """The single pseudo-worker of an in-process (jobs=1) sweep."""
        if 0 not in self._views:
            self._views[0] = WorkerView(ident=0, pid=None)
            self._next_ident = max(self._next_ident, 1)
        return 0

    def view(self, ident: int) -> WorkerView:
        return self._views[ident]

    def assign(
        self,
        ident: int,
        key: str,
        label: str,
        attempt: int,
        width: int,
        now: float,
        expected: Optional[float] = None,
    ) -> None:
        view = self._views[ident]
        view.state = "busy"
        view.key = key
        view.label = label
        view.attempt = attempt
        view.width = width
        view.started = now
        view.last_heartbeat = now
        view.expected = expected
        view.straggler = False
        view.heartbeats = 0

    def heartbeat(self, ident: int, now: float) -> None:
        view = self._views.get(ident)
        if view is not None and view.state == "busy":
            view.last_heartbeat = now
            view.heartbeats += 1

    def finish(self, ident: int) -> None:
        view = self._views.get(ident)
        if view is None:
            return
        view.state = "idle"
        view.key = None
        view.label = ""
        view.straggler = False
        view.runs_done += 1

    def retire(self, ident: int) -> None:
        view = self._views.get(ident)
        if view is not None:
            view.state = "retired"
            view.key = None
            view.straggler = False

    def check_stragglers(
        self, now: float, timeout: Optional[float] = None
    ) -> List[WorkerView]:
        """Newly-detected stragglers: busy past their expected envelope.

        Purely observational — callers report these (progress line,
        counter, dashboard flag); nothing here ever kills a worker.
        """
        fresh: List[WorkerView] = []
        for view in self._views.values():
            if view.state != "busy" or view.straggler:
                continue
            limit = straggler_after(view.expected, timeout)
            if limit is not None and view.elapsed(now) > limit * view.width:
                view.straggler = True
                self.stragglers_flagged += 1
                fresh.append(view)
        return fresh

    def busy(self) -> int:
        return sum(1 for v in self._views.values() if v.state == "busy")

    def live(self) -> int:
        return sum(1 for v in self._views.values() if v.state != "retired")

    def snapshot(self, now: float) -> List[Dict[str, Any]]:
        """JSON-ready per-worker rows (retired workers excluded)."""
        return [
            view.as_dict(now)
            for view in self._views.values()
            if view.state != "retired"
        ]


__all__ = [
    "DEFAULT_INTERVAL",
    "HEARTBEAT_TAG",
    "HeartbeatSender",
    "STALL_INTERVALS",
    "STRAGGLER_FACTOR",
    "STRAGGLER_TIMEOUT_FRACTION",
    "WorkerTable",
    "WorkerView",
    "straggler_after",
]
