"""Lockstep batch driver: co-advance N replicate simulations.

:func:`repro.core.batched.execute_batch` historically ran each replicate's
event queue *to completion in turn*; this module replaces that inner loop
with a driver that owns every replicate's event calendar at once and
advances them as one merged wavefront.  Each run keeps its own
environment, RNG streams, event order and tie-breaking — bit-identity
with the scalar path is non-negotiable and property-tested — but the
cross-run *homogeneous* work batches into numpy passes:

* **Placement decisions.**  A policy whose high-priority placement is a
  pure function of the task type's PTT row declares it via
  :meth:`~repro.core.policies.base.SchedulerPolicy.batched_query`.  The
  worker loop then *parks* the decision: it yields a fresh gate event and
  suspends exactly where the scalar search would have run.  The driver
  collects all parked decisions of one ``(scan kind, task type)`` across
  runs and answers them with one runs-axis argmin
  (:func:`~repro.core.placement.batched_scan_cost` /
  :func:`~repro.core.placement.batched_scan_performance`) over the
  stacked PTT matrix, then resumes each worker with its (bit-identical)
  place via :meth:`~repro.sim.events.Event.trigger_direct`.
* **PTT folds.**  Fold-eligible task commits park on the driver the same
  way; one :meth:`~repro.core.batched.BatchedPttStore.update_slot_runs`
  call applies every run's fold as a single masked vector op before the
  commits' tails (:meth:`~repro.runtime.executor.SimulatedRuntime._commit_tail`)
  run.
* **Lean records.**  When the batch's metric demands are covered by
  :data:`repro.sweep.registry.RECORD_FREE_METRICS` the runtimes skip all
  per-task record keeping (TaskRecord construction, collector
  accounting, ready-time bookkeeping) — none of it can influence the
  simulation or the extracted metrics.
* **Batched drain.**  Metrics are extracted for all runs after the last
  one finishes, against the shared extractor table.

Parking protocol
----------------
A run parks by setting its ``pending`` slot from inside an event
callback; the driver's advance loop checks the slot after *every*
callback and, on a park, stashes ``(event, remaining callbacks, index)``
so the interrupted event resumes exactly where it stopped once the
answer is delivered.  Decisions are delivered by triggering the parked
gate in place (no heap round-trip — the resume runs at the same sim
time, in the same heap slot, as the scalar search's return would have);
commit tails are plain method calls.  A resumed worker may immediately
park again (its next decision); the stashed continuation survives until
the run truly drains the event.

Every run is error-isolated: a replicate that raises (deadlock,
max-time, a broken workload) resolves to its own error payload and never
aborts its batchmates, mirroring the scalar engine's capture.

Knobs (read once per batch, all default to the measured-best setting):

* ``REPRO_LOCKSTEP=0`` — disable the driver entirely; ``execute_batch``
  falls back to the legacy run-to-completion-in-turn loop.
* ``REPRO_LOCKSTEP_DECISIONS=on|off|auto`` — decision parking.  ``auto``
  (default) enables it only on machines with at least
  :data:`DECISIONS_AUTO_MIN_PLACES` execution places: parking costs one
  extra generator suspension per decision, which the batched argmin only
  repays when the scalar scan is wide.
* ``REPRO_LOCKSTEP_FOLDS=on|off|auto`` — fold parking.  ``auto``
  (default) requires at least :data:`FOLDS_AUTO_MIN_RUNS` replicates
  *and* a machine with at least :data:`DECISIONS_AUTO_MIN_PLACES`
  places.  One vector fold must beat N scalar folds plus the parking
  overhead, and on narrow tables (TX2: 10 slots) the scalar fold is so
  cheap that parking is a measured net loss regardless of batch width.
* ``REPRO_LOCKSTEP_LEAN=0`` — keep full record keeping even when the
  metric demands would allow lean mode (debugging aid).

See ``docs/performance.md`` ("Lockstep replicate execution") for the
measured effect of each knob.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import batched_scan_cost, batched_scan_performance
from repro.errors import RuntimeStateError, SchedulingError
from repro.sim.events import Event

#: ``REPRO_LOCKSTEP_DECISIONS=auto``: park decisions only on machines
#: with at least this many execution places.  Parking costs a generator
#: suspension, a driver round-trip, and a numpy fancy-index per
#: decision; measured on the bundled machines (TX2: 10 places,
#: haswell16: 30) that overhead exceeds the scalar scan it replaces, so
#: the auto gate stays closed below widths we have not measured a win
#: at.  Force ``REPRO_LOCKSTEP_DECISIONS=on`` to override.
DECISIONS_AUTO_MIN_PLACES = 64

#: ``REPRO_LOCKSTEP_FOLDS=auto``: park folds only in batches of at least
#: this many replicates (one vector fold must beat N scalar folds) and —
#: like decisions — only on machines of at least
#: :data:`DECISIONS_AUTO_MIN_PLACES` places, where the per-fold scalar
#: work the park replaces is wide enough to pay for the suspension.
FOLDS_AUTO_MIN_RUNS = 4

_FALSY = frozenset({"0", "false", "off", "no"})
_TRUTHY = frozenset({"1", "true", "on", "yes"})


def _flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _tri_state(name: str) -> Optional[bool]:
    """``True``/``False`` for an explicit on/off, ``None`` for auto."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip().lower()
    if raw in _FALSY:
        return False
    if raw in _TRUTHY:
        return True
    return None


def parking_wanted(machine, n_runs: int) -> Tuple[bool, bool]:
    """Resolve the (decisions, folds) parking knobs for a prospective batch.

    Shared by :func:`drive_runs` and the batch constructor: the stacked
    PTT store only needs to be wired into the policies when at least one
    parking mode can engage, and every scalar fold through a stacked
    row view pays a strided-write premium over the plain per-run table,
    so the constructor skips the swap entirely when both gates are
    closed.
    """
    decisions = _tri_state("REPRO_LOCKSTEP_DECISIONS")
    if decisions is None:
        decisions = len(machine.places) >= DECISIONS_AUTO_MIN_PLACES
    folds = _tri_state("REPRO_LOCKSTEP_FOLDS")
    if folds is None:
        folds = (
            n_runs >= FOLDS_AUTO_MIN_RUNS
            and len(machine.places) >= DECISIONS_AUTO_MIN_PLACES
        )
    return decisions, folds


def lockstep_enabled() -> bool:
    """Whether batches use the lockstep driver (``REPRO_LOCKSTEP``)."""
    return _flag("REPRO_LOCKSTEP", True)


class _RunState:
    """One replicate's co-advance state and its executor-facing hooks."""

    __slots__ = (
        "index", "spec", "rt", "env", "queue", "heap", "policy",
        "decisions", "folds", "deadline", "pending", "resume", "answer",
        "fold_done", "finished", "error",
    )

    def __init__(self, index, spec, runtime, decisions: bool, folds: bool):
        self.index = index
        self.spec = spec
        self.rt = runtime
        self.env = runtime.env
        self.queue = self.env._queue
        self.heap = self.queue._heap
        self.policy = runtime.scheduler
        #: Whether this run parks batchable placement decisions.
        self.decisions = decisions
        #: Whether this run parks fold-eligible commits (read by
        #: SimulatedRuntime._finish_assembly).
        self.folds = folds
        self.deadline = float("inf")
        #: The parked request: ("d", scan_kind, type_name, gate) or
        #: ("c", assembly, task, observed); None while advancing.
        self.pending = None
        #: (event, callbacks, next index) of the interrupted event.
        self.resume = None
        #: Batched decision answer awaiting delivery.
        self.answer = None
        #: Whether this round's batched fold covered this run's commit.
        self.fold_done = False
        self.finished = False
        self.error = None

    # -- hooks called from the worker generators -----------------------
    def decide(self, task, core):
        """Place for a WSQ dequeue — or a gate event parking it."""
        if self.decisions:
            query = self.policy.batched_query(task)
            if query is not None:
                gate = Event(self.env)
                self.pending = ("d", query[0], query[1], gate)
                return gate
        return self.policy.choose_place(task, core)

    def decide_steal(self, task, core):
        """Place after a steal — or a gate event parking the decision."""
        if self.decisions:
            query = self.policy.batched_query(task)
            if query is not None:
                gate = Event(self.env)
                self.pending = ("d", query[0], query[1], gate)
                return gate
        return self.policy.place_after_steal(task, core)

    def park_commit(self, assembly, task, observed) -> None:
        """Park a fold-eligible commit (called by _finish_assembly)."""
        self.pending = ("c", assembly, task, observed)
        self.fold_done = False


def _advance(rs: _RunState) -> None:
    """Run ``rs``'s event loop until it finishes or parks.

    This is ``SimulatedRuntime.run``'s inlined loop with one addition:
    after *every* callback the run's ``pending`` slot is checked, and a
    park stashes the interrupted event's remaining callbacks in
    ``rs.resume`` before returning.  Everything else — defunct-head
    drops, the deadlock and max-time errors, pooled-event recycling — is
    verbatim, so an un-parked run is bit-identical to a scalar one.
    """
    rt = rs.rt
    env = rs.env
    queue = rs.queue
    heap = rs.heap
    deadline = rs.deadline
    heappop = heapq.heappop
    if not rs.decisions and not rs.folds:
        # Parks only originate from decide()/park_commit(), and both are
        # gated on these flags — with neither set, ``pending`` can never
        # be written, so the per-callback check is dead weight.  Run the
        # scalar loop verbatim (it is measurable: the indexed callback
        # walk costs a few ms per batch at showcase sizes).
        while not rt._shutdown:
            if queue._defunct:
                queue._drop_defunct_head()
            try:
                item = heappop(heap)
            except IndexError:
                raise RuntimeStateError(
                    f"{rt.name}: deadlock — no pending events but "
                    f"{rt.graph.total_tasks - rt.graph.completed_tasks} "
                    "tasks remain"
                )
            env._now = item[0]
            event = item[3]
            event._seq = -1
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if event._pooled:
                queue._recycle(event)
            if env._now > deadline:
                raise RuntimeStateError(
                    f"{rt.name}: exceeded max_time={rt.config.max_time}"
                )
        rs.finished = True
        return
    while not rt._shutdown:
        if queue._defunct:
            queue._drop_defunct_head()
        try:
            item = heappop(heap)
        except IndexError:
            raise RuntimeStateError(
                f"{rt.name}: deadlock — no pending events but "
                f"{rt.graph.total_tasks - rt.graph.completed_tasks} "
                "tasks remain"
            )
        env._now = item[0]
        event = item[3]
        event._seq = -1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            i = 0
            n = len(callbacks)
            while i < n:
                callback = callbacks[i]
                i += 1
                callback(event)
                if rs.pending is not None:
                    rs.resume = (event, callbacks, i)
                    return
        if event._pooled:
            queue._recycle(event)
        if env._now > deadline:
            raise RuntimeStateError(
                f"{rt.name}: exceeded max_time={rt.config.max_time}"
            )
    rs.finished = True


def _finish_event(rs: _RunState) -> bool:
    """Drain the interrupted event stashed in ``rs.resume``.

    Runs the remaining callbacks (any of which may park again — the
    stash is then refreshed and ``False`` returned), then applies the
    loop's per-event epilogue (recycle, deadline check) exactly as
    :func:`_advance` would have.
    """
    event, callbacks, i = rs.resume
    rs.resume = None
    n = len(callbacks)
    while i < n:
        callback = callbacks[i]
        i += 1
        callback(event)
        if rs.pending is not None:
            rs.resume = (event, callbacks, i)
            return False
    if event._pooled:
        rs.queue._recycle(event)
    if rs.env._now > rs.deadline:
        raise RuntimeStateError(
            f"{rs.rt.name}: exceeded max_time={rs.rt.config.max_time}"
        )
    return True


def _deliver(rs: _RunState) -> None:
    """Deliver ``rs``'s answered request and re-advance the run."""
    pending = rs.pending
    rs.pending = None
    if pending[0] == "d":
        gate = pending[3]
        answer = rs.answer
        rs.answer = None
        # The resume runs here, inside the driver's current step — the
        # same sim time and heap position the scalar search's return
        # would have had.  The worker may park its next decision before
        # yielding a real event; the stashed continuation stays valid.
        gate.trigger_direct(answer)
    else:
        _tag, assembly, task, observed = pending
        if not rs.fold_done:
            # Not covered by the round's batched fold (e.g. a negative
            # observation the vector fold refuses): take the scalar
            # fold, which raises exactly what the scalar path would.
            rs.rt.scheduler.on_complete(task, assembly.place, observed)
        rs.rt._commit_tail(assembly, task, observed)
    if rs.pending is not None:
        return
    if _finish_event(rs):
        _advance(rs)


def _answer_decisions(ptt_stack, machine, kind, type_name, members) -> None:
    """Answer one decision group with a single runs-axis scan."""
    rows = np.asarray([rs.index for rs in members], dtype=np.intp)
    values_rows = ptt_stack.predict_all_runs(type_name)[rows]
    backlogs = [rs.rt._backlog for rs in members]
    if kind == "cost":
        places = batched_scan_cost(machine, values_rows, backlogs)
    elif kind == "perf":
        places = batched_scan_performance(machine, values_rows, None, backlogs)
    elif kind == "perf_w1":
        places = batched_scan_performance(
            machine, values_rows, machine._width_one_slots_list, backlogs
        )
    else:
        raise SchedulingError(f"unknown batched query kind {kind!r}")
    for rs, place in zip(members, places):
        rs.answer = place


def _apply_folds(ptt_stack, machine, type_name, members) -> None:
    """Fold one commit group as a single runs-axis vector update.

    The per-run Python-list mirrors of already-materialized tables are
    patched with the exact folded values, so the scalar fast-path
    searches keep reading state identical to the matrix.  Members whose
    observation the vector fold would reject (negative) are left to the
    scalar fold at delivery, preserving per-replicate error isolation.
    """
    folded = [rs for rs in members if rs.pending[3] >= 0]
    if not folded:
        return
    place_index = machine._place_index
    rows = [rs.index for rs in folded]
    slots = [place_index[rs.pending[1].place] for rs in folded]
    observed = [rs.pending[3] for rs in folded]
    new_values = ptt_stack.update_slot_runs(
        type_name, slots, observed, rows=rows
    )
    for rs, slot, value in zip(folded, slots, new_values):
        table = rs.policy.ptt._tables.get(type_name)
        if table is not None:
            table._values_list[slot] = float(value)
        rs.fold_done = True


def drive_runs(
    entries: Sequence[Tuple[int, Any, Any]], ptt_stack
) -> Dict[int, Dict[str, Any]]:
    """Co-advance built runtimes to completion; one payload per run.

    ``entries`` is a sequence of ``(run index, spec, runtime)`` whose
    runtimes were constructed (but not started) against shared batch
    state; ``run index`` addresses the run's row in ``ptt_stack`` (which
    may be ``None`` for model-free policies — no decisions or folds park
    then).  Returns ``{index: {"ok": metrics} | {"err": {...}}}``,
    mirroring the scalar engine's per-replicate capture.
    """
    from repro.core.policies.base import SchedulerPolicy
    from repro.sweep.registry import RECORD_FREE_METRICS, extract_metrics

    if not entries:
        return {}
    machine = entries[0][2].machine

    decisions_knob, folds_knob = parking_wanted(machine, len(entries))
    lean_knob = _flag("REPRO_LOCKSTEP_LEAN", True)

    states: List[_RunState] = []
    parked: List[_RunState] = []
    for index, spec, rt in entries:
        policy = rt.scheduler
        batchable_model = ptt_stack is not None and policy.ptt is not None
        folds = (
            folds_knob
            and batchable_model
            and policy.uses_ptt
            and type(policy).on_complete is SchedulerPolicy.on_complete
        )
        rs = _RunState(
            index, spec, rt,
            decisions=decisions_knob and batchable_model,
            folds=folds,
        )
        states.append(rs)
        lean = (
            lean_knob
            and set(spec.metrics) <= RECORD_FREE_METRICS
            and not rt._tracing
            and not rt._faults_enabled
            and not rt.on_task_commit
        )
        try:
            rt.arm_lockstep(rs, lean_records=lean)
            rt.start()
            rs.deadline = rt._start_time + rt.config.max_time
            _advance(rs)
        except Exception as exc:
            rs.error = {"type": type(exc).__name__, "message": str(exc)}
            rs.finished = True
        if not rs.finished and rs.pending is not None:
            parked.append(rs)

    while parked:
        # Merged-calendar wavefront: visit parked runs in ascending
        # simulated time (ties by run index).  Runs never read each
        # other's state, so this ordering is presentational — but it is
        # the order a single merged calendar would process the batch in.
        parked.sort(key=lambda rs: (rs.env._now, rs.index))
        decision_groups: Dict[tuple, List[_RunState]] = {}
        commit_groups: Dict[str, List[_RunState]] = {}
        for rs in parked:
            pending = rs.pending
            if pending[0] == "d":
                key = (pending[1], pending[2])
                decision_groups.setdefault(key, []).append(rs)
            else:
                commit_groups.setdefault(
                    pending[2].type_name, []
                ).append(rs)
        # Singleton groups go through the same batched kernels as wide
        # ones (rows of height 1): one answer path, no drift to chase.
        for (kind, type_name), members in decision_groups.items():
            _answer_decisions(ptt_stack, machine, kind, type_name, members)
        for type_name, members in commit_groups.items():
            _apply_folds(ptt_stack, machine, type_name, members)
        next_parked: List[_RunState] = []
        for rs in parked:
            try:
                _deliver(rs)
            except Exception as exc:
                rs.error = {
                    "type": type(exc).__name__, "message": str(exc)
                }
                rs.finished = True
            if not rs.finished and rs.pending is not None:
                next_parked.append(rs)
        parked = next_parked

    # Batched drain: extract every finished run's metrics in one pass.
    payloads: Dict[int, Dict[str, Any]] = {}
    for rs in states:
        if rs.error is not None:
            payloads[rs.index] = {"err": rs.error}
            continue
        try:
            result = rs.rt.result()
            metrics = extract_metrics(result, rs.spec.metrics)
        except Exception as exc:
            payloads[rs.index] = {
                "err": {"type": type(exc).__name__, "message": str(exc)}
            }
        else:
            payloads[rs.index] = {"ok": metrics}
    return payloads


__all__ = [
    "DECISIONS_AUTO_MIN_PLACES",
    "FOLDS_AUTO_MIN_RUNS",
    "drive_runs",
    "lockstep_enabled",
    "parking_wanted",
]
