"""Performance Trace Table (paper §4.1.1).

One PTT exists per *task type*.  It holds one entry per execution place
``(leader core, resource width)``, each tracking the execution time of that
task type at that place as observed by the leader core.  Entries start at
zero, which guarantees every place is evaluated at least once (a zero
predicted cost always wins the minimization).  Updates fold new samples with
a weighted average — by default ``updated = (4*old + new) / 5`` — so at
least three consistent measurements are needed before the table accepts a
new performance regime, making the model resilient to short isolated
events.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.topology import ExecutionPlace, Machine
from repro.trace.events import PttUpdateEvent
from repro.trace.tracer import NULL_TRACER, Tracer


class PerformanceTraceTable:
    """The per-task-type trace table.

    Parameters
    ----------
    machine:
        Supplies the legal execution places (the table's index space).
    new_weight / total_weight:
        The folding ratio: ``updated = ((total-new)*old + new*sample) /
        total``.  The paper's default is 1:4, i.e. ``new_weight=1,
        total_weight=5`` (written "1/5" in Fig. 8).
    tracer / label:
        An enabled tracer makes every :meth:`update` emit a
        :class:`~repro.trace.events.PttUpdateEvent` tagged with ``label``
        (the owning task type) — the raw data of PTT-convergence curves.
    """

    def __init__(
        self,
        machine: Machine,
        new_weight: int = 1,
        total_weight: int = 5,
        tracer: Tracer = NULL_TRACER,
        label: str = "",
    ) -> None:
        if not (0 < new_weight <= total_weight):
            raise ConfigurationError(
                f"need 0 < new_weight <= total_weight, got "
                f"{new_weight}/{total_weight}"
            )
        self.machine = machine
        self.new_weight = int(new_weight)
        self.total_weight = int(total_weight)
        self.tracer = tracer
        self.label = label
        # The slot map is a pure function of the static topology, so the
        # machine's precomputed copy is shared rather than rebuilt per
        # task type (a PTT is created per type, per run).
        self._index: Dict[ExecutionPlace, int] = getattr(
            machine, "_place_index", None
        ) or {place: i for i, place in enumerate(machine.places)}
        self._values = np.zeros(len(machine.places), dtype=np.float64)
        self._samples = np.zeros(len(machine.places), dtype=np.int64)
        #: Python-float mirror of ``_values``: scalar indexing into a list
        #: is ~3x faster than into an ndarray, and the placement searches
        #: read entries far more often than updates write them.  Kept
        #: exactly in sync by update_slot / mark_core_*.
        self._values_list: list = [0.0] * len(machine.places)

    def bind_storage(self, values: np.ndarray, samples: np.ndarray) -> None:
        """Rebind the table's backing arrays to externally owned storage.

        The batched replicate engine stacks N runs' tables into
        ``(runs x slots)`` matrices and hands each run's table its row
        *views* through this hook, so scalar updates land directly in the
        stack.  The arrays must match the table's shape; the Python-list
        read mirror is re-synced from the new values.
        """
        if values.shape != self._values.shape:
            raise ConfigurationError(
                f"values shape {values.shape} != table shape "
                f"{self._values.shape}"
            )
        if samples.shape != self._samples.shape:
            raise ConfigurationError(
                f"samples shape {samples.shape} != table shape "
                f"{self._samples.shape}"
            )
        self._values = values
        self._samples = samples
        self._values_list = values.tolist()

    def _slot(self, place: ExecutionPlace) -> int:
        try:
            return self._index[place]
        except KeyError:
            raise ConfigurationError(
                f"{place} is not a legal execution place on "
                f"{self.machine.name}"
            ) from None

    def predict(self, place: ExecutionPlace) -> float:
        """Predicted execution time at ``place`` (0 = not yet explored)."""
        return self._values_list[self._slot(place)]

    def predict_all(self) -> np.ndarray:
        """All predicted times, indexed by place slot (``machine.places``
        order).

        This is the live array, not a copy — callers must treat it as
        read-only.  It is the fast path of the vectorized searches in
        :mod:`repro.core.placement`.
        """
        return self._values

    def samples(self, place: ExecutionPlace) -> int:
        """Number of observations folded into ``place``'s entry."""
        return int(self._samples[self._slot(place)])

    def update(self, place: ExecutionPlace, observed: float) -> float:
        """Fold one observed execution time; returns the new entry value.

        The first sample replaces the zero initializer directly (a weighted
        average with the 0 sentinel would under-predict and freeze
        exploration prematurely).
        """
        return self.update_slot(self._slot(place), observed)

    def update_slot(self, slot: int, observed: float) -> float:
        """:meth:`update` addressed by place slot (``machine.places[slot]``).

        The runtime resolves a place to its slot once per completion and
        then updates without re-hashing the ``ExecutionPlace`` key.
        """
        if observed < 0:
            raise ConfigurationError(f"observed time must be >= 0, got {observed}")
        old = self._values_list[slot]
        if self._samples[slot] == 0:
            value = float(observed)
        else:
            w_new = self.new_weight
            w_old = self.total_weight - w_new
            value = (w_old * old + w_new * observed) / self.total_weight
        self._values[slot] = value
        self._values_list[slot] = float(value)
        self._samples[slot] += 1
        if self.tracer.enabled:
            place = self.machine.places[slot]
            self.tracer.emit(
                PttUpdateEvent(
                    t=self.tracer.now(),
                    type_name=self.label,
                    leader=place.leader,
                    width=place.width,
                    observed=float(observed),
                    old=old,
                    new=value,
                    samples=int(self._samples[slot]),
                )
            )
        return value

    def mark_core_lost(self, core: int) -> int:
        """Pin every place containing ``core`` to ``inf``.

        A zero entry would *attract* placements (unexplored always wins
        the minimization), so a lost core must be the opposite: no search
        can ever prefer a place that touches it.  Returns the number of
        places pinned.
        """
        slots = self._core_slots(core)
        self._values[slots] = np.inf
        self._values_list = self._values.tolist()
        return len(slots)

    def mark_core_recovered(self, core: int) -> None:
        """Reset every place containing ``core`` to unexplored (0, 0 samples).

        The outage may have changed the core's performance regime, so the
        pre-crash history is discarded and the paper's "evaluate every
        place at least once" rule re-explores it from scratch.
        """
        slots = self._core_slots(core)
        self._values[slots] = 0.0
        self._samples[slots] = 0
        self._values_list = self._values.tolist()

    def _core_slots(self, core: int) -> np.ndarray:
        """Slots of all places containing ``core``."""
        slots = getattr(self.machine, "_slots_by_core", None)
        if slots is not None and 0 <= core < len(slots):
            return slots[core]
        return np.array(
            [
                slot for place, slot in self._index.items()
                if place.leader <= core < place.leader + place.width
            ],
            dtype=np.intp,
        )

    def entries(self) -> Iterator[Tuple[ExecutionPlace, float]]:
        """Iterate ``(place, predicted time)`` in place order."""
        return zip(self.machine.places, self._values_list)

    def explored_fraction(self) -> float:
        """Fraction of places with at least one sample."""
        return float(np.count_nonzero(self._samples)) / len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PTT places={len(self._values)} "
            f"explored={self.explored_fraction():.0%}>"
        )


class PttStore:
    """The collection of PTTs, one per task type, sharing one fold ratio."""

    def __init__(
        self,
        machine: Machine,
        new_weight: int = 1,
        total_weight: int = 5,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.machine = machine
        self.new_weight = int(new_weight)
        self.total_weight = int(total_weight)
        self.tracer = tracer
        self._tables: Dict[str, PerformanceTraceTable] = {}
        #: Cores currently confirmed dead; tables created after the loss
        #: must be born with those places already pinned to ``inf``.
        self._lost_cores: set = set()

    def table(self, type_name: str) -> PerformanceTraceTable:
        """Get (or lazily create) the PTT for ``type_name``."""
        table = self._tables.get(type_name)
        if table is None:
            table = PerformanceTraceTable(
                self.machine, self.new_weight, self.total_weight,
                tracer=self.tracer, label=type_name,
            )
            for core in self._lost_cores:
                table.mark_core_lost(core)
            self._tables[type_name] = table
        return table

    def mark_core_lost(self, core: int) -> None:
        """Invalidate ``core``'s rows in every table, present and future."""
        self._lost_cores.add(core)
        for table in self._tables.values():
            table.mark_core_lost(core)

    def mark_core_recovered(self, core: int) -> None:
        """Re-open ``core``'s rows for exploration in every table."""
        self._lost_cores.discard(core)
        for table in self._tables.values():
            table.mark_core_recovered(core)

    def known_types(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def __len__(self) -> int:
        return len(self._tables)
