"""Scalable placement search (the paper's §4.1.1 future-work item).

The paper notes that sweeping the whole PTT "may result in non negligible
overheads when scaling to platforms with large amounts of execution places
and cores" and leaves scalable prediction models for future work.  This
module provides one: a :class:`ScalableSearchIndex` that maintains, per
cluster, the best-known entry under both Algorithm 1 objectives (parallel
cost and plain time), updated incrementally as PTT samples arrive.

A global search then touches only ``O(#clusters + places-in-one-cluster)``
entries instead of every place on the machine: stage 1 picks the winning
cluster from the per-cluster minima, stage 2 re-ranks inside that cluster
(applying the usual backlog tie-break).  Because the per-cluster minima
are maintained exactly, the two-stage search returns a true argmin — the
decisions are identical to the flat sweep, only cheaper.  This is asserted
by a property test.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.placement import _argmin_place, Backlog
from repro.core.ptt import PerformanceTraceTable
from repro.errors import ConfigurationError
from repro.machine.topology import ExecutionPlace, Machine


class ScalableSearchIndex:
    """Per-cluster minima over a PTT, maintained incrementally.

    Attach with :meth:`observe`; every ``table.update`` then refreshes the
    owning cluster's summary in ``O(places in that cluster)``.
    """

    def __init__(self, machine: Machine, table: PerformanceTraceTable) -> None:
        if table.machine is not machine:
            raise ConfigurationError("index machine must match the table's")
        self.machine = machine
        self.table = table
        self._cluster_places: Dict[str, List[ExecutionPlace]] = {
            cluster.name: [] for cluster in machine.clusters
        }
        for place in machine.places:
            cluster = machine.cluster_of(place.leader)
            self._cluster_places[cluster.name].append(place)
        place_index = {place: i for i, place in enumerate(machine.places)}
        #: cluster name -> (slot array, width array) for vectorized refresh
        self._cluster_arrays: Dict[str, Tuple[np.ndarray, np.ndarray]] = {
            name: (
                np.array([place_index[p] for p in places], dtype=np.intp),
                np.array([p.width for p in places], dtype=np.float64),
            )
            for name, places in self._cluster_places.items()
        }
        #: cluster name -> ((slot, width), ...) for the scalar refresh
        self._cluster_slot_widths: Dict[str, Tuple[Tuple[int, float], ...]] = {
            name: tuple(
                (place_index[p], float(p.width)) for p in places
            )
            for name, places in self._cluster_places.items()
        }
        #: cluster name -> (min cost, min time)
        self._minima: Dict[str, Tuple[float, float]] = {}
        for name in self._cluster_places:
            self._refresh(name)
        self._wrapped = False

    # -- maintenance -----------------------------------------------------
    def _refresh(self, cluster_name: str) -> None:
        values_list = getattr(self.table, "_values_list", None)
        if values_list is not None:
            # Scalar sweep over the cluster's dozen-odd slots: identical
            # minima to the ndarray reduction (same IEEE products), minus
            # the per-update fancy-indexing overhead.
            slot_widths = self._cluster_slot_widths[cluster_name]
            best_cost = float("inf")
            best_time = float("inf")
            for slot, width in slot_widths:
                value = values_list[slot]
                cost = value * width
                if cost < best_cost:
                    best_cost = cost
                if value < best_time:
                    best_time = value
        elif hasattr(self.table, "predict_all"):
            slots, widths = self._cluster_arrays[cluster_name]
            values = self.table.predict_all()[slots]
            best_cost = float((values * widths).min())
            best_time = float(values.min())
        else:
            places = self._cluster_places[cluster_name]
            best_cost = min(self.table.predict(p) * p.width for p in places)
            best_time = min(self.table.predict(p) for p in places)
        self._minima[cluster_name] = (best_cost, best_time)

    def observe(self) -> None:
        """Wrap the table's ``update`` so summaries stay current."""
        if self._wrapped:
            return
        self._wrapped = True
        original = self.table.update

        def updating(place: ExecutionPlace, observed: float) -> float:
            value = original(place, observed)
            cluster = self.machine.cluster_of(place.leader)
            self._refresh(cluster.name)
            return value

        self.table.update = updating  # type: ignore[method-assign]

    def cluster_minima(self) -> Dict[str, Tuple[float, float]]:
        """Copy of the per-cluster (min cost, min time) summaries."""
        return dict(self._minima)

    # -- two-stage searches ------------------------------------------------
    def _search(
        self,
        metric: Callable[[ExecutionPlace], float],
        summary_slot: int,
        backlog: Optional[Backlog],
    ) -> ExecutionPlace:
        from repro.core.placement import TIE_TOLERANCE

        best_value = min(m[summary_slot] for m in self._minima.values())
        # Keep every cluster whose best entry could participate in the
        # flat search's tie-break, so decisions match the flat sweep
        # exactly (normally just one cluster; a few under symmetric load).
        threshold = best_value * (1.0 + TIE_TOLERANCE)
        pool: List[ExecutionPlace] = []
        for name, minima in self._minima.items():
            if minima[summary_slot] <= threshold:
                pool.extend(self._cluster_places[name])
        return _argmin_place(pool, metric, backlog)

    def search_cost(self, backlog: Optional[Backlog] = None) -> ExecutionPlace:
        """Two-stage argmin of ``predicted time x width`` (DAM-C)."""
        return self._search(
            lambda p: self.table.predict(p) * p.width, 0, backlog
        )

    def search_performance(
        self, backlog: Optional[Backlog] = None
    ) -> ExecutionPlace:
        """Two-stage argmin of ``predicted time`` (DAM-P)."""
        return self._search(lambda p: self.table.predict(p), 1, backlog)

    def entries_touched_per_search(self) -> int:
        """Upper bound on entries a two-stage search inspects."""
        return len(self._minima) + max(
            len(places) for places in self._cluster_places.values()
        )
