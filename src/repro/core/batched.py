"""Batched replicate execution: N same-cell runs in one vectorized pass.

Adaptive replication (:mod:`repro.sweep.adaptive`) re-runs one *cell* —
one parameter point — across derived seeds until its confidence interval
converges.  Those replicates share everything except their RNG streams:
the machine topology, the DAG structure (via the template cache), the
kernel cost profiles and the scheduler configuration.  This module
exploits that sharing:

* :class:`BatchedPttStore` stacks the replicates' Performance Trace
  Tables: per task kind one ``(runs x slots)`` value/sample matrix, with
  each run's :class:`~repro.core.ptt.PerformanceTraceTable` operating on
  its row *view* — scalar updates from the runtime flow straight into
  the stack, and the batched readers (:meth:`~BatchedPttStore.stack`,
  :meth:`~BatchedPttStore.predict_all_runs`) and the run-axis writer
  (:meth:`~BatchedPttStore.update_slot_runs`) see the whole batch
  without copying.
* :class:`BatchedRates` holds the dynamic rate inputs as
  ``(runs x cores)`` matrices; every DVFS / co-runner / fault transition
  a replicate's :class:`BatchedSpeedModel` applies lands as a row-wise
  masked update.
* :func:`execute_batch` drives N replicates through one shared machine,
  template-instantiated DAGs and a shared kernel-profile cache, then
  hands the built runtimes to the lockstep driver
  (:func:`repro.core.lockstep.drive_runs`), which co-advances all N
  event calendars as one merged wavefront and answers the cross-run
  homogeneous work — high-priority placement scans, PTT folds, metric
  extraction — as runs-axis numpy passes over the stacked matrices.

Replicates *diverge* at their first seeded-RNG decision (steal-victim
draws, wake shuffles), so their event queues cannot be fused into a
single shared calendar without changing results; the lockstep driver
therefore keeps each run's own event order, RNG draws and tie-breaking
exactly on scalar semantics (bit-identical metrics, property-tested)
and batches only the *decisions and folds* that are pure functions of
the stacked per-run state, plus the record keeping the batch's metric
demands provably never read.  ``REPRO_LOCKSTEP=0`` restores the legacy
run-to-completion-in-turn loop.  Cells that cannot batch — fault
injection enabled, kernels the template cache cannot key (e.g. carrying
live RNG state), non-``single`` executors such as the distributed
runtime, traced runs — fall back to scalar execution with the reason
recorded in the sweep manifest; see :func:`batch_ineligible_reason`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.ptt import PerformanceTraceTable, PttStore
from repro.errors import ConfigurationError
from repro.machine.speed import TRANSITION_KINDS, SpeedModel
from repro.machine.topology import Machine
from repro.sim.environment import Environment
from repro.sweep.spec import BATCH_KIND, RunSpec
from repro.trace.tracer import NULL_TRACER, Tracer


# ----------------------------------------------------------------------
# stacked performance trace tables
# ----------------------------------------------------------------------

class _RunPttTable(PerformanceTraceTable):
    """A PTT whose storage is one row of a batch's stacked matrices.

    Behaviour is exactly the scalar table's — same fold arithmetic, same
    Python-list mirror, same lost-core handling — only ``_values`` and
    ``_samples`` are views into the owning :class:`BatchedPttStore`'s
    ``(runs x slots)`` matrices, so every scalar update is immediately
    visible to the batched readers.
    """

    def __init__(
        self,
        store: "BatchedPttStore",
        run: int,
        machine: Machine,
        new_weight: int,
        total_weight: int,
        tracer: Tracer = NULL_TRACER,
        label: str = "",
    ) -> None:
        super().__init__(
            machine, new_weight, total_weight, tracer=tracer, label=label
        )
        values, samples = store._matrices(label)
        self.bind_storage(values[run], samples[run])


class _RunPttStore(PttStore):
    """Per-replicate :class:`PttStore` facade over a batch's stack."""

    def __init__(
        self,
        batched: "BatchedPttStore",
        run: int,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(
            batched.machine, batched.new_weight, batched.total_weight,
            tracer=tracer,
        )
        self._batched = batched
        self._run = run

    def table(self, type_name: str) -> PerformanceTraceTable:
        table = self._tables.get(type_name)
        if table is None:
            table = _RunPttTable(
                self._batched, self._run, self.machine,
                self.new_weight, self.total_weight,
                tracer=self.tracer, label=type_name,
            )
            for core in self._lost_cores:
                table.mark_core_lost(core)
            self._tables[type_name] = table
        return table


class BatchedPttStore:
    """PTT state of N replicate runs, stacked per task kind.

    Per kind, values live in one ``(runs x slots)`` float64 matrix and
    sample counts in an int64 matrix of the same shape; run ``r``'s
    tables (via :meth:`store_for`) are row views, so the scalar runtime
    path and the batched APIs read and write the same memory.
    """

    def __init__(
        self,
        machine: Machine,
        runs: int,
        new_weight: int = 1,
        total_weight: int = 5,
    ) -> None:
        if runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {runs}")
        self.machine = machine
        self.runs = int(runs)
        self.new_weight = int(new_weight)
        self.total_weight = int(total_weight)
        self._values: Dict[str, np.ndarray] = {}
        self._samples: Dict[str, np.ndarray] = {}
        self._kinds: List[str] = []
        self._rows = np.arange(self.runs)

    def _matrices(self, kind: str) -> Tuple[np.ndarray, np.ndarray]:
        """The (values, samples) matrices of ``kind``, created on demand."""
        values = self._values.get(kind)
        if values is None:
            slots = len(self.machine.places)
            values = np.zeros((self.runs, slots), dtype=np.float64)
            self._values[kind] = values
            self._samples[kind] = np.zeros((self.runs, slots), dtype=np.int64)
            self._kinds.append(kind)
        return values, self._samples[kind]

    def store_for(self, run: int, tracer: Tracer = NULL_TRACER) -> PttStore:
        """The per-replicate store whose tables view row ``run``."""
        if not (0 <= run < self.runs):
            raise ConfigurationError(
                f"run {run} out of range [0, {self.runs})"
            )
        return _RunPttStore(self, run, tracer=tracer)

    def kinds(self) -> Tuple[str, ...]:
        """Task kinds observed so far, in first-seen order."""
        return tuple(self._kinds)

    def predict_all_runs(self, kind: str) -> np.ndarray:
        """All runs' predicted times for ``kind``: a ``(runs x slots)``
        view (read-only by convention, like ``predict_all``)."""
        return self._matrices(kind)[0]

    def samples_all_runs(self, kind: str) -> np.ndarray:
        """All runs' sample counts for ``kind`` (``(runs x slots)`` view)."""
        return self._matrices(kind)[1]

    def update_slot_runs(
        self,
        kind: str,
        slots: Sequence[int],
        observed: Sequence[float],
        rows: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Fold one observation per run, batched over the run axis.

        ``slots[r]`` / ``observed[r]`` is run ``r``'s sample.  Applies the
        scalar table's exact fold — first sample replaces the zero
        initializer, later samples take the weighted average — as one
        masked vector operation, and returns the new values (one per
        run).  ``rows`` restricts the fold to a subset of runs (the
        lockstep driver folds only the runs whose commits landed this
        round); ``slots[i]`` / ``observed[i]`` then belong to run
        ``rows[i]``.
        """
        values, samples = self._matrices(kind)
        slots = np.asarray(slots, dtype=np.intp)
        observed = np.asarray(observed, dtype=np.float64)
        if rows is None:
            rows = self._rows
        else:
            rows = np.asarray(rows, dtype=np.intp)
            if rows.size and (rows.min() < 0 or rows.max() >= self.runs):
                raise ConfigurationError(
                    f"rows must index [0, {self.runs}), got {rows}"
                )
        if slots.shape != rows.shape or observed.shape != rows.shape:
            raise ConfigurationError(
                f"need one (slot, observed) pair per addressed run "
                f"({rows.shape}), got {slots.shape} / {observed.shape}"
            )
        if np.any(observed < 0):
            raise ConfigurationError("observed times must be >= 0")
        old = values[rows, slots]
        w_new = self.new_weight
        w_old = self.total_weight - w_new
        folded = (w_old * old + w_new * observed) / self.total_weight
        first = samples[rows, slots] == 0
        new = np.where(first, observed, folded)
        values[rows, slots] = new
        samples[rows, slots] += 1
        return new

    def stack(self) -> np.ndarray:
        """Materialized ``(runs x kinds x slots)`` snapshot of all values.

        Kind order follows :meth:`kinds`.  With no kinds observed yet the
        array is empty along the kind axis.
        """
        slots = len(self.machine.places)
        if not self._kinds:
            return np.zeros((self.runs, 0, slots), dtype=np.float64)
        return np.stack([self._values[k] for k in self._kinds], axis=1)


# ----------------------------------------------------------------------
# stacked speed-model rates
# ----------------------------------------------------------------------

class BatchedRates:
    """Dynamic rate inputs of N replicate runs as ``(runs x cores)``
    matrices.

    Each replicate's :class:`BatchedSpeedModel` mirrors its transitions
    into its row (a masked write over the affected cores), so the batch
    always has a current vectorized view of every run's DVFS frequency
    scale, co-runner CPU share and fault multiplier.
    """

    #: SpeedModel transition kinds mirrored into a matrix — one attribute
    #: per kind, named identically, sourced from the model's own registry
    #: so a new rate input cannot be silently left unmirrored.
    KINDS = TRANSITION_KINDS

    def __init__(self, machine: Machine, runs: int) -> None:
        if runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {runs}")
        self.machine = machine
        self.runs = int(runs)
        n = machine.num_cores
        self.freq_scale = np.ones((runs, n), dtype=np.float64)
        self.cpu_share = np.ones((runs, n), dtype=np.float64)
        self.fault_scale = np.ones((runs, n), dtype=np.float64)
        self._base = np.array(
            [c.base_speed for c in machine.cores], dtype=np.float64
        )

    def effective(self) -> np.ndarray:
        """Effective core rates, ``(runs x cores)``, ignoring
        time-sharing (which depends on in-flight work, not on the rate
        inputs)."""
        return self._base * self.freq_scale * self.cpu_share * self.fault_scale


class BatchedSpeedModel(SpeedModel):
    """A :class:`SpeedModel` that mirrors its transitions into a batch row.

    Simulation behaviour is untouched — the scalar tables stay the
    authoritative state the hot paths read — but every
    ``_transition_cores`` write is repeated as a row-wise masked update
    of the shared :class:`BatchedRates` matrices, keeping the stacked
    view current at transition granularity.
    """

    def __init__(
        self,
        env: Environment,
        machine: Machine,
        rates: BatchedRates,
        run: int,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if rates.machine is not machine:
            raise ConfigurationError("rates matrix machine must match")
        if not (0 <= run < rates.runs):
            raise ConfigurationError(
                f"run {run} out of range [0, {rates.runs})"
            )
        super().__init__(env, machine, tracer)
        self._batched_rates = rates
        self._batched_run = run

    def _transition_cores(self, table, core_ids, value, kind) -> None:
        core_ids = list(core_ids)
        super()._transition_cores(table, core_ids, value, kind)
        matrix = getattr(self._batched_rates, kind, None)
        if matrix is not None and core_ids:
            matrix[self._batched_run, core_ids] = value


# ----------------------------------------------------------------------
# batch specs and eligibility
# ----------------------------------------------------------------------

def _scenario_has_faults(scenario: Optional[Mapping[str, Any]]) -> bool:
    """Whether a declarative scenario mapping injects faults anywhere."""
    if scenario is None:
        return False
    name = scenario.get("name")
    if name == "faults":
        return True
    if name == "composite":
        return any(
            _scenario_has_faults(sub) for sub in scenario.get("scenarios", ())
        )
    return False


def batch_ineligible_reason(spec: RunSpec) -> Optional[str]:
    """Why ``spec`` cannot batch, or ``None`` when it is eligible.

    The reason string is what the sweep manifest surfaces as
    ``{"batched": false, "reason": ...}``:

    * ``"executor:<kind>"`` — non-``single`` executors: the distributed
      and application runtimes wire their own environments;
    * ``"traced"`` — a trace captures one concrete run's event stream
      (worker timelines, steal arrows, per-task spans addressed to that
      run's trace file); co-advancing it with batchmates would interleave
      foreign progress into the capture, and the tracer's callbacks are
      exactly the kind of per-event side channel the lockstep driver
      must not have to replay.  Metered-but-untraced runs carry no such
      per-event capture, so they batch;
    * ``"faults"`` — recovery mutates PTT rows (inf pins /
      re-exploration resets) and worker liveness in ways the batch does
      not model;
    * ``"workload"`` / ``"kernel-unkeyable"`` — workloads whose DAG or
      kernels the template cache cannot key (e.g. kernels carrying live
      RNG state) — without a template the DAG cannot be shared, which
      is the batch's reason to exist.
    """
    if spec.kind != "single":
        return f"executor:{spec.kind}"
    params = spec.params
    if params.get("trace") is not None:
        return "traced"
    if _scenario_has_faults(params.get("scenario")):
        return "faults"
    workload = params.get("workload") or {}
    if workload.get("name") != "layered":
        return "workload"
    try:
        from repro.graph.templates import kernel_cache_key
        from repro.sweep.registry import make_kernel

        kernel = make_kernel(
            workload.get("kernel"), workload.get("tile")
        )
    except Exception:
        return "kernel-unkeyable"
    if kernel_cache_key(kernel) is None:
        return "kernel-unkeyable"
    return None


def can_batch(spec: RunSpec) -> bool:
    """Whether ``spec`` is eligible for batched replicate execution.

    ``can_batch(spec)`` is ``batch_ineligible_reason(spec) is None`` —
    see that function for the fallback taxonomy (and for why traced
    runs are excluded while metered ones are not).
    """
    return batch_ineligible_reason(spec) is None


def batch_group_key(spec: RunSpec) -> str:
    """Identity of a spec's *cell*: everything but the seed.

    Replicates of one cell share this key, so pending replicates that
    hash alike can execute as one batch.
    """
    import hashlib
    import json

    payload = json.dumps(
        {
            "kind": spec.kind,
            "params": spec.params,
            "metrics": sorted(spec.metrics),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def make_batch_spec(members: Sequence[RunSpec]) -> RunSpec:
    """The pseudo-spec that executes ``members`` as one batched run.

    The members ride along as plain data under ``params["runs"]``, so
    the batch job moves through the sweep engine's existing machinery
    (worker pipes, crash retry, predictive dispatch) like any other
    spec.  Batch pseudo-specs are never cached or checkpointed as such —
    the engine records their per-replicate results under the members'
    own keys.
    """
    if len(members) < 2:
        raise ConfigurationError(
            f"a batch needs >= 2 replicates, got {len(members)}"
        )
    base_key = batch_group_key(members[0])
    for member in members[1:]:
        if batch_group_key(member) != base_key:
            raise ConfigurationError(
                "batch members must be replicates of one cell"
            )
    return RunSpec(
        kind=BATCH_KIND,
        params={
            "runs": [
                {
                    "kind": m.kind,
                    "params": dict(m.params),
                    "seed": m.seed,
                    "metrics": list(m.metrics),
                }
                for m in members
            ]
        },
        seed=members[0].seed,
        metrics=(),
        tags={"batch": len(members)},
    )


def parse_batch_spec(spec: RunSpec) -> List[RunSpec]:
    """Reconstruct the member :class:`RunSpec`\\ s of a batch pseudo-spec."""
    if spec.kind != BATCH_KIND:
        raise ConfigurationError(f"not a batch spec: kind={spec.kind!r}")
    runs = spec.params.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ConfigurationError("batch spec carries no member runs")
    return [
        RunSpec(
            kind=entry["kind"],
            params=entry["params"],
            seed=entry["seed"],
            metrics=tuple(entry["metrics"]),
        )
        for entry in runs
    ]


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def _execute_batch_impl(
    specs: Sequence[RunSpec],
) -> Tuple[List[Dict[str, Any]], str]:
    """Shared body of :func:`execute_batch`: payloads plus the mode run.

    Construction and execution are separate phases.  Phase one builds
    every replicate's runtime (error-isolated: a replicate whose
    *construction* raises resolves to its error payload immediately and
    is excluded from execution).  Phase two either hands the built
    runtimes to the lockstep driver (``mode == "lockstep"``) or, with
    ``REPRO_LOCKSTEP=0``, runs each to completion in turn on the legacy
    scalar path (``mode == "scalar"``).  Hoisting construction ahead of
    all execution is bit-identical: RNG streams are derived per seed,
    the DAG template cache is deterministic, and kernel profiles are
    only computed (and memoized) during execution.
    """
    from repro.core.lockstep import (
        drive_runs,
        lockstep_enabled,
        parking_wanted,
    )
    from repro.core.policies.registry import make_scheduler
    from repro.runtime.config import RuntimeConfig
    from repro.runtime.executor import SimulatedRuntime
    from repro.sweep.registry import (
        build_machine,
        build_scenario,
        build_workload,
        extract_metrics,
    )
    from repro.telemetry import get_registry

    if not specs:
        return [], "lockstep" if lockstep_enabled() else "scalar"
    base = specs[0]
    base_key = batch_group_key(base)
    for spec in specs[1:]:
        if batch_group_key(spec) != base_key:
            raise ConfigurationError(
                "batch members must be replicates of one cell"
            )
    if not can_batch(base):
        raise ConfigurationError(
            "cell is not batchable; use the scalar path"
        )

    params = base.params
    machine = build_machine(params["machine"])
    runs = len(specs)
    lockstep = lockstep_enabled()
    # Stacked per-run PTT state only pays when a parking mode will read
    # it (runs-axis predicts for decisions, vector folds for commits):
    # every scalar fold through a stacked row view costs a strided numpy
    # write the plain per-run table avoids.  The legacy scalar-in-turn
    # path keeps the unconditional swap it shipped with.
    stack_ptt = not lockstep or any(parking_wanted(machine, runs))
    # Same reasoning for the stacked rate matrices: the lockstep driver
    # batches placement scans and PTT folds, never cross-run retiming,
    # so under lockstep the BatchedRates mirror is a write-only cost
    # (one masked numpy write per scenario transition per run — the TX2
    # co-runner cells pay it measurably).  Plain SpeedModels behave
    # identically; the legacy path keeps the mirror it shipped with.
    rates = None if lockstep else BatchedRates(machine, runs)
    ptt_stack: Optional[BatchedPttStore] = None
    shared_profiles: Dict[tuple, Any] = {}
    payloads: List[Optional[Dict[str, Any]]] = [None] * runs
    entries: List[Tuple[int, RunSpec, Any]] = []
    for run, spec in enumerate(specs):
        try:
            graph = build_workload(params["workload"])
            policy = make_scheduler(
                params["scheduler"], **(params.get("scheduler_kwargs") or {})
            )
            scenario = build_scenario(params.get("scenario"))
            config = RuntimeConfig(**(params.get("config") or {}))
            env = Environment()
            speed = (
                SpeedModel(env, machine)
                if rates is None
                else BatchedSpeedModel(env, machine, rates, run)
            )
            if scenario is not None:
                scenario.install(env, speed, machine)
            runtime = SimulatedRuntime(
                env, machine, graph, policy, config=config, speed=speed,
                seed=spec.seed,
            )
            if stack_ptt and policy.uses_ptt and policy.ptt is not None:
                if ptt_stack is None:
                    ptt_stack = BatchedPttStore(
                        machine, runs,
                        policy.ptt_new_weight, policy.ptt_total_weight,
                    )
                policy.ptt = ptt_stack.store_for(run, tracer=policy.tracer)
            # Kernel profiles are pure in (kernel, machine, place); the
            # machine and the template's kernel objects are shared across
            # the batch, so the memo carries over run to run.
            runtime._profile_cache = shared_profiles
        except Exception as exc:
            payloads[run] = {
                "err": {"type": type(exc).__name__, "message": str(exc)}
            }
        else:
            entries.append((run, spec, runtime))

    if lockstep:
        mode = "lockstep"
        for run, payload in drive_runs(entries, ptt_stack).items():
            payloads[run] = payload
    else:
        mode = "scalar"
        for run, spec, runtime in entries:
            try:
                result = runtime.run()
                metrics = extract_metrics(result, spec.metrics)
            except Exception as exc:
                payloads[run] = {
                    "err": {"type": type(exc).__name__, "message": str(exc)}
                }
            else:
                payloads[run] = {"ok": metrics}

    # Telemetry: this runs in the sweep worker; the engine merges the
    # worker's snapshot, so these land in --watch and the HTML report.
    reg = get_registry()
    if reg.enabled:
        reg.gauge(
            "sweep_batch_runs", "replicates in the latest executed batch"
        ).set(runs)
        if mode == "lockstep":
            reg.counter(
                "sweep_lockstep_batches_total",
                "batches executed by the lockstep co-advance driver",
            ).inc()
        else:
            reg.counter(
                "sweep_scalar_batches_total",
                "batches executed on the legacy run-in-turn scalar path",
            ).inc()
    return payloads, mode  # type: ignore[return-value]


def execute_batch(specs: Sequence[RunSpec]) -> List[Dict[str, Any]]:
    """Run N same-cell replicates in one batched pass.

    Returns one payload per replicate, in order: ``{"ok": metrics}`` on
    success or ``{"err": {"type", "message"}}`` when that replicate's
    construction or execution raised (mirroring the scalar engine's
    deterministic-failure capture; one broken replicate never aborts its
    batchmates).

    Shared across the batch: the machine (static topology, built once),
    the DAG template (each run instantiates a fresh graph from it), the
    kernel cost-profile cache, the stacked PTT matrices and the stacked
    rate matrices.  Per replicate: environment, speed-model dynamics,
    scheduler state, RNG streams — everything that makes its metrics
    bit-identical to a scalar run of the same spec.  Execution itself is
    the lockstep co-advance driver unless ``REPRO_LOCKSTEP=0`` (see the
    module docstring and :mod:`repro.core.lockstep`).
    """
    payloads, _mode = _execute_batch_impl(specs)
    return payloads


def run_batch_spec(spec: RunSpec) -> Dict[str, Any]:
    """Executor body of the :data:`~repro.sweep.spec.BATCH_KIND` kind.

    The payload carries ``mode`` (``"lockstep"`` or ``"scalar"``) so the
    engine can record how each batch actually executed in the manifest.
    """
    payloads, mode = _execute_batch_impl(parse_batch_spec(spec))
    return {"replicates": payloads, "mode": mode}


__all__ = [
    "BATCH_KIND",
    "BatchedPttStore",
    "BatchedRates",
    "BatchedSpeedModel",
    "batch_group_key",
    "batch_ineligible_reason",
    "can_batch",
    "execute_batch",
    "make_batch_spec",
    "parse_batch_spec",
    "run_batch_spec",
]
