"""Algorithm 1's placement searches.

* *Local search* — keep the task on its current core (and hence resource
  partition), mold only the width: minimize ``PTT(core, w) * w`` over the
  widths legal in the core's cluster.  Used for low-priority tasks to
  preserve data reuse across dependent tasks.
* *Global search (cost)* — sweep every execution place on the machine and
  minimize the parallel cost ``PTT(c, w) * w`` (DAM-C).
* *Global search (performance)* — sweep every place and minimize the pure
  predicted time ``PTT(c, w)`` (DAM-P), which is more aggressive about
  using wide places when parallelism is scarce.

Zero entries (unexplored places) have cost 0 and therefore always win,
which implements the paper's "every place is evaluated at least once".
Ties are broken by place order ``(leader, width)`` for determinism.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.ptt import PerformanceTraceTable
from repro.errors import SchedulingError
from repro.machine.topology import ExecutionPlace, Machine

#: Places whose predicted value is within this relative tolerance of the
#: minimum count as tied; ties break toward the least-loaded leader.
TIE_TOLERANCE = 0.10

Backlog = Callable[[int], float]


def _argmin_place(
    places: Iterable[ExecutionPlace],
    key: Callable[[ExecutionPlace], float],
    backlog: Optional[Backlog] = None,
) -> ExecutionPlace:
    """Place minimizing ``key``; near-ties resolved by leader backlog.

    On a symmetric machine many places predict (almost) the same time, and
    a pure first-wins argmin would pin every critical task to one core
    regardless of its queue depth.  When ``backlog`` is given, candidates
    within :data:`TIE_TOLERANCE` of the best value are re-ranked by the
    leader's current backlog — the natural tie-break any real
    implementation applies (the paper's PTT values dither enough to do
    this implicitly).
    """
    candidates: List[ExecutionPlace] = []
    best_value = float("inf")
    for place in places:
        value = key(place)
        if value < best_value:
            best_value = value
            candidates = [place]
        elif value == best_value:
            candidates.append(place)
    if not candidates:
        raise SchedulingError("no candidate execution places")
    winner = candidates[0]
    if backlog is None:
        return winner
    # Scatter only across places of the winning width: the tie-break must
    # never second-guess the molding decision itself, just avoid piling
    # every critical task onto one equally-fast core.
    threshold = best_value * (1.0 + TIE_TOLERANCE)
    tied = [
        p for p in places if p.width == winner.width and key(p) <= threshold
    ]

    def place_backlog(place: ExecutionPlace) -> float:
        # A moldable assembly cannot start until *every* member is free,
        # so the relevant load is the busiest member, not the leader.
        return max(
            backlog(core)
            for core in range(place.leader, place.leader + place.width)
        )

    return min(tied, key=lambda p: (place_backlog(p), p))


def _vector_search(
    machine: Machine,
    keys: "np.ndarray",
    slots: Optional["np.ndarray"],
    backlog: Optional[Backlog],
) -> ExecutionPlace:
    """Argmin over precomputed per-slot ``keys``, scalar-identical.

    ``np.argmin`` returns the first occurrence of the minimum, which in
    slot order is exactly the scalar first-wins argmin over places sorted
    by ``(leader, width)``.  ``slots`` restricts the search to a subset
    (e.g. the width-one places); ``keys`` is then already the restricted
    array and indexes into ``slots``.
    """
    best = int(np.argmin(keys))
    places = machine.places
    winner = places[best] if slots is None else places[int(slots[best])]
    if backlog is None:
        return winner
    best_value = float(keys[best])
    threshold = best_value * (1.0 + TIE_TOLERANCE)
    width = winner.width
    members = machine._place_members
    if slots is None:
        tied_slots = np.nonzero(
            (machine._place_widths == width) & (keys <= threshold)
        )[0]
    else:
        tied_slots = slots[np.nonzero(keys <= threshold)[0]]
    best_pair = None
    best_place = winner
    for slot in tied_slots:
        place = places[int(slot)]
        load = max(backlog(core) for core in members[int(slot)])
        pair = (load, place)
        if best_pair is None or pair < best_pair:
            best_pair = pair
            best_place = place
    return best_place


def _scan_cost(
    machine: Machine,
    values: Sequence[float],
    backlog: Optional[Backlog],
) -> ExecutionPlace:
    """Pure-scalar sweep minimizing ``time x width`` over all places.

    Identical decisions to ``_vector_search(machine, values * widths, …)``:
    each key is the same IEEE-double product, the strict ``<`` keeps the
    first minimum exactly like ``np.argmin``, and the tie-break visits the
    same slots in the same order.
    """
    widths = machine._place_widths_list
    best = 0
    best_key = values[0] * widths[0]
    for slot in range(1, len(widths)):
        key = values[slot] * widths[slot]
        if key < best_key:
            best_key = key
            best = slot
    places = machine.places
    winner = places[best]
    if backlog is None:
        return winner
    threshold = best_key * (1.0 + TIE_TOLERANCE)
    width = winner.width
    members = machine._place_members
    best_pair = None
    best_place = winner
    for slot in range(len(widths)):
        if widths[slot] != width or values[slot] * widths[slot] > threshold:
            continue
        place = places[slot]
        load = max(backlog(core) for core in members[slot])
        pair = (load, place)
        if best_pair is None or pair < best_pair:
            best_pair = pair
            best_place = place
    return best_place


def _scan_performance(
    machine: Machine,
    values: Sequence[float],
    slots: Optional[Sequence[int]],
    backlog: Optional[Backlog],
) -> ExecutionPlace:
    """Pure-scalar sweep minimizing predicted time, ``_vector_search``-exact.

    ``slots`` (when given) restricts the sweep to a subset, e.g. the
    width-one places; its tie-break then has no width filter, mirroring
    the restricted branch of :func:`_vector_search`.
    """
    places = machine.places
    if slots is None:
        best = 0
        best_key = values[0]
        for slot in range(1, len(values)):
            key = values[slot]
            if key < best_key:
                best_key = key
                best = slot
        winner = places[best]
    else:
        best = slots[0]
        best_key = values[best]
        for slot in slots:
            key = values[slot]
            if key < best_key:
                best_key = key
                best = slot
        winner = places[best]
    if backlog is None:
        return winner
    threshold = best_key * (1.0 + TIE_TOLERANCE)
    members = machine._place_members
    best_pair = None
    best_place = winner
    if slots is None:
        width = winner.width
        pool = range(len(values))
    else:
        width = None
        pool = slots
    for slot in pool:
        if values[slot] > threshold:
            continue
        if width is not None and places[slot].width != width:
            continue
        place = places[slot]
        load = max(backlog(core) for core in members[slot])
        pair = (load, place)
        if best_pair is None or pair < best_pair:
            best_pair = pair
            best_place = place
    return best_place


def batched_scan_cost(
    machine: Machine,
    values_rows: "np.ndarray",
    backlogs: Sequence[Optional[Backlog]],
) -> List[ExecutionPlace]:
    """Runs-axis :func:`_scan_cost`: one cost argmin per batched run.

    ``values_rows`` is a ``(runs x slots)`` matrix (one PTT row per run);
    the primary key ``values * widths`` and its first-occurrence argmin
    are computed for all runs in one numpy pass, then each run's
    near-tie re-rank runs the scalar tie-break loop verbatim on that
    run's row (as Python floats), so every run's decision is bit-identical
    to :func:`_scan_cost` on its own table.
    """
    keys = values_rows * machine._place_widths
    best_slots = np.argmin(keys, axis=1)
    places = machine.places
    widths = machine._place_widths_list
    members = machine._place_members
    out: List[ExecutionPlace] = []
    for run in range(values_rows.shape[0]):
        best = int(best_slots[run])
        winner = places[best]
        backlog = backlogs[run]
        if backlog is None:
            out.append(winner)
            continue
        values = values_rows[run].tolist()
        best_key = values[best] * widths[best]
        threshold = best_key * (1.0 + TIE_TOLERANCE)
        width = winner.width
        best_pair = None
        best_place = winner
        for slot in range(len(widths)):
            if widths[slot] != width or values[slot] * widths[slot] > threshold:
                continue
            place = places[slot]
            load = max(backlog(core) for core in members[slot])
            pair = (load, place)
            if best_pair is None or pair < best_pair:
                best_pair = pair
                best_place = place
        out.append(best_place)
    return out


def batched_scan_performance(
    machine: Machine,
    values_rows: "np.ndarray",
    slots: Optional[Sequence[int]],
    backlogs: Sequence[Optional[Backlog]],
) -> List[ExecutionPlace]:
    """Runs-axis :func:`_scan_performance`: one time argmin per run.

    With ``slots`` given the search is restricted to that subset (e.g.
    the width-one places) for every run; the restricted argmin scans the
    subset columns in ``slots`` order, matching the scalar loop's
    first-wins traversal, and the tie-break (no width filter, subset
    pool) is the scalar restricted branch run per row.
    """
    places = machine.places
    if slots is None:
        best_slots = np.argmin(values_rows, axis=1)
    else:
        slots = list(slots)
        restricted = values_rows[:, slots]
        best_slots = np.argmin(restricted, axis=1)
    members = machine._place_members
    out: List[ExecutionPlace] = []
    for run in range(values_rows.shape[0]):
        if slots is None:
            best = int(best_slots[run])
        else:
            best = slots[int(best_slots[run])]
        winner = places[best]
        backlog = backlogs[run]
        if backlog is None:
            out.append(winner)
            continue
        values = values_rows[run].tolist()
        best_key = values[best]
        threshold = best_key * (1.0 + TIE_TOLERANCE)
        best_pair = None
        best_place = winner
        if slots is None:
            width = winner.width
            pool = range(len(values))
        else:
            width = None
            pool = slots
        for slot in pool:
            if values[slot] > threshold:
                continue
            if width is not None and places[slot].width != width:
                continue
            place = places[slot]
            load = max(backlog(core) for core in members[slot])
            pair = (load, place)
            if best_pair is None or pair < best_pair:
                best_pair = pair
                best_place = place
        out.append(best_place)
    return out


def local_search_cost(
    ptt: PerformanceTraceTable, machine: Machine, core: int
) -> ExecutionPlace:
    """Best width at ``core``'s aligned places, minimizing time x width."""
    entries = getattr(machine, "_local_search_entries", None)
    if entries is None or not hasattr(ptt, "_values_list"):
        candidates = [
            machine.local_place_for(core, w) for w in machine.widths_at(core)
        ]
        return _argmin_place(candidates, lambda p: ptt.predict(p) * p.width)
    values = ptt._values_list
    best_key = float("inf")
    best_place = None
    # Strict less-than keeps the first (narrowest-width) winner, exactly
    # like the scalar first-wins argmin over the widths-ordered entries.
    for slot, width, place in entries[core]:
        key = values[slot] * width
        if key < best_key:
            best_key = key
            best_place = place
    if best_place is None:
        raise SchedulingError("no candidate execution places")
    return best_place


def global_search_cost(
    ptt: PerformanceTraceTable,
    machine: Machine,
    places: Optional[Sequence[ExecutionPlace]] = None,
    backlog: Optional[Backlog] = None,
) -> ExecutionPlace:
    """Best place machine-wide, minimizing parallel cost (DAM-C line 8)."""
    if places is None:
        values = getattr(ptt, "_values_list", None)
        if values is not None and hasattr(machine, "_place_widths_list"):
            return _scan_cost(machine, values, backlog)
        if hasattr(ptt, "predict_all"):
            keys = ptt.predict_all() * machine._place_widths
            return _vector_search(machine, keys, None, backlog)
    pool = machine.places if places is None else places
    return _argmin_place(pool, lambda p: ptt.predict(p) * p.width, backlog)


def global_search_performance(
    ptt: PerformanceTraceTable,
    machine: Machine,
    places: Optional[Sequence[ExecutionPlace]] = None,
    backlog: Optional[Backlog] = None,
) -> ExecutionPlace:
    """Best place machine-wide, minimizing predicted time (DAM-P line 11)."""
    values = getattr(ptt, "_values_list", None)
    if values is not None and hasattr(machine, "_place_widths_list"):
        if places is None:
            return _scan_performance(machine, values, None, backlog)
        if places is getattr(machine, "_width_one_places", None):
            return _scan_performance(
                machine, values, machine._width_one_slots_list, backlog
            )
    if hasattr(ptt, "predict_all"):
        if places is None:
            return _vector_search(machine, ptt.predict_all(), None, backlog)
        if places is getattr(machine, "_width_one_places", None):
            slots = machine._width_one_slots
            return _vector_search(
                machine, ptt.predict_all()[slots], slots, backlog
            )
    pool = machine.places if places is None else places
    return _argmin_place(pool, lambda p: ptt.predict(p), backlog)


def width_one_places(machine: Machine) -> Sequence[ExecutionPlace]:
    """All single-core places (the DA scheduler's search domain).

    Returns the machine's precomputed tuple; the vectorized
    :func:`global_search_performance` recognizes it by identity and takes
    the subset fast path.
    """
    cached = getattr(machine, "_width_one_places", None)
    if cached is not None:
        return cached
    return [p for p in machine.places if p.width == 1]
