"""Algorithm 1's placement searches.

* *Local search* — keep the task on its current core (and hence resource
  partition), mold only the width: minimize ``PTT(core, w) * w`` over the
  widths legal in the core's cluster.  Used for low-priority tasks to
  preserve data reuse across dependent tasks.
* *Global search (cost)* — sweep every execution place on the machine and
  minimize the parallel cost ``PTT(c, w) * w`` (DAM-C).
* *Global search (performance)* — sweep every place and minimize the pure
  predicted time ``PTT(c, w)`` (DAM-P), which is more aggressive about
  using wide places when parallelism is scarce.

Zero entries (unexplored places) have cost 0 and therefore always win,
which implements the paper's "every place is evaluated at least once".
Ties are broken by place order ``(leader, width)`` for determinism.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.ptt import PerformanceTraceTable
from repro.errors import SchedulingError
from repro.machine.topology import ExecutionPlace, Machine

#: Places whose predicted value is within this relative tolerance of the
#: minimum count as tied; ties break toward the least-loaded leader.
TIE_TOLERANCE = 0.10

Backlog = Callable[[int], float]


def _argmin_place(
    places: Iterable[ExecutionPlace],
    key: Callable[[ExecutionPlace], float],
    backlog: Optional[Backlog] = None,
) -> ExecutionPlace:
    """Place minimizing ``key``; near-ties resolved by leader backlog.

    On a symmetric machine many places predict (almost) the same time, and
    a pure first-wins argmin would pin every critical task to one core
    regardless of its queue depth.  When ``backlog`` is given, candidates
    within :data:`TIE_TOLERANCE` of the best value are re-ranked by the
    leader's current backlog — the natural tie-break any real
    implementation applies (the paper's PTT values dither enough to do
    this implicitly).
    """
    candidates: List[ExecutionPlace] = []
    best_value = float("inf")
    for place in places:
        value = key(place)
        if value < best_value:
            best_value = value
            candidates = [place]
        elif value == best_value:
            candidates.append(place)
    if not candidates:
        raise SchedulingError("no candidate execution places")
    winner = candidates[0]
    if backlog is None:
        return winner
    # Scatter only across places of the winning width: the tie-break must
    # never second-guess the molding decision itself, just avoid piling
    # every critical task onto one equally-fast core.
    threshold = best_value * (1.0 + TIE_TOLERANCE)
    tied = [
        p for p in places if p.width == winner.width and key(p) <= threshold
    ]

    def place_backlog(place: ExecutionPlace) -> float:
        # A moldable assembly cannot start until *every* member is free,
        # so the relevant load is the busiest member, not the leader.
        return max(
            backlog(core)
            for core in range(place.leader, place.leader + place.width)
        )

    return min(tied, key=lambda p: (place_backlog(p), p))


def local_search_cost(
    ptt: PerformanceTraceTable, machine: Machine, core: int
) -> ExecutionPlace:
    """Best width at ``core``'s aligned places, minimizing time x width."""
    candidates = [
        machine.local_place_for(core, w) for w in machine.widths_at(core)
    ]
    return _argmin_place(candidates, lambda p: ptt.predict(p) * p.width)


def global_search_cost(
    ptt: PerformanceTraceTable,
    machine: Machine,
    places: Optional[Sequence[ExecutionPlace]] = None,
    backlog: Optional[Backlog] = None,
) -> ExecutionPlace:
    """Best place machine-wide, minimizing parallel cost (DAM-C line 8)."""
    pool = machine.places if places is None else places
    return _argmin_place(pool, lambda p: ptt.predict(p) * p.width, backlog)


def global_search_performance(
    ptt: PerformanceTraceTable,
    machine: Machine,
    places: Optional[Sequence[ExecutionPlace]] = None,
    backlog: Optional[Backlog] = None,
) -> ExecutionPlace:
    """Best place machine-wide, minimizing predicted time (DAM-P line 11)."""
    pool = machine.places if places is None else places
    return _argmin_place(pool, lambda p: ptt.predict(p), backlog)


def width_one_places(machine: Machine) -> Sequence[ExecutionPlace]:
    """All single-core places (the DA scheduler's search domain)."""
    return [p for p in machine.places if p.width == 1]
