"""The paper's contribution: PTT-driven dynamic asymmetry scheduling.

* :mod:`repro.core.ptt` — the Performance Trace Table (§4.1.1): one table
  per task type, one entry per execution place, folded with a weighted
  average so the model tracks dynamic asymmetry without overreacting to
  isolated events.
* :mod:`repro.core.placement` — Algorithm 1's *local search* (mold the
  width, keep the core) and *global search* (sweep all places), minimizing
  either parallel cost (time x width) or pure predicted time.
* :mod:`repro.core.policies` — the seven scheduler configurations of
  Table 1 plus a dHEFT reference.
"""

from repro.core.ptt import PerformanceTraceTable, PttStore
from repro.core.placement import (
    global_search_cost,
    global_search_performance,
    local_search_cost,
)
from repro.core.policies import (
    DaScheduler,
    DamCScheduler,
    DamPScheduler,
    DheftScheduler,
    FaScheduler,
    FamCScheduler,
    RwsScheduler,
    RwsmCScheduler,
    SchedulerPolicy,
    make_scheduler,
    scheduler_feature_rows,
    SCHEDULER_NAMES,
)

__all__ = [
    "PerformanceTraceTable",
    "PttStore",
    "local_search_cost",
    "global_search_cost",
    "global_search_performance",
    "SchedulerPolicy",
    "RwsScheduler",
    "RwsmCScheduler",
    "FaScheduler",
    "FamCScheduler",
    "DaScheduler",
    "DamCScheduler",
    "DamPScheduler",
    "DheftScheduler",
    "make_scheduler",
    "scheduler_feature_rows",
    "SCHEDULER_NAMES",
]
