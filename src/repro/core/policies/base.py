"""Scheduler policy interface.

A policy is pure decision logic; the simulated runtime drives it through
four hooks mirroring the lifecycle of Figure 3:

1. :meth:`on_ready` — a task's dependencies were satisfied; the policy
   picks the WSQ it is pushed to (wake-up placement).
2. :meth:`choose_place` — a worker dequeued the task from a WSQ; the
   policy runs Algorithm 1 and returns the execution place.
3. :meth:`place_after_steal` — a thief stole the task; the policy re-runs
   its (local) search at the thief's core (Figure 3 steps 4-5).
4. :meth:`on_complete` — the leader observed the elapsed execution time;
   the policy trains its model (PTT update, Figure 3 step 8).

``allow_steal`` implements the steal-exemption of high-priority tasks.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.ptt import PerformanceTraceTable, PttStore
from repro.errors import SchedulingError
from repro.graph.task import Task
from repro.machine.topology import ExecutionPlace, Machine
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.rng import SeedLike, make_rng


class SchedulerPolicy(abc.ABC):
    """Base class of all scheduler configurations."""

    #: Short name as used in the paper's Table 1.
    name: str = "base"
    #: "n/a", "fixed" or "dynamic" — the asymmetry-awareness column.
    asymmetry: str = "n/a"
    #: Whether the policy molds task widths.
    moldability: bool = False
    #: "n/a", "cost" or "performance" — the priority-placement column.
    priority_placement: str = "n/a"

    def __init__(self, ptt_new_weight: int = 1, ptt_total_weight: int = 5) -> None:
        self.ptt_new_weight = int(ptt_new_weight)
        self.ptt_total_weight = int(ptt_total_weight)
        self.machine: Optional[Machine] = None
        self.ptt: Optional[PttStore] = None
        self.rng: Optional[np.random.Generator] = None
        self._clock = None
        self.backlog = None
        self.tracer: Tracer = NULL_TRACER

    # -- lifecycle ---------------------------------------------------------
    @property
    def uses_ptt(self) -> bool:
        """Whether this policy consults an online trace model."""
        return True

    def bind(
        self, machine: Machine, rng: SeedLike = 0, clock=None, backlog=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Attach the policy to a machine before a run.

        ``clock`` is a zero-argument callable returning simulated time
        (needed by finish-time estimators like dHEFT).  ``backlog`` is an
        optional per-core load estimate used to break near-ties in global
        searches.  ``tracer`` (default: the shared null tracer) is carried
        into the policy's PTT store so cell updates become trace events;
        it never influences decisions.
        """
        self.machine = machine
        self.rng = make_rng(rng)
        self._clock = clock or (lambda: 0.0)
        self.backlog = backlog
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.uses_ptt:
            self.ptt = PttStore(
                machine, self.ptt_new_weight, self.ptt_total_weight,
                tracer=self.tracer,
            )
        else:
            self.ptt = None

    def _require_bound(self) -> Machine:
        if self.machine is None:
            raise SchedulingError(f"{self.name} policy was not bound to a machine")
        return self.machine

    def table(self, task: Task) -> PerformanceTraceTable:
        """The PTT of ``task``'s type."""
        if self.ptt is None:
            raise SchedulingError(f"{self.name} does not maintain a PTT")
        return self.ptt.table(task.type_name)

    # -- decision hooks ------------------------------------------------------
    def on_ready(self, task: Task, waker_core: int) -> int:
        """WSQ (by core id) that a just-released task is pushed to.

        Default: the waker's local queue (data reuse with the parent).
        """
        return waker_core

    @abc.abstractmethod
    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        """Execution place for ``task`` dequeued by ``core`` (Algorithm 1)."""

    def place_after_steal(self, task: Task, thief_core: int) -> ExecutionPlace:
        """Placement re-decision after a successful steal.

        Default: same rule as a normal dequeue at the thief's core.
        """
        return self.choose_place(task, thief_core)

    def batched_query(self, task: Task) -> Optional[tuple]:
        """Lockstep batching handle for ``task``'s placement, or ``None``.

        When the placement decision is a pure function of the task
        type's PTT row (plus the shared backlog tie-break), a policy may
        declare it as ``(scan_kind, type_name)`` — ``scan_kind`` one of
        ``"cost"`` / ``"perf"`` / ``"perf_w1"`` — and the lockstep batch
        driver (:mod:`repro.core.lockstep`) answers it together with the
        other replicates' identical queries in one runs-axis numpy pass,
        bit-identical to the scalar search.  ``None`` (the default)
        means "answer synchronously via :meth:`choose_place` /
        :meth:`place_after_steal`".  A non-``None`` answer must be valid
        at *both* decision sites; that holds here because
        :meth:`place_after_steal` delegates to :meth:`choose_place`, and
        subclasses that override either must keep the contract.
        """
        return None

    def allow_steal(self, task: Task) -> bool:
        """Whether ``task`` may be stolen from a WSQ.

        Default (criticality-aware policies): high-priority tasks are
        steal-exempt so their placement decision is honored.
        """
        return not task.is_high_priority

    def on_complete(self, task: Task, place: ExecutionPlace, observed: float) -> None:
        """Train the model with the leader-observed elapsed time."""
        if self.ptt is not None:
            self.ptt.table(task.type_name).update(place, observed)

    # -- reporting ------------------------------------------------------------
    def feature_row(self) -> tuple:
        """(name, asymmetry, moldability, priority placement) — Table 1."""
        return (
            self.name,
            self.asymmetry,
            "Yes" if self.moldability else "No",
            self.priority_placement,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
