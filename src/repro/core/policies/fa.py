"""Fixed-asymmetry criticality schedulers (Table 1 rows 3-4).

FA mirrors prior work (Critical-Path-on-a-Processor, CATS): it assumes the
platform's asymmetry is *static* and strictly maps high-priority tasks to
the statically fastest cores — which is exactly what goes wrong when those
cores suffer interference.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.placement import local_search_cost
from repro.core.policies.base import SchedulerPolicy
from repro.graph.task import Task
from repro.machine.topology import ExecutionPlace, Machine
from repro.util.rng import SeedLike


class FaScheduler(SchedulerPolicy):
    """FA — high-priority tasks pinned round-robin to the fastest cores."""

    name = "FA"
    asymmetry = "fixed"
    moldability = False
    priority_placement = "n/a"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._fast_cores: Tuple[int, ...] = ()
        self._rr = 0

    @property
    def uses_ptt(self) -> bool:
        return False

    def bind(
        self, machine: Machine, rng: SeedLike = 0, clock=None, backlog=None,
        tracer=None,
    ) -> None:
        super().bind(machine, rng, clock, backlog, tracer)
        top = machine.max_base_speed()
        self._fast_cores = tuple(
            c.core_id for c in machine.cores if c.base_speed == top
        )
        self._rr = 0

    def fast_cores(self) -> Tuple[int, ...]:
        """The statically fastest cores (assignment targets)."""
        return self._fast_cores

    def on_ready(self, task: Task, waker_core: int) -> int:
        if task.is_high_priority:
            core = self._fast_cores[self._rr % len(self._fast_cores)]
            self._rr += 1
            return core
        return waker_core

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        self._require_bound()
        return ExecutionPlace(core, 1)


class FamCScheduler(FaScheduler):
    """FAM-C — FA plus moldability targeting parallel cost.

    High-priority tasks stay pinned to the fast cluster, but all tasks mold
    their width through a PTT-backed local search.
    """

    name = "FAM-C"
    asymmetry = "fixed"
    moldability = True
    priority_placement = "cost"

    @property
    def uses_ptt(self) -> bool:
        return True

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        machine = self._require_bound()
        return local_search_cost(self.table(task), machine, core)
