"""dHEFT reference scheduler (related work, paper §6).

dHEFT applies HEFT's earliest-finish-time rule but discovers task loads at
runtime instead of knowing them upfront: it keeps a per-(type, core) mean
of observed execution times and a per-core estimated-available-time, and
maps every ready task — regardless of priority — to the single core with
the earliest estimated finish.  Unknown (type, core) pairs are explored
first.  Tasks are not stealable (dHEFT performs full mapping).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.policies.base import SchedulerPolicy
from repro.graph.task import Task
from repro.machine.topology import ExecutionPlace, Machine
from repro.util.rng import SeedLike


class DheftScheduler(SchedulerPolicy):
    """dHEFT — dynamic earliest-finish-time mapping to single cores."""

    name = "dHEFT"
    asymmetry = "dynamic"
    moldability = False
    priority_placement = "n/a"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        #: (type, core) -> (mean observed time, samples)
        self._profile: Dict[Tuple[str, int], Tuple[float, int]] = {}
        self._available: List[float] = []

    @property
    def uses_ptt(self) -> bool:
        # dHEFT keeps its own mean-based model, not a PTT.
        return False

    def bind(
        self, machine: Machine, rng: SeedLike = 0, clock=None, backlog=None,
        tracer=None,
    ) -> None:
        super().bind(machine, rng, clock, backlog, tracer)
        self._profile = {}
        self._available = [0.0] * machine.num_cores

    def _estimate(self, type_name: str, core: int) -> Tuple[float, bool]:
        """(estimated seconds, known?) for a task type on a core."""
        entry = self._profile.get((type_name, core))
        if entry is None:
            return 0.0, False
        return entry[0], True

    def _pick_core(self, task: Task) -> int:
        machine = self._require_bound()
        now = self._clock()
        best_core = 0
        best_finish = float("inf")
        for core in range(machine.num_cores):
            estimate, known = self._estimate(task.type_name, core)
            if not known:
                # Unexplored pair: treat as immediately attractive so every
                # core gets sampled, preferring the least-loaded one.
                finish = max(now, self._available[core])
            else:
                finish = max(now, self._available[core]) + estimate
            if finish < best_finish:
                best_finish = finish
                best_core = core
        estimate, known = self._estimate(task.type_name, best_core)
        self._available[best_core] = max(now, self._available[best_core]) + (
            estimate if known else 0.0
        )
        return best_core

    def on_ready(self, task: Task, waker_core: int) -> int:
        return self._pick_core(task)

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        self._require_bound()
        return ExecutionPlace(core, 1)

    def allow_steal(self, task: Task) -> bool:
        return False

    def on_complete(self, task: Task, place: ExecutionPlace, observed: float) -> None:
        key = (task.type_name, place.leader)
        mean, n = self._profile.get(key, (0.0, 0))
        self._profile[key] = ((mean * n + observed) / (n + 1), n + 1)
