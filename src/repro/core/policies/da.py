"""Dynamic asymmetry schedulers — the paper's proposal (Table 1 rows 5-7).

All three use the online PTT to detect dynamic asymmetry.  They differ in
how high-priority (critical) tasks are placed:

* ``DA`` — global search over *single-core* places, no moldability.
* ``DAM-C`` — global search minimizing parallel cost ``time x width``
  (Algorithm 1, line 8).
* ``DAM-P`` — global search minimizing predicted time (Algorithm 1,
  line 11), trading resource usage for critical-path speed; preferable at
  low DAG parallelism.

Low-priority tasks keep their core (data reuse) — rigid width 1 under DA,
width-molded by local search under DAM-C/DAM-P — and stay stealable.

All children are released into the waker's local WSQ (Figure 3: the core
completing a task wakes its dependents); the waker, having just freed up,
dequeues the critical child immediately (it is pushed last, LIFO pops it
first), runs Algorithm 1 and inserts the assembly at the head of the chosen
place's AQs.  High-priority tasks are steal-exempt so this decision is
honored.
"""

from __future__ import annotations

from repro.core.placement import (
    global_search_cost,
    global_search_performance,
    local_search_cost,
    width_one_places,
)
from repro.core.policies.base import SchedulerPolicy
from repro.graph.task import Task
from repro.machine.topology import ExecutionPlace, Machine
from repro.util.rng import SeedLike


class DaScheduler(SchedulerPolicy):
    """DA — dynamic asymmetry awareness without moldability."""

    name = "DA"
    asymmetry = "dynamic"
    moldability = False
    priority_placement = "n/a"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._single_places = ()

    def bind(
        self, machine: Machine, rng: SeedLike = 0, clock=None, backlog=None,
        tracer=None,
    ) -> None:
        super().bind(machine, rng, clock, backlog, tracer)
        self._single_places = tuple(width_one_places(machine))

    def _best_single_core(self, task: Task) -> ExecutionPlace:
        return global_search_performance(
            self.table(task),
            self._require_bound(),
            self._single_places,
            backlog=self.backlog,
        )

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        self._require_bound()
        if task.is_high_priority:
            return self._best_single_core(task)
        return ExecutionPlace(core, 1)

    def batched_query(self, task: Task):
        # High-priority placement is the restricted width-one performance
        # scan over the task type's PTT row — batchable across runs.
        # Low-priority placement depends on the dequeuing core, so it
        # stays synchronous (and costs nothing anyway).
        if task.is_high_priority:
            return ("perf_w1", task.type_name)
        return None


class DamCScheduler(SchedulerPolicy):
    """DAM-C — dynamic asymmetry + moldability, targeting parallel cost.

    ``scalable_search=True`` switches the global search to the two-stage
    per-cluster index of :mod:`repro.core.scalable` (the paper's §4.1.1
    future-work item); the decisions are identical, the search touches
    ``O(clusters + one cluster)`` entries instead of every place.
    """

    name = "DAM-C"
    asymmetry = "dynamic"
    moldability = True
    priority_placement = "cost"

    def __init__(self, scalable_search: bool = False, **kwargs) -> None:
        super().__init__(**kwargs)
        self.scalable_search = bool(scalable_search)
        self._indexes: dict = {}

    def bind(self, machine, rng=0, clock=None, backlog=None, tracer=None) -> None:
        super().bind(machine, rng, clock, backlog, tracer)
        self._indexes = {}

    def _index(self, task: Task):
        from repro.core.scalable import ScalableSearchIndex

        index = self._indexes.get(task.type_name)
        if index is None:
            index = ScalableSearchIndex(self._require_bound(), self.table(task))
            index.observe()
            self._indexes[task.type_name] = index
        return index

    def _global(self, task: Task) -> ExecutionPlace:
        if self.scalable_search:
            return self._index(task).search_cost(backlog=self.backlog)
        return global_search_cost(
            self.table(task), self._require_bound(), backlog=self.backlog
        )

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        machine = self._require_bound()
        if task.is_high_priority:
            return self._global(task)
        return local_search_cost(self.table(task), machine, core)

    def batched_query(self, task: Task):
        # The global cost search reads only the type's PTT row; the
        # scalable two-stage index keeps incremental per-run state the
        # batch driver does not model, so it answers synchronously.
        if task.is_high_priority and not self.scalable_search:
            return ("cost", task.type_name)
        return None


class DamPScheduler(DamCScheduler):
    """DAM-P — dynamic asymmetry + moldability, targeting performance."""

    name = "DAM-P"
    asymmetry = "dynamic"
    moldability = True
    priority_placement = "performance"

    def _global(self, task: Task) -> ExecutionPlace:
        if self.scalable_search:
            return self._index(task).search_performance(backlog=self.backlog)
        return global_search_performance(
            self.table(task), self._require_bound(), backlog=self.backlog
        )

    def batched_query(self, task: Task):
        if task.is_high_priority and not self.scalable_search:
            return ("perf", task.type_name)
        return None
