"""A pin-everything scheduler, used to model co-runner applications.

Places every task rigidly on one fixed core — the shape of the paper's
co-running application, "a single chain of tasks ... on core 0".
"""

from __future__ import annotations

from repro.core.policies.base import SchedulerPolicy
from repro.errors import ConfigurationError
from repro.graph.task import Task
from repro.machine.topology import ExecutionPlace, Machine
from repro.util.rng import SeedLike


class PinnedScheduler(SchedulerPolicy):
    """Every task runs at ``(core, 1)``; nothing is stealable."""

    name = "Pinned"
    asymmetry = "n/a"
    moldability = False
    priority_placement = "n/a"

    def __init__(self, core: int, **kwargs) -> None:
        super().__init__(**kwargs)
        if core < 0:
            raise ConfigurationError(f"core must be >= 0, got {core}")
        self.core = int(core)

    @property
    def uses_ptt(self) -> bool:
        return False

    def bind(self, machine: Machine, rng: SeedLike = 0, clock=None,
             backlog=None, tracer=None) -> None:
        super().bind(machine, rng, clock, backlog, tracer)
        machine._check_core(self.core)

    def on_ready(self, task: Task, waker_core: int) -> int:
        return self.core

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        self._require_bound()
        return ExecutionPlace(self.core, 1)

    def allow_steal(self, task: Task) -> bool:
        return False
