"""Scheduler registry and the Table 1 feature matrix."""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.core.policies.base import SchedulerPolicy
from repro.core.policies.da import DaScheduler, DamCScheduler, DamPScheduler
from repro.core.policies.fa import FaScheduler, FamCScheduler
from repro.core.policies.heft import DheftScheduler
from repro.core.policies.rws import RwsScheduler, RwsmCScheduler
from repro.errors import ConfigurationError

_REGISTRY: Dict[str, Type[SchedulerPolicy]] = {
    "rws": RwsScheduler,
    "rwsm-c": RwsmCScheduler,
    "fa": FaScheduler,
    "fam-c": FamCScheduler,
    "da": DaScheduler,
    "dam-c": DamCScheduler,
    "dam-p": DamPScheduler,
    "dheft": DheftScheduler,
}

#: Canonical evaluation order (paper Table 1).
SCHEDULER_NAMES: Tuple[str, ...] = (
    "rws",
    "rwsm-c",
    "fa",
    "fam-c",
    "da",
    "dam-c",
    "dam-p",
)


def make_scheduler(name: str, **kwargs) -> SchedulerPolicy:
    """Instantiate a scheduler by its Table 1 name (case-insensitive).

    Extra keyword arguments are forwarded to the policy constructor
    (e.g. ``ptt_new_weight``/``ptt_total_weight`` for the §5.3 sweep).
    """
    key = name.strip().lower()
    cls = _REGISTRY.get(key)
    if cls is None:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return cls(**kwargs)


def scheduler_feature_rows() -> List[tuple]:
    """Rows of the Table 1 feature matrix, in paper order."""
    return [make_scheduler(name).feature_row() for name in SCHEDULER_NAMES]
