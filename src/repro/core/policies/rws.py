"""Random work stealing, with and without moldability (Table 1 rows 1-2)."""

from __future__ import annotations

from repro.core.placement import local_search_cost
from repro.core.policies.base import SchedulerPolicy
from repro.graph.task import Task
from repro.machine.topology import ExecutionPlace


class RwsScheduler(SchedulerPolicy):
    """RWS — decentralized greedy work stealing.

    Child tasks are pushed to the local queue irrespective of priority, all
    tasks may be stolen, every task runs rigidly on a single core.  No
    performance model is maintained.
    """

    name = "RWS"
    asymmetry = "n/a"
    moldability = False
    priority_placement = "n/a"

    @property
    def uses_ptt(self) -> bool:
        return False

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        self._require_bound()
        return ExecutionPlace(core, 1)

    def allow_steal(self, task: Task) -> bool:
        # RWS has no notion of priority: everything is stealable.
        return True


class RwsmCScheduler(SchedulerPolicy):
    """RWSM-C — random work stealing plus moldability targeting cost.

    Like RWS, but a PTT is maintained and every dequeued task performs a
    local width search minimizing parallel cost (time x width).  Priority
    is still ignored, so tasks remain stealable.
    """

    name = "RWSM-C"
    asymmetry = "n/a"
    moldability = True
    priority_placement = "cost"

    def choose_place(self, task: Task, core: int) -> ExecutionPlace:
        machine = self._require_bound()
        return local_search_cost(self.table(task), machine, core)

    def allow_steal(self, task: Task) -> bool:
        return True
