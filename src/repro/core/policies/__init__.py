"""Scheduler configurations (paper Table 1) plus a dHEFT reference."""

from repro.core.policies.base import SchedulerPolicy
from repro.core.policies.rws import RwsScheduler, RwsmCScheduler
from repro.core.policies.fa import FaScheduler, FamCScheduler
from repro.core.policies.da import DaScheduler, DamCScheduler, DamPScheduler
from repro.core.policies.heft import DheftScheduler
from repro.core.policies.registry import (
    SCHEDULER_NAMES,
    make_scheduler,
    scheduler_feature_rows,
)

__all__ = [
    "SchedulerPolicy",
    "RwsScheduler",
    "RwsmCScheduler",
    "FaScheduler",
    "FamCScheduler",
    "DaScheduler",
    "DamCScheduler",
    "DamPScheduler",
    "DheftScheduler",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "scheduler_feature_rows",
]
