"""Record/replay of interference traces.

An :class:`InterferenceTrace` is an ordered list of timed platform actions
(share changes, frequency changes, demand changes).  Traces serialize to
plain dictionaries so custom scenarios can be stored with experiment
results and replayed bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.interference.base import InterferenceScenario
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.sim.environment import Environment


@dataclass(frozen=True)
class SetCpuShare:
    """At ``time``, set the runtime's CPU share on ``cores`` to ``share``."""

    time: float
    cores: Tuple[int, ...]
    share: float

    def apply(self, speed: SpeedModel) -> None:
        speed.set_cpu_share(self.cores, self.share)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "cpu_share",
            "time": self.time,
            "cores": list(self.cores),
            "share": self.share,
        }


@dataclass(frozen=True)
class SetFreqScale:
    """At ``time``, set the DVFS frequency scale on ``cores``."""

    time: float
    cores: Tuple[int, ...]
    scale: float

    def apply(self, speed: SpeedModel) -> None:
        speed.set_freq_scale(self.cores, self.scale)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "freq_scale",
            "time": self.time,
            "cores": list(self.cores),
            "scale": self.scale,
        }


@dataclass(frozen=True)
class AddDemand:
    """At ``time``, add (or with negative ``amount``, remove) bandwidth demand."""

    time: float
    domain: str
    amount: float

    def apply(self, speed: SpeedModel) -> None:
        if self.amount >= 0:
            speed.add_external_demand(self.domain, self.amount)
        else:
            speed.remove_external_demand(self.domain, -self.amount)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "demand",
            "time": self.time,
            "domain": self.domain,
            "amount": self.amount,
        }


Action = Union[SetCpuShare, SetFreqScale, AddDemand]


class InterferenceTrace:
    """A time-ordered list of platform actions."""

    def __init__(self, actions: Sequence[Action] = ()) -> None:
        self.actions: List[Action] = sorted(actions, key=lambda a: a.time)
        for action in self.actions:
            if action.time < 0:
                raise ConfigurationError(
                    f"action time must be >= 0, got {action.time}"
                )

    def append(self, action: Action) -> None:
        if self.actions and action.time < self.actions[-1].time:
            raise ConfigurationError(
                "appended action is earlier than the trace tail; "
                "construct the trace from the full list instead"
            )
        self.actions.append(action)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialize to a list of plain dictionaries (JSON-friendly)."""
        return [a.to_dict() for a in self.actions]

    @classmethod
    def from_dicts(cls, items: Sequence[Dict[str, Any]]) -> "InterferenceTrace":
        """Rebuild a trace from :meth:`to_dicts` output."""
        actions: List[Action] = []
        for item in items:
            kind = item.get("kind")
            if kind == "cpu_share":
                actions.append(
                    SetCpuShare(item["time"], tuple(item["cores"]), item["share"])
                )
            elif kind == "freq_scale":
                actions.append(
                    SetFreqScale(item["time"], tuple(item["cores"]), item["scale"])
                )
            elif kind == "demand":
                actions.append(
                    AddDemand(item["time"], item["domain"], item["amount"])
                )
            else:
                raise ConfigurationError(f"unknown action kind {kind!r}")
        return cls(actions)

    def __len__(self) -> int:
        return len(self.actions)


class TraceRecorder:
    """Records every platform action applied to a speed model.

    Attach before installing scenarios; afterwards :meth:`trace` returns an
    :class:`InterferenceTrace` that replays the captured interference
    bit-identically (e.g. to re-run a different scheduler under the exact
    same perturbation, or to persist a scenario with experiment results).
    """

    def __init__(self) -> None:
        self._actions: List[Action] = []
        self._attached = False

    def attach(self, env: Environment, speed: SpeedModel) -> None:
        """Wrap ``speed``'s mutators so every call is logged with its time."""
        if self._attached:
            raise ConfigurationError("recorder already attached")
        self._attached = True
        orig_share = speed.set_cpu_share
        orig_freq = speed.set_freq_scale
        orig_add = speed.add_external_demand
        orig_remove = speed.remove_external_demand

        def share(cores, value):
            self._actions.append(SetCpuShare(env.now, tuple(cores), value))
            orig_share(cores, value)

        def freq(cores, value):
            self._actions.append(SetFreqScale(env.now, tuple(cores), value))
            orig_freq(cores, value)

        def add(domain, amount):
            self._actions.append(AddDemand(env.now, domain, amount))
            orig_add(domain, amount)

        def remove(domain, amount):
            self._actions.append(AddDemand(env.now, domain, -amount))
            orig_remove(domain, amount)

        speed.set_cpu_share = share  # type: ignore[method-assign]
        speed.set_freq_scale = freq  # type: ignore[method-assign]
        speed.add_external_demand = add  # type: ignore[method-assign]
        speed.remove_external_demand = remove  # type: ignore[method-assign]

    def __len__(self) -> int:
        return len(self._actions)

    def trace(self) -> InterferenceTrace:
        """The recorded actions as a replayable trace."""
        return InterferenceTrace(list(self._actions))


class TraceScenario(InterferenceScenario):
    """Replays an :class:`InterferenceTrace` against a simulation."""

    def __init__(self, trace: InterferenceTrace) -> None:
        self.trace = trace

    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> None:
        if not self.trace.actions:
            return

        def _replay():
            elapsed = 0.0
            for action in self.trace.actions:
                if action.time > elapsed:
                    yield env.timeout(action.time - elapsed)
                    elapsed = action.time
                action.apply(speed)

        env.process(_replay(), name="trace-replay")
