"""Interference scenarios (paper §5): the dynamic-asymmetry sources.

A scenario is installed onto a (environment, speed model) pair and then
manipulates per-core CPU shares, frequency scales and memory-bandwidth
demand over simulated time.  The runtime is never notified — exactly as in
the paper, it can only observe the consequences through task elapsed
times.
"""

from repro.interference.base import InterferenceScenario, NullScenario
from repro.interference.corunner import CorunnerInterference
from repro.interference.dvfs_events import DvfsInterference
from repro.interference.composite import CompositeScenario
from repro.interference.live import LiveCorunner
from repro.interference.traces import (
    AddDemand,
    InterferenceTrace,
    SetFreqScale,
    SetCpuShare,
    TraceRecorder,
    TraceScenario,
)

__all__ = [
    "InterferenceScenario",
    "NullScenario",
    "CorunnerInterference",
    "DvfsInterference",
    "CompositeScenario",
    "LiveCorunner",
    "InterferenceTrace",
    "TraceRecorder",
    "TraceScenario",
    "SetCpuShare",
    "SetFreqScale",
    "AddDemand",
]
