"""Composition of interference scenarios."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.interference.base import InterferenceScenario
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.sim.environment import Environment


class CompositeScenario(InterferenceScenario):
    """Installs several scenarios together (e.g. DVFS plus a co-runner)."""

    def __init__(self, scenarios: Sequence[InterferenceScenario]) -> None:
        self.scenarios: Tuple[InterferenceScenario, ...] = tuple(scenarios)

    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> None:
        for scenario in self.scenarios:
            scenario.install(env, speed, machine)
