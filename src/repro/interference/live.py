"""Live co-runner: an actual second application sharing the machine.

Where :class:`~repro.interference.corunner.CorunnerInterference` *models*
the co-runner's effect as a CPU-share factor plus bandwidth demand,
:class:`LiveCorunner` runs the real thing: a second
:class:`~repro.runtime.executor.SimulatedRuntime` executes an endless
chain of kernel tasks pinned to the chosen core, sharing the foreground's
speed model.  The OS time-slicing between the two applications emerges
from the speed model's per-core multiplexing, and the co-runner's memory
traffic is whatever its kernel's cost model says — nothing is asserted,
everything is produced by execution, exactly like the paper's setup
(§4.2.2: "a single chain of tasks composed of matrix multiplication
kernels").
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies.pinned import PinnedScheduler
from repro.errors import ConfigurationError
from repro.graph.dag import TaskGraph
from repro.graph.task import Task
from repro.interference.base import InterferenceScenario
from repro.kernels.base import KernelModel
from repro.kernels.matmul import MatMulKernel
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import SimulatedRuntime
from repro.sim.environment import Environment


def _endless_chain(kernel: KernelModel, name: str) -> TaskGraph:
    """A chain DAG that regrows itself forever through spawn hooks."""
    graph = TaskGraph(name)

    def spawn(g: TaskGraph, task: Task) -> None:
        g.add_task(kernel, deps=[task], spawn=spawn,
                   metadata={"corunner": True})

    graph.add_task(kernel, spawn=spawn, metadata={"corunner": True})
    return graph


class LiveCorunner(InterferenceScenario):
    """A genuinely executing co-runner application.

    Parameters
    ----------
    core:
        The core the co-runner is pinned to.
    kernel:
        Kernel of the chain's tasks; a matmul kernel gives CPU
        interference, a copy kernel memory interference (paper §5.1).
    start:
        Simulated time at which the co-runner begins executing.

    After installation, :attr:`runtime` exposes the background runtime
    (e.g. to count how many co-runner tasks completed).
    """

    def __init__(
        self,
        core: int = 0,
        kernel: Optional[KernelModel] = None,
        start: float = 0.0,
    ) -> None:
        if core < 0:
            raise ConfigurationError(f"core must be >= 0, got {core}")
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.core = int(core)
        self.kernel = kernel or MatMulKernel()
        self.start = float(start)
        self.runtime: Optional[SimulatedRuntime] = None

    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> None:
        graph = _endless_chain(self.kernel, f"corunner-c{self.core}")
        self.runtime = SimulatedRuntime(
            env,
            machine,
            graph,
            PinnedScheduler(self.core),
            # The co-runner only ever uses one core; generous max_time
            # since it never finishes by design.
            config=RuntimeConfig(max_time=1e12),
            speed=speed,
            name=f"corunner-c{self.core}",
        )
        if self.start > 0:
            def _delayed():
                yield env.timeout(self.start)
                self.runtime.start()
            env.process(_delayed(), name="corunner-start")
        else:
            self.runtime.start()

    @property
    def tasks_completed(self) -> int:
        """Co-runner tasks finished so far."""
        if self.runtime is None:
            return 0
        return self.runtime.graph.completed_tasks
