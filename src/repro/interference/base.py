"""Interference scenario interface."""

from __future__ import annotations

import abc

from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.sim.environment import Environment


class InterferenceScenario(abc.ABC):
    """Something that perturbs the platform's performance over time."""

    @abc.abstractmethod
    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> None:
        """Attach the scenario's processes/effects to a simulation."""


class NullScenario(InterferenceScenario):
    """No interference — the baseline environment."""

    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> None:
        return None
