"""Co-running application interference (paper §5.1).

The paper's co-runner is a single chain of kernel tasks pinned to one or a
few cores.  Its observable effects on the foreground runtime are (a) the
OS time-slices the pinned cores between the two applications, roughly
halving the runtime's share there, and (b) the co-runner's memory traffic
consumes bandwidth on its socket's domain.  ``CorunnerInterference`` models
exactly those two effects over a time window; factory helpers configure it
like the paper's matmul (CPU-interference) and copy (memory-interference)
chains.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError, RuntimeStateError
from repro.interference.base import InterferenceScenario
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.sim.environment import Environment


class CorunnerInterference(InterferenceScenario):
    """A co-running application occupying cores over ``[start, end)``.

    Parameters
    ----------
    cores:
        Cores the co-runner is pinned to.
    cpu_share:
        The share *left to the runtime* on those cores while the co-runner
        is active (0.5 = fair time-slicing with one competing thread).
    memory_demand:
        Bandwidth demand units the co-runner adds to each affected memory
        domain (0 for a compute-bound co-runner, large for a streaming
        one).
    start / end:
        Activation window in simulated seconds; ``end=None`` means "for
        the rest of the run".  Use :meth:`activate`/:meth:`deactivate`
        for event-driven control instead (pass ``start=None``).
    """

    def __init__(
        self,
        cores: Sequence[int],
        cpu_share: float = 0.5,
        memory_demand: float = 0.0,
        start: Optional[float] = 0.0,
        end: Optional[float] = None,
    ) -> None:
        if not cores:
            raise ConfigurationError("co-runner needs at least one core")
        if not (0 < cpu_share <= 1.0):
            raise ConfigurationError(
                f"cpu_share must be in (0, 1], got {cpu_share}"
            )
        if memory_demand < 0:
            raise ConfigurationError("memory_demand must be >= 0")
        if start is not None and start < 0:
            raise ConfigurationError("start must be >= 0")
        if end is not None and (start is None or end < start):
            raise ConfigurationError("need start <= end")
        self.cores: Tuple[int, ...] = tuple(cores)
        self.cpu_share = float(cpu_share)
        self.memory_demand = float(memory_demand)
        self.start = start
        self.end = end
        self._speed: Optional[SpeedModel] = None
        self._domains: Tuple[str, ...] = ()
        self._active = False

    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> None:
        self._speed = speed
        self._domains = tuple(sorted({machine.domain_of(c) for c in self.cores}))
        if self.start is not None:
            env.process(self._window(env), name="corunner")

    def _window(self, env: Environment):
        if self.start > 0:
            yield env.timeout(self.start)
        self.activate()
        if self.end is not None:
            yield env.timeout(self.end - self.start)
            self.deactivate()

    # -- event-driven control -------------------------------------------
    def activate(self) -> None:
        """Apply the co-runner's effects now."""
        if self._speed is None:
            raise RuntimeStateError("scenario not installed")
        if self._active:
            return
        self._active = True
        # One batched transition: the CPU-share change and the bandwidth
        # demand of every affected domain re-time in-flight work in a
        # single grouped pass instead of 1 + len(domains) passes.
        with self._speed.batch():
            self._speed.set_cpu_share(self.cores, self.cpu_share)
            if self.memory_demand > 0:
                for domain in self._domains:
                    self._speed.add_external_demand(domain, self.memory_demand)

    def deactivate(self) -> None:
        """Remove the co-runner's effects now."""
        if self._speed is None:
            raise RuntimeStateError("scenario not installed")
        if not self._active:
            return
        self._active = False
        with self._speed.batch():
            self._speed.set_cpu_share(self.cores, 1.0)
            if self.memory_demand > 0:
                for domain in self._domains:
                    self._speed.remove_external_demand(domain, self.memory_demand)

    @property
    def active(self) -> bool:
        return self._active

    # -- paper-configured factories ----------------------------------------
    @classmethod
    def matmul_chain(
        cls,
        cores: Sequence[int],
        start: Optional[float] = 0.0,
        end: Optional[float] = None,
    ) -> "CorunnerInterference":
        """A compute-bound co-runner (chain of matmul tasks): CPU interference."""
        return cls(cores, cpu_share=0.5, memory_demand=0.3, start=start, end=end)

    @classmethod
    def copy_chain(
        cls,
        cores: Sequence[int],
        start: Optional[float] = 0.0,
        end: Optional[float] = None,
    ) -> "CorunnerInterference":
        """A streaming co-runner (chain of copy tasks): memory interference."""
        return cls(cores, cpu_share=0.5, memory_demand=3.0, start=start, end=end)
