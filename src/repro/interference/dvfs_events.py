"""DVFS interference scenario (paper §5.2)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.interference.base import InterferenceScenario
from repro.machine.dvfs import DvfsGovernor, PeriodicSquareWave
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.sim.environment import Environment


class DvfsInterference(InterferenceScenario):
    """Periodic frequency toggling on a set of cores.

    Defaults reproduce §5.2: the fast (Denver) cluster alternates between
    its highest and lowest frequency (2035 MHz / 345 MHz) with a 10 s full
    period.  When ``cores`` is None the statically fastest cluster is
    targeted, matching the paper's setup on any machine preset.
    """

    def __init__(
        self,
        cores: Optional[Sequence[int]] = None,
        wave: PeriodicSquareWave = PeriodicSquareWave(),
        until: Optional[float] = None,
    ) -> None:
        if cores is not None and not cores:
            raise ConfigurationError("cores must be None or non-empty")
        self.cores: Optional[Tuple[int, ...]] = (
            tuple(cores) if cores is not None else None
        )
        self.wave = wave
        self.until = until
        self.governor: Optional[DvfsGovernor] = None

    def install(
        self, env: Environment, speed: SpeedModel, machine: Machine
    ) -> None:
        cores = self.cores
        if cores is None:
            top = machine.max_base_speed()
            cores = tuple(
                c.core_id for c in machine.cores if c.base_speed == top
            )
        self.governor = DvfsGovernor(
            env, speed, cores, wave=self.wave, until=self.until
        )
