"""Module entry point: ``python -m repro.profile <target>``."""

import sys

from repro.profile.cli import main

if __name__ == "__main__":
    sys.exit(main())
