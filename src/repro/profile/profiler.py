"""The deterministic run profiler: phases + cProfile + flamegraph.

:class:`Profiler.run` executes a callable under

* a :class:`~repro.profile.phases.PhaseTimer` (installed process-wide,
  so every runtime / speed model / workload builder constructed inside
  the call attributes its wall time to the dag-build / sim-loop /
  policy-search / speed-retime / metrics buckets), and
* optionally ``cProfile`` (deterministic tracing), from which per-
  function hotspots and a collapsed-stack flamegraph are derived.

cProfile's tracing slows everything roughly uniformly, so the phase
*fractions* of a traced run stay meaningful while the absolute seconds
are inflated; pass ``cprofile=False`` for honest absolute phase timings
(what ``BENCH_profile.json`` records).
"""

from __future__ import annotations

import cProfile
import json
import pstats
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.profile.flamegraph import collapse_stats, validate_collapsed, write_collapsed
from repro.profile.phases import PhaseTimer, phase_accounting


@dataclass
class ProfileReport:
    """Everything one profiled invocation produced."""

    label: str
    wall: float
    breakdown: Dict[str, object]
    #: ``(function label, calls, tottime, cumtime)`` rows, tottime-sorted.
    top: List[tuple] = field(default_factory=list)
    collapsed: List[str] = field(default_factory=list)
    _stats: Optional[pstats.Stats] = None

    def render(self, top_n: int = 15) -> str:
        """Human-readable phase table plus the hottest functions."""
        lines = [f"profile: {self.label} — wall {self.wall:.3f}s"]
        phases = self.breakdown.get("phases", {})
        if phases:
            width = max(len(name) for name in phases)
            lines.append(f"  {'phase'.ljust(width)}  seconds   share  enters")
            for name, row in phases.items():
                lines.append(
                    f"  {name.ljust(width)}  {row['seconds']:7.3f}  "
                    f"{row['fraction']:5.1%}  {row['enters']:6d}"
                )
        notes = self.breakdown.get("notes")
        if notes:
            lines.append(f"  notes: {json.dumps(notes, sort_keys=True)}")
        if self.top:
            lines.append(f"  top {min(top_n, len(self.top))} by own time:")
            for label, calls, tottime, cumtime in self.top[:top_n]:
                lines.append(
                    f"    {tottime:8.4f}s own {cumtime:8.4f}s cum "
                    f"{calls:>8d}x  {label}"
                )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "wall": self.wall,
            "breakdown": self.breakdown,
            "top": [list(row) for row in self.top[:40]],
        }

    def write(self, out_dir) -> Dict[str, str]:
        """Write ``phases.json`` / ``profile.collapsed`` / ``profile.pstats``.

        Returns the paths written, keyed by artifact kind.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written: Dict[str, str] = {}
        phases_path = out / "phases.json"
        with open(phases_path, "w") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)
        written["phases"] = str(phases_path)
        if self.collapsed:
            collapsed_path = out / "profile.collapsed"
            write_collapsed(collapsed_path, self.collapsed)
            written["collapsed"] = str(collapsed_path)
        if self._stats is not None:
            pstats_path = out / "profile.pstats"
            self._stats.dump_stats(str(pstats_path))
            written["pstats"] = str(pstats_path)
        return written


class Profiler:
    """Profile one callable; see the module docstring for the layers."""

    def __init__(self, cprofile: bool = True) -> None:
        self.cprofile = bool(cprofile)

    def run(
        self, fn: Callable, *args, label: str = "run", **kwargs
    ) -> tuple:
        """Execute ``fn(*args, **kwargs)`` profiled.

        Returns ``(result, ProfileReport)``.  The phase timer is active
        for exactly the duration of the call; nested profiling is not
        supported (the timer is process-global).
        """
        timer = PhaseTimer()
        profile = cProfile.Profile() if self.cprofile else None
        with phase_accounting(timer):
            start = perf_counter()
            if profile is not None:
                result = profile.runcall(fn, *args, **kwargs)
            else:
                result = fn(*args, **kwargs)
            wall = perf_counter() - start
        from repro.graph.templates import template_cache_stats

        stats_now = template_cache_stats()
        if stats_now["hits"] or stats_now["misses"]:
            timer.note("dag_templates", stats_now)
        report = ProfileReport(
            label=label, wall=wall, breakdown=timer.breakdown(wall)
        )
        if profile is not None:
            stats = pstats.Stats(profile)
            report._stats = stats
            report.top = _top_functions(stats.stats)
            report.collapsed = collapse_stats(stats.stats)
            validate_collapsed(report.collapsed)
        return result, report


def _top_functions(stats: Dict) -> List[tuple]:
    """``(label, calls, tottime, cumtime)`` rows sorted by own time."""
    from repro.profile.flamegraph import frame_label

    rows = [
        (frame_label(func), nc, tt, ct)
        for func, (_cc, nc, tt, ct, _callers) in stats.items()
    ]
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows
