"""Per-phase wall-clock accounting for single simulation runs.

The simulator's wall time splits into a handful of conceptually distinct
buckets — building the DAG, stepping the event loop, searching the PTT
for placements, re-timing in-flight work, extracting metrics.  A
:class:`PhaseTimer` attributes *exclusive* wall-clock time to a stack of
named phases: entering a nested phase pauses the enclosing one, so the
buckets always sum to the instrumented span (plus ``other`` for anything
outside every phase).

Instrumented code reads the module-level active timer exactly once at
construction time (``self._phases = active_phases()``) and guards each
hook with ``if phases is not None`` — with profiling off the hot path
pays one predicate per decision and allocates nothing, preserving the
engine's zero-overhead-when-off contract (the same pattern as
``tracer.enabled``).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional

#: Canonical bucket names, in reporting order.
PHASES = (
    "dag-build",
    "sim-loop",
    "policy-search",
    "speed-retime",
    "metrics",
    "dispatch",
)


class PhaseTimer:
    """Stack-based exclusive wall-clock accounting.

    ``push``/``pop`` cost two ``perf_counter`` reads and a couple of dict
    operations (~0.5 µs); they are only reachable while a timer is
    active, so profiling overhead never leaks into unprofiled runs.
    """

    __slots__ = ("totals", "counts", "notes", "_stack", "_last")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        #: Free-form annotations attached by instrumented subsystems
        #: (e.g. DAG-template cache hit counts).
        self.notes: Dict[str, object] = {}
        self._stack: List[str] = []
        self._last = 0.0

    def push(self, name: str) -> None:
        """Enter ``name``, pausing the enclosing phase (if any)."""
        now = perf_counter()
        stack = self._stack
        if stack:
            current = stack[-1]
            self.totals[current] = (
                self.totals.get(current, 0.0) + now - self._last
            )
        stack.append(name)
        self.counts[name] = self.counts.get(name, 0) + 1
        self._last = now

    def pop(self) -> None:
        """Leave the current phase, resuming the enclosing one."""
        now = perf_counter()
        current = self._stack.pop()
        self.totals[current] = self.totals.get(current, 0.0) + now - self._last
        self._last = now

    @contextmanager
    def phase(self, name: str):
        """``with timer.phase("dag-build"):`` convenience wrapper."""
        self.push(name)
        try:
            yield self
        finally:
            self.pop()

    def note(self, key: str, value) -> None:
        """Attach a free-form annotation to the breakdown."""
        self.notes[key] = value

    def breakdown(self, wall: Optional[float] = None) -> Dict[str, object]:
        """JSON-safe summary: per-phase seconds, counts and fractions.

        ``wall`` is the total instrumented wall time; when given, the
        difference between it and the accounted phases is reported as
        ``other``.
        """
        totals = dict(self.totals)
        accounted = sum(totals.values())
        if wall is not None:
            totals["other"] = max(0.0, wall - accounted)
        total = wall if wall is not None else accounted
        phases = {}
        order = [p for p in PHASES if p in totals]
        order += sorted(k for k in totals if k not in PHASES)
        for name in order:
            seconds = totals[name]
            phases[name] = {
                "seconds": seconds,
                "fraction": (seconds / total) if total > 0 else 0.0,
                "enters": self.counts.get(name, 0),
            }
        out: Dict[str, object] = {"wall": total, "phases": phases}
        if self.notes:
            out["notes"] = dict(self.notes)
        return out


#: The process-wide active timer.  Instrumented constructors capture it
#: once; ``None`` (the default) keeps every hook on its no-op branch.
_ACTIVE: Optional[PhaseTimer] = None


def active_phases() -> Optional[PhaseTimer]:
    """The currently installed :class:`PhaseTimer`, or ``None``."""
    return _ACTIVE


@contextmanager
def phase_accounting(timer: Optional[PhaseTimer] = None):
    """Install ``timer`` (or a fresh one) for the duration of the block.

    Objects constructed inside the block (runtimes, speed models) bind to
    it; yields the timer.  Not reentrant by design — a profiled run owns
    the process.
    """
    global _ACTIVE
    previous = _ACTIVE
    timer = timer if timer is not None else PhaseTimer()
    _ACTIVE = timer
    try:
        yield timer
    finally:
        _ACTIVE = previous


def phase_scope(name: str):
    """Context manager timing ``name`` on the active timer (no-op when off).

    For coarse, cold call-sites (workload build, metric extraction) where
    reading the active timer per call is negligible.
    """
    timer = _ACTIVE
    if timer is None:
        return _NULL_SCOPE
    return timer.phase(name)


class _NullScope:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()
