"""Deterministic profiling of single simulation runs.

Layers (see docs/performance.md, "Profiling a run"):

* :mod:`repro.profile.phases` — exclusive per-phase wall-clock buckets
  (dag-build / sim-loop / policy-search / speed-retime / metrics) with a
  zero-overhead-when-off hook contract;
* :mod:`repro.profile.profiler` — :class:`Profiler` combining the phase
  timer with deterministic ``cProfile`` tracing;
* :mod:`repro.profile.flamegraph` — collapsed-stack export for
  flamegraph renderers;
* :mod:`repro.profile.cli` — ``python -m repro.profile <fig|micro>``.
"""

from repro.profile.flamegraph import collapse_stats, validate_collapsed
from repro.profile.phases import (
    PHASES,
    PhaseTimer,
    active_phases,
    phase_accounting,
    phase_scope,
)
from repro.profile.profiler import ProfileReport, Profiler

__all__ = [
    "PHASES",
    "PhaseTimer",
    "ProfileReport",
    "Profiler",
    "active_phases",
    "collapse_stats",
    "phase_accounting",
    "phase_scope",
    "validate_collapsed",
]
