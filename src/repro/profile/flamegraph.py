"""Collapsed-stack (flamegraph) export from deterministic cProfile stats.

cProfile records a call *graph* (per-function totals plus per-edge
caller stats), not call stacks.  This module reconstitutes approximate
stacks the way ``flameprof`` does: starting from the root functions, the
graph is walked depth-first and each function's own time (``tottime``)
is distributed over the incoming call paths proportionally to the
cumulative time of each caller edge.  The result is the standard
Brendan-Gregg collapsed format — ``frame;frame;frame <microseconds>``
per line — renderable by ``flamegraph.pl``, speedscope, or any inferno
viewer.

The reconstruction is exact for tree-shaped call graphs (the common case
here: one driver function calling down into the engine) and a
proportional approximation where call paths merge.
"""

from __future__ import annotations

from os.path import basename
from typing import Dict, List, Mapping, Tuple

#: Stop expanding below this share of a root's cumulative time; keeps the
#: output bounded on pathological graphs without losing visible frames.
_MIN_MICROSECONDS = 1
_MAX_DEPTH = 96

Func = Tuple[str, int, str]


def frame_label(func: Func) -> str:
    """One flamegraph frame: ``file:line:function``, collapsed-safe.

    Semicolons separate frames and the last space separates the value in
    the collapsed format, so both are replaced in labels.
    """
    filename, lineno, name = func
    if filename == "~":  # built-ins have no file
        label = name
    else:
        label = f"{basename(filename)}:{lineno}:{name}"
    return label.replace(";", ":").replace(" ", "_")


def collapse_stats(stats: Mapping[Func, tuple]) -> List[str]:
    """Collapsed-stack lines from a ``pstats``-style stats mapping.

    ``stats`` maps ``(file, line, name)`` to ``(cc, nc, tt, ct,
    callers)`` as produced by ``cProfile.Profile().create_stats()`` /
    ``pstats.Stats(...).stats``.  Values are integer microseconds.
    """
    # Per-edge stats and each function's total incoming cumulative time.
    callees: Dict[Func, Dict[Func, tuple]] = {}
    total_in: Dict[Func, float] = {}
    for func, (_cc, _nc, _tt, ct, callers) in stats.items():
        incoming = 0.0
        for caller, edge in callers.items():
            callees.setdefault(caller, {})[func] = edge
            incoming += edge[3]
        total_in[func] = incoming if callers else ct

    roots = [
        func for func, (_cc, _nc, _tt, _ct, callers) in stats.items()
        if not callers
    ]
    lines: Dict[str, int] = {}

    def walk(func: Func, scale: float, path: str, depth: int) -> None:
        own_us = stats[func][2] * scale * 1e6
        if own_us >= _MIN_MICROSECONDS:
            lines[path] = lines.get(path, 0) + int(own_us)
        if depth >= _MAX_DEPTH:
            return
        for child, (_ecc, _enc, _ett, ect) in callees.get(func, {}).items():
            denominator = total_in.get(child, 0.0)
            if denominator <= 0.0:
                continue
            child_scale = scale * ect / denominator
            if child_scale <= 0.0:
                continue
            child_label = frame_label(child)
            if f";{child_label};" in f";{path};":
                continue  # recursion: attribute to the first occurrence
            walk(child, child_scale, f"{path};{child_label}", depth + 1)

    for root in roots:
        walk(root, 1.0, frame_label(root), 0)
    return [f"{path} {value}" for path, value in sorted(lines.items()) if value > 0]


def write_collapsed(path, lines: List[str]) -> None:
    """Write collapsed-stack lines to ``path`` (one stack per line)."""
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")


def validate_collapsed(lines: List[str]) -> None:
    """Raise ``ValueError`` unless every line is ``frames <int>``.

    The CI profile-smoke job calls this so a malformed export (which
    flamegraph renderers reject silently) fails loudly.
    """
    for line in lines:
        stack, _, value = line.rpartition(" ")
        if not stack or not value.isdigit():
            raise ValueError(f"malformed collapsed-stack line: {line!r}")
