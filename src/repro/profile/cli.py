"""``python -m repro.profile <target>`` — profile one run or harness.

Targets:

* ``micro`` — the ``runtime_task`` micro-benchmark workload (a
  1000-task layered matmul DAG under DAM-C on the TX2 model), the
  canonical single-run hot path.
* any experiment harness name (``fig4`` … ``table1``) — the harness at
  ``--scale``, forced serial and uncached so the phase accounting sees
  every run in-process.

Artifacts land in ``--out`` (default ``profiles/<target>/``):
``phases.json`` (the per-phase breakdown), ``profile.collapsed``
(flamegraph collapsed stacks) and ``profile.pstats`` (raw cProfile data
for ``snakeviz``/``pstats``).  See docs/performance.md, "Profiling a
run".
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

EXIT_OK = 0
EXIT_USER_ERROR = 2


def _micro_workload(tasks: int):
    """The runtime_task micro-benchmark body (build + simulate)."""
    from repro.graph.generators import layered_synthetic_dag
    from repro.kernels.matmul import MatMulKernel
    from repro.machine.presets import jetson_tx2
    from repro.session import run_graph

    graph = layered_synthetic_dag(MatMulKernel(), 4, tasks)
    result = run_graph(graph, jetson_tx2(), "dam-c")
    assert result.tasks_completed == tasks
    return result


def main(argv: Optional[list] = None) -> int:
    """CLI entry point: profile one target, print + write the report."""
    from repro.errors import ConfigurationError
    from repro.experiments.runner import _HARNESSES
    from repro.profile.profiler import Profiler

    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Profile one simulation run or experiment harness.",
    )
    parser.add_argument(
        "target",
        choices=["micro"] + sorted(_HARNESSES),
        help="'micro' = the runtime_task bench workload; otherwise an "
        "experiment harness (run serial + uncached)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="harness scale (ignored for 'micro'; default 0.02)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--tasks", type=int, default=1000,
        help="task count of the 'micro' workload (default 1000)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory (default profiles/<target>/)",
    )
    parser.add_argument(
        "--no-cprofile", action="store_true",
        help="phase accounting only — honest absolute timings, no "
        "flamegraph (cProfile inflates wall time roughly uniformly)",
    )
    parser.add_argument(
        "--top", type=int, default=15,
        help="hottest functions to print (default 15)",
    )
    args = parser.parse_args(argv)

    if args.target == "micro":
        def body():
            return _micro_workload(args.tasks)
    else:
        from repro.experiments.common import ExperimentSettings

        harness = _HARNESSES[args.target]

        def body():
            settings = ExperimentSettings(
                scale=args.scale, seed=args.seed, jobs=1, use_cache=False
            )
            return harness(settings)

    profiler = Profiler(cprofile=not args.no_cprofile)
    try:
        _result, report = profiler.run(body, label=args.target)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USER_ERROR
    print(report.render(top_n=args.top))
    out_dir = args.out if args.out else f"profiles/{args.target}"
    written = report.write(out_dir)
    for kind, path in sorted(written.items()):
        print(f"[{kind} -> {path}]")
    return EXIT_OK
