"""Variance-aware adaptive replication for sweeps.

A *cell* is one base :class:`~repro.sweep.spec.RunSpec`; replicates of a
cell re-run it with seeds derived deterministically from the base seed
(:func:`replicate_spec`).  :class:`AdaptivePolicy` describes the stopping
rule: every cell gets at least ``min_seeds`` replicates, then grows —
round by round — until the Student-t confidence interval of every scalar
metric is narrower than ``ci`` (relative to the mean), or ``max_seeds``
is reached.

Aggregation (:func:`aggregate_replicates`) averages scalar metrics over
the replicates; non-scalar metrics keep replicate 0's value.  Auxiliary
convergence data lands under the reserved ``"adaptive"`` key of the
returned metrics dict.  With a single replicate the aggregate equals
replicate 0's metrics bit-for-bit (plus the auxiliary key), which is what
makes ``min_seeds == max_seeds == 1`` indistinguishable from a plain
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.sweep.spec import RunSpec, derive_seed
from repro.util.stats import Welford

#: Reserved metrics key carrying adaptive-replication bookkeeping.
ADAPTIVE_KEY = "adaptive"


@dataclass(frozen=True)
class AdaptivePolicy:
    """Stopping rule of the variance-aware replication loop.

    Attributes
    ----------
    ci:
        Target *relative* CI half-width (e.g. ``0.02`` = ±2% of the
        mean at 95% confidence).  ``0`` never converges early, so every
        cell runs the full ``max_seeds``.
    min_seeds:
        Replicates every cell gets before the stopping rule is consulted
        (at least 1; CIs need 2+ to be finite).
    max_seeds:
        Hard per-cell replicate budget.
    confidence:
        Confidence level of the Student-t interval.
    growth:
        Replicates added to each unconverged cell per round.
    """

    ci: float = 0.02
    min_seeds: int = 3
    max_seeds: int = 12
    confidence: float = 0.95
    growth: int = 1

    def __post_init__(self) -> None:
        if self.ci < 0:
            raise ConfigurationError(f"ci must be >= 0, got {self.ci}")
        if self.min_seeds < 1:
            raise ConfigurationError(
                f"min_seeds must be >= 1, got {self.min_seeds}"
            )
        if self.max_seeds < self.min_seeds:
            raise ConfigurationError(
                f"max_seeds ({self.max_seeds}) < min_seeds ({self.min_seeds})"
            )
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.growth < 1:
            raise ConfigurationError(f"growth must be >= 1, got {self.growth}")

    def next_target(self, have: int) -> int:
        """Replicate count a cell should reach in its next round.

        A fresh cell (``have == 0``) jumps straight to ``min_seeds``; an
        unconverged one grows by ``growth``, clamped to ``max_seeds``.
        The round increment (``next_target(have) - have``) is also the
        width the batched replicate engine packs into one run (see
        ``docs/performance.md``).
        """
        if have < 0:
            raise ConfigurationError(
                f"replicate count must be >= 0, got {have}"
            )
        if have == 0:
            return self.min_seeds
        return min(have + self.growth, self.max_seeds)


def replicate_spec(spec: RunSpec, rep: int) -> RunSpec:
    """The ``rep``-th replicate of ``spec``.

    Replicate 0 *is* the base spec, unchanged — its cache entry is shared
    with non-adaptive sweeps of the same cell.  Higher replicates derive
    their seed from the base seed (stable across processes) and carry a
    ``replicate`` tag for bookkeeping.
    """
    if rep < 0:
        raise ConfigurationError(f"replicate index must be >= 0, got {rep}")
    if rep == 0:
        return spec
    return replace(
        spec,
        seed=derive_seed(spec.seed, "replicate", rep),
        tags={**dict(spec.tags), "replicate": rep},
    )


def _is_scalar(value: Any) -> bool:
    """Whether a metric value participates in averaging."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def scalar_accumulators(
    results: Sequence[Dict[str, Any]]
) -> Dict[str, Welford]:
    """Welford accumulators of every scalar metric, folded in rep order.

    Only metrics that are scalar in *every* replicate are averaged; the
    scalar/non-scalar split is decided by replicate 0.
    """
    if not results:
        raise ConfigurationError("no replicate results to aggregate")
    accs: Dict[str, Welford] = {}
    for name, value in results[0].items():
        if name != ADAPTIVE_KEY and _is_scalar(value):
            accs[name] = Welford()
    for result in results:
        for name, acc in accs.items():
            value = result.get(name)
            if not _is_scalar(value):
                raise ConfigurationError(
                    f"metric {name!r} is scalar in replicate 0 but "
                    f"{value!r} in a later replicate"
                )
            acc.add(value)
    return accs


def converged(
    accs: Dict[str, Welford], policy: AdaptivePolicy
) -> bool:
    """Whether every scalar metric meets the relative-CI target."""
    return all(
        acc.relative_ci(policy.confidence) <= policy.ci for acc in accs.values()
    )


def aggregate_replicates(
    results: Sequence[Dict[str, Any]], policy: AdaptivePolicy
) -> Dict[str, Any]:
    """Combine per-replicate metric dicts into one cell result.

    Scalar metrics become their mean over replicates; everything else
    keeps replicate 0's value.  Convergence bookkeeping (replicate count,
    per-metric relative CI, whether the target was met) is attached under
    :data:`ADAPTIVE_KEY`.
    """
    accs = scalar_accumulators(results)
    out: Dict[str, Any] = dict(results[0])
    cis: Dict[str, float] = {}
    for name, acc in accs.items():
        # A single replicate keeps the original value (and its type: an
        # int metric stays int) — the replicates-off identity guarantee.
        out[name] = results[0][name] if acc.count == 1 else acc.mean
        rel = acc.relative_ci(policy.confidence)
        cis[name] = rel if rel != float("inf") else None
    out[ADAPTIVE_KEY] = {
        "replicates": len(results),
        "relative_ci": cis,
        "target_ci": policy.ci,
        "converged": converged(accs, policy),
    }
    return out


__all__ = [
    "ADAPTIVE_KEY",
    "AdaptivePolicy",
    "aggregate_replicates",
    "converged",
    "replicate_spec",
    "scalar_accumulators",
]
