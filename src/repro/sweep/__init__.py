"""Parallel sweep engine: declarative run specs, process fan-out, caching.

The experiment harnesses describe every simulation as a :class:`RunSpec`
and hand the list to a :class:`SweepRunner`, which deduplicates, consults
the on-disk result cache, and fans cache misses out over worker processes.

Typical use::

    from repro.sweep import RunSpec, SweepRunner

    specs = [
        RunSpec(params={
            "workload": {"name": "layered", "kernel": "matmul",
                         "parallelism": p, "total": 640},
            "machine": "jetson_tx2",
            "scheduler": sched,
            "scenario": {"name": "tx2_corunner", "kernel": "matmul"},
        }, metrics=("throughput",))
        for p in (2, 3, 4) for sched in ("rws", "dam-c")
    ]
    rows = SweepRunner(jobs=4).run(specs)
"""

from repro.sweep.adaptive import (
    ADAPTIVE_KEY,
    AdaptivePolicy,
    aggregate_replicates,
    replicate_spec,
)
from repro.sweep.cost import CostModel
from repro.sweep.engine import (
    ERROR_KEY,
    SweepRunner,
    SweepStats,
    default_cache_dir,
    is_error_result,
    pop_stats,
)
from repro.sweep.registry import execute_spec
from repro.sweep.spec import RunSpec, data_to_place, derive_seed, place_to_data

__all__ = [
    "ADAPTIVE_KEY",
    "ERROR_KEY",
    "AdaptivePolicy",
    "CostModel",
    "RunSpec",
    "is_error_result",
    "SweepRunner",
    "SweepStats",
    "aggregate_replicates",
    "data_to_place",
    "default_cache_dir",
    "derive_seed",
    "execute_spec",
    "place_to_data",
    "pop_stats",
    "replicate_spec",
]
