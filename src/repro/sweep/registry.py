"""Registries turning declarative :class:`RunSpec` data back into objects.

Every piece of a run that a spec references by name lives in one of the
tables below: DAG factories (``WORKLOADS``), machine presets
(``MACHINES``), interference scenarios (``SCENARIOS``), metric extractors
(``METRICS``) and whole-run executors (``EXECUTORS``).  :func:`execute_spec`
is the single entry point the sweep engine (and its worker processes)
call: it dispatches on ``spec.kind`` and returns a JSON-serializable
metrics dict.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.sweep.spec import RunSpec, place_to_data

# ----------------------------------------------------------------------
# kernels & workloads
# ----------------------------------------------------------------------

#: Per-kernel default tile sizes, matching the paper_*_dag defaults.
_KERNEL_TILES = {"matmul": 64, "copy": 1024, "stencil": 1024}


def make_kernel(name: str, tile: Optional[int] = None):
    """Instantiate a synthetic kernel by name, with its paper-default tile."""
    from repro.kernels.copy import CopyKernel
    from repro.kernels.matmul import MatMulKernel
    from repro.kernels.stencil import StencilKernel

    classes = {"matmul": MatMulKernel, "copy": CopyKernel, "stencil": StencilKernel}
    if name not in classes:
        raise ConfigurationError(f"unknown kernel {name!r}")
    return classes[name](tile=tile if tile is not None else _KERNEL_TILES[name])


def _layered_workload(kernel: str, parallelism: int, total: int,
                      tile: Optional[int] = None):
    from repro.graph.generators import layered_synthetic_dag

    return layered_synthetic_dag(make_kernel(kernel, tile), parallelism, total)


WORKLOADS: Dict[str, Callable] = {
    "layered": _layered_workload,
}


def build_workload(data: Mapping[str, Any]):
    """Instantiate the task graph described by a workload mapping."""
    kwargs = dict(data)
    name = kwargs.pop("name", None)
    if name not in WORKLOADS:
        raise ConfigurationError(f"unknown workload {name!r}")
    return WORKLOADS[name](**kwargs)


# ----------------------------------------------------------------------
# machines
# ----------------------------------------------------------------------

def _machines():
    from repro.machine import presets

    return {
        "jetson_tx2": presets.jetson_tx2,
        "haswell16": presets.haswell16,
        "haswell_node": presets.haswell_node,
    }


def build_machine(name: str):
    """Instantiate a machine preset by registry name."""
    machines = _machines()
    if name not in machines:
        raise ConfigurationError(f"unknown machine preset {name!r}")
    return machines[name]()


# ----------------------------------------------------------------------
# interference scenarios
# ----------------------------------------------------------------------

def _tx2_corunner(kernel: str):
    from repro.experiments.common import tx2_corunner

    return tx2_corunner(kernel)


def _corunner(**kwargs):
    from repro.interference.corunner import CorunnerInterference

    return CorunnerInterference(**kwargs)


def _dvfs(cores=None, high_scale: float = 1.0, low_scale: float = 345.0 / 2035.0,
          half_period: float = 5.0, until: Optional[float] = None):
    from repro.interference.dvfs_events import DvfsInterference
    from repro.machine.dvfs import PeriodicSquareWave

    wave = PeriodicSquareWave(
        high_scale=high_scale, low_scale=low_scale, half_period=half_period
    )
    return DvfsInterference(cores=cores, wave=wave, until=until)


def _live_corunner(core: int, kernel: str):
    from repro.interference.live import LiveCorunner

    return LiveCorunner(core=core, kernel=make_kernel(kernel))


def _composite(scenarios):
    from repro.interference.composite import CompositeScenario

    return CompositeScenario([build_scenario(s) for s in scenarios])


def _faults(**kwargs):
    """Declarative fault plan: ``crashes``/``stragglers`` in the
    :meth:`repro.faults.FaultPlan.to_params` shape."""
    from repro.faults import FaultPlan, FaultScenario

    return FaultScenario(FaultPlan.from_params(kwargs))


SCENARIOS: Dict[str, Callable] = {
    "tx2_corunner": _tx2_corunner,
    "corunner": _corunner,
    "dvfs": _dvfs,
    "live_corunner": _live_corunner,
    "composite": _composite,
    "faults": _faults,
}


def build_scenario(data: Optional[Mapping[str, Any]]):
    """Instantiate the interference scenario, or None for no interference."""
    if data is None:
        return None
    kwargs = dict(data)
    name = kwargs.pop("name", None)
    if name not in SCENARIOS:
        raise ConfigurationError(f"unknown scenario {name!r}")
    return SCENARIOS[name](**kwargs)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

def _m_priority_place_distribution(result) -> list:
    from repro.metrics.analysis import place_distribution

    dist = place_distribution(result.collector.records, high_priority_only=True)
    return [[place_to_data(p), frac] for p, frac in sorted(dist.items())]


def _m_core_busy(result) -> Dict[str, float]:
    return {str(core): busy for core, busy in result.collector.core_busy.items()}


def _m_fault_stats(result) -> Dict[str, Any]:
    """The runtime's recovery summary; empty when faults were off."""
    return dict(result.extra.get("fault_stats", {}))


def _fault_scalar(key: str, default: float = 0):
    def extract(result):
        stats = result.extra.get("fault_stats") or {}
        return stats.get(key, default)

    return extract


#: Metrics computed from RunResult scalars alone — no per-task records,
#: no collector accounting.  When a batched cell demands only these, the
#: lockstep driver runs its replicates in lean-records mode (the runtime
#: skips TaskRecord construction and collector bookkeeping entirely; see
#: repro.core.lockstep).  Extraction output is unaffected either way.
RECORD_FREE_METRICS = frozenset(
    {"makespan", "tasks_completed", "throughput"}
)

METRICS: Dict[str, Callable] = {
    "makespan": lambda result: result.makespan,
    "tasks_completed": lambda result: result.tasks_completed,
    "throughput": lambda result: result.throughput,
    "priority_place_distribution": _m_priority_place_distribution,
    "core_busy": _m_core_busy,
    "fault_stats": _m_fault_stats,
    "workers_lost": _fault_scalar("workers_lost"),
    "tasks_retried": _fault_scalar("tasks_retried"),
    "tasks_recovered": _fault_scalar("tasks_recovered"),
    "recovery_latency": _fault_scalar("recovery_latency_mean", 0.0),
}


def extract_metrics(result, names) -> Dict[str, Any]:
    """Evaluate the named metric extractors against a RunResult."""
    from repro.profile.phases import phase_scope

    with phase_scope("metrics"):
        out: Dict[str, Any] = {}
        for name in names:
            if name not in METRICS:
                raise ConfigurationError(f"unknown metric {name!r}")
            out[name] = METRICS[name](result)
        return out


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------

def build_tracer(params: Mapping[str, Any]):
    """Tracer requested by ``params["trace"]``, or None when absent.

    The trace mapping holds ``out_dir`` (export directory), an optional
    ``label`` (file stem, default ``"run"``), and the optional
    :func:`repro.trace.make_tracer` knobs ``buffer`` / ``limit``.  Being
    part of ``params`` it is automatically in the spec's cache key; the
    sweep engine additionally bypasses the cache for traced specs so the
    export files are always regenerated.
    """
    trace = params.get("trace")
    if trace is None:
        return None
    from repro.trace.tracer import make_tracer

    return make_tracer(
        buffer=trace.get("buffer", "full"), limit=int(trace.get("limit", 0))
    )


def export_trace(tracer, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Write a finished run's trace per ``params["trace"]``.

    Emits ``<label>.chrome.json`` (Perfetto / ``chrome://tracing``) and
    ``<label>.jsonl`` (loss-free stream) into ``out_dir``; returns the
    ``trace_events`` / ``trace_files`` metric entries.
    """
    if tracer is None:
        return {}
    from pathlib import Path

    from repro.trace.export import write_chrome_trace, write_jsonl

    trace = params["trace"]
    out_dir = Path(trace["out_dir"])
    label = trace.get("label", "run")
    events = tracer.events()
    chrome = write_chrome_trace(out_dir / f"{label}.chrome.json", events, label)
    jsonl = write_jsonl(out_dir / f"{label}.jsonl", events)
    return {
        "trace_events": len(events),
        "trace_files": [str(chrome), str(jsonl)],
    }


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------

EXECUTORS: Dict[str, Callable[[RunSpec], Dict[str, Any]]] = {}


def executor(name: str):
    """Class-of-run registration decorator for :data:`EXECUTORS`."""
    def register(fn):
        EXECUTORS[name] = fn
        return fn

    return register


@executor("single")
def _execute_single(spec: RunSpec) -> Dict[str, Any]:
    """The generic run: graph x machine x scheduler x scenario x config."""
    from repro.core.policies.registry import make_scheduler
    from repro.machine.speed import SpeedModel
    from repro.runtime.config import RuntimeConfig
    from repro.runtime.executor import SimulatedRuntime
    from repro.sim.environment import Environment

    p = spec.params
    graph = build_workload(p["workload"])
    machine = build_machine(p["machine"])
    policy = make_scheduler(p["scheduler"], **(p.get("scheduler_kwargs") or {}))
    scenario = build_scenario(p.get("scenario"))
    config = RuntimeConfig(**(p.get("config") or {}))

    env = Environment()
    speed = SpeedModel(env, machine)
    if scenario is not None:
        scenario.install(env, speed, machine)
    tracer = build_tracer(p)
    runtime = SimulatedRuntime(
        env, machine, graph, policy, config=config, speed=speed,
        seed=spec.seed, tracer=tracer,
    )
    result = runtime.run()
    metrics = extract_metrics(result, spec.metrics)
    metrics.update(export_trace(tracer, p))
    return metrics


@executor("kmeans_window")
def _execute_kmeans_window(spec: RunSpec) -> Dict[str, Any]:
    """Fig. 9's dynamic K-means with a windowed co-runner on socket 0."""
    from repro.apps.kmeans import KMeansConfig, build_kmeans_graph
    from repro.core.policies.registry import make_scheduler
    from repro.interference.corunner import CorunnerInterference
    from repro.machine.speed import SpeedModel
    from repro.metrics.analysis import iteration_series, place_distribution_counts
    from repro.runtime.executor import SimulatedRuntime
    from repro.sim.environment import Environment

    p = spec.params
    lo, hi = p["window"]
    machine = build_machine(p.get("machine", "haswell16"))
    socket0 = list(machine.cluster("socket0").core_ids)
    corunner = CorunnerInterference(
        cores=socket0, cpu_share=0.5, memory_demand=1.5, start=None
    )
    hooks = {lo: lambda _i: corunner.activate(), hi: lambda _i: corunner.deactivate()}
    graph = build_kmeans_graph(
        KMeansConfig(iterations=p["iterations"]), iteration_hooks=hooks
    )

    env = Environment()
    speed = SpeedModel(env, machine)
    corunner.install(env, speed, machine)
    tracer = build_tracer(p)
    runtime = SimulatedRuntime(
        env, machine, graph, make_scheduler(p["scheduler"]),
        speed=speed, seed=spec.seed, tracer=tracer,
    )
    result = runtime.run()
    records = result.collector.records
    in_window = [
        r for r in records if lo <= r.metadata.get("iteration", -1) < hi
    ]
    counts = place_distribution_counts(in_window, high_priority_only=False)
    metrics = {
        "iteration_series": [[it, t] for it, t in iteration_series(records)],
        "window_place_counts": [
            [place_to_data(place), n] for place, n in sorted(counts.items())
        ],
        "throughput": result.throughput,
        "makespan": result.makespan,
    }
    metrics.update(export_trace(tracer, p))
    return metrics


@executor("heat_cluster")
def _execute_heat_cluster(spec: RunSpec) -> Dict[str, Any]:
    """Fig. 10's distributed 2D heat over a multi-node Haswell cluster."""
    from repro.apps.heat import HeatConfig, build_heat_graph_builder
    from repro.distributed.cluster_runtime import DistributedRuntime
    from repro.interference.corunner import CorunnerInterference

    p = spec.params
    if p.get("trace") is not None:
        # The distributed runtime multiplexes several per-node runtimes
        # over one environment; a single-run trace stream would interleave
        # them misleadingly.  Fail loudly instead of silently ignoring.
        raise ConfigurationError(
            "the heat_cluster executor does not support tracing"
        )
    nodes = p["nodes"]
    config = HeatConfig(nodes=nodes, iterations=p["iterations"])
    scenarios = {}
    corunner = p.get("corunner")
    if corunner is not None:
        scenarios[corunner.get("node", 0)] = CorunnerInterference(
            cores=corunner["cores"],
            cpu_share=corunner.get("cpu_share", 0.5),
            memory_demand=corunner.get("memory_demand", 0.0),
        )
    runtime = DistributedRuntime(
        [build_machine(p.get("machine", "haswell_node")) for _ in range(nodes)],
        p["scheduler"],
        build_heat_graph_builder(config),
        scenarios=scenarios,
        seed=spec.seed,
    )
    result = runtime.run()
    return {
        "throughput": result.throughput,
        "makespan": result.makespan,
        "tasks_completed": result.tasks_completed,
    }


@executor("replicate_batch")
def _execute_replicate_batch(spec: RunSpec) -> Dict[str, Any]:
    """N same-cell replicates in one batched pass (see
    :mod:`repro.core.batched`)."""
    from repro.core.batched import run_batch_spec

    return run_batch_spec(spec)


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one spec to completion and return its metrics dict."""
    if spec.kind not in EXECUTORS:
        raise ConfigurationError(f"unknown spec kind {spec.kind!r}")
    return EXECUTORS[spec.kind](spec)
