"""Predictive dispatch: a persistent per-spec wall-time model.

With a multiprocessing fan-out, total sweep wall-clock is bounded by
whichever worker finishes last — submitting the longest runs first
(LPT-style list scheduling) keeps the tail short.  The cost model learns
per-spec wall times from previous sweeps, keyed by the spec's structural
features (:meth:`~repro.sweep.spec.RunSpec.cost_key` — seed and trace
config excluded, so replicates of one cell share an estimate).

Estimates are an exponential moving average per exact key, with a
per-``kind`` family average as fallback for specs never seen before.
The model persists as one JSON file in the sweep cache directory and is
advisory only: dispatch order never changes *what* is computed, just
*when*, and results are keyed by content hash, so a stale or empty model
degrades throughput, never correctness.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sweep.spec import BATCH_KIND, RunSpec

#: Persisted-model location relative to the sweep cache directory.  Lives
#: in a subdirectory so the cache root stays purely ``<hash>.json`` result
#: entries (tooling globs those).
COST_MODEL_FILE = os.path.join("_meta", "cost_model.json")

#: EWMA weight of the newest observation.
DEFAULT_ALPHA = 0.3

#: Exact-table key prefix for the per-replicate *batched* marginal of a
#: cell.  Lockstep batching makes a replicate inside a batch genuinely
#: cheaper than the same replicate run scalar (shared construction,
#: vectorized decisions/folds), so the two marginals are separate
#: estimates: batch observations train only the prefixed key, scalar
#: observations only the plain one, and neither pollutes the other.
BATCH_KEY_PREFIX = "batch:"


class CostModel:
    """EWMA wall-time estimates keyed by spec structure.

    Parameters
    ----------
    path:
        JSON persistence location (``None`` = in-memory only).
    alpha:
        EWMA weight of the newest observation.
    """

    def __init__(
        self, path: Optional[os.PathLike] = None, alpha: float = DEFAULT_ALPHA
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.alpha = alpha
        #: exact estimates: cost_key -> (ewma_seconds, samples)
        self._exact: Dict[str, Tuple[float, int]] = {}
        #: family estimates: spec kind -> (ewma_seconds, samples)
        self._family: Dict[str, Tuple[float, int]] = {}
        if self.path is not None:
            self._load()

    # -- persistence ----------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            return
        for attr, section in (("_exact", "exact"), ("_family", "family")):
            table = payload.get(section)
            if not isinstance(table, dict):
                continue
            out = getattr(self, attr)
            for key, entry in table.items():
                try:
                    seconds, samples = float(entry[0]), int(entry[1])
                except (TypeError, ValueError, IndexError):
                    continue
                if seconds >= 0 and samples > 0:
                    out[key] = (seconds, samples)

    def save(self) -> None:
        """Atomically persist the model (no-op for in-memory models)."""
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "exact": {k: list(v) for k, v in sorted(self._exact.items())},
            "family": {k: list(v) for k, v in sorted(self._family.items())},
        }
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, self.path)

    # -- estimation -----------------------------------------------------
    @staticmethod
    def _batch_members(spec: RunSpec) -> Optional[list]:
        """Member specs of a batched-replicate pseudo-spec, else ``None``."""
        if spec.kind != BATCH_KIND:
            return None
        from repro.core.batched import parse_batch_spec

        return parse_batch_spec(spec)

    def predict(self, spec: RunSpec) -> Optional[float]:
        """Expected wall seconds, or ``None`` for a fully unknown spec.

        A batched-replicate pseudo-spec is priced at the cell's *batched*
        per-replicate marginal (the :data:`BATCH_KEY_PREFIX` estimate)
        times the batch width; until a batch of that cell has been
        observed, the members' scalar estimate stands in (an upper bound
        under lockstep — construction sharing and vectorized passes make
        the batched marginal cheaper).  Members share one cost key
        (features exclude the seed), so both estimates transfer across
        batch compositions.
        """
        members = self._batch_members(spec)
        if members is not None:
            width = len(members)
            member_key = members[0].cost_key()
            batched = self._exact.get(BATCH_KEY_PREFIX + member_key)
            if batched is not None:
                return batched[0] * width
            marginal = self.predict(members[0])
            return None if marginal is None else marginal * width
        exact = self._exact.get(spec.cost_key())
        if exact is not None:
            return exact[0]
        family = self._family.get(spec.kind)
        if family is not None:
            return family[0]
        return None

    def _fold(self, table: Dict[str, Tuple[float, int]],
              key: str, seconds: float) -> None:
        """The EWMA update: seed on first sight, blend at ``alpha`` after."""
        prior = table.get(key)
        if prior is None:
            table[key] = (float(seconds), 1)
        else:
            mean, samples = prior
            table[key] = (
                (1.0 - self.alpha) * mean + self.alpha * float(seconds),
                samples + 1,
            )

    def observe(self, spec: RunSpec, seconds: float) -> None:
        """Fold one measured wall time into the model.

        A batch observation is folded at its per-replicate *marginal*
        cost (``seconds / width``) under the cell's
        :data:`BATCH_KEY_PREFIX` key only — one wall-clock measurement
        stays one model observation, and the lockstep discount never
        leaks into the scalar estimate (which would underpredict future
        scalar runs of the same cell).  Scalar observations likewise
        never touch the batched key, and only scalar runs train the
        per-``kind`` family fallback.
        """
        if seconds < 0:
            return
        members = self._batch_members(spec)
        if members is not None:
            marginal = seconds / len(members)
            self._fold(
                self._exact,
                BATCH_KEY_PREFIX + members[0].cost_key(),
                marginal,
            )
            return
        self._fold(self._exact, spec.cost_key(), seconds)
        self._fold(self._family, spec.kind, seconds)

    # -- dispatch order -------------------------------------------------
    def order(
        self, pending: Sequence[Tuple[str, RunSpec]]
    ) -> List[Tuple[str, RunSpec]]:
        """Pool-submission order: unknown specs first, then longest-first.

        Unknown specs (no exact or family estimate) lead in their original
        order — they may be arbitrarily long, and running them early both
        bounds the tail and seeds the model.  Known specs follow by
        descending predicted time; ties (and everything else) break by
        cache key, so the order is a pure function of the inputs and the
        model state.
        """
        unknown: List[Tuple[str, RunSpec]] = []
        known: List[Tuple[float, str, RunSpec]] = []
        for key, spec in pending:
            estimate = self.predict(spec)
            if estimate is None:
                unknown.append((key, spec))
            else:
                known.append((estimate, key, spec))
        known.sort(key=lambda item: (-item[0], item[1]))
        return unknown + [(key, spec) for _, key, spec in known]


__all__ = [
    "BATCH_KEY_PREFIX",
    "COST_MODEL_FILE",
    "CostModel",
    "DEFAULT_ALPHA",
]
