"""Declarative run specifications.

A :class:`RunSpec` describes one simulation run as plain data: which
executor wires it up (``kind``), its JSON-serializable parameters, the
seed, and the metric names to extract from the finished run.  Because a
spec is data, it can be hashed (for the on-disk result cache), pickled
(for the multiprocessing fan-out) and compared — a run becomes a pure
function ``spec -> metrics``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro._version import __version__
from repro.errors import ConfigurationError

#: Default metrics extracted by the generic ``single`` executor.
DEFAULT_METRICS: Tuple[str, ...] = ("makespan", "tasks_completed", "throughput")

#: Spec kind of a batched-replicate pseudo-run (see
#: :mod:`repro.core.batched`): its params embed N same-cell member specs
#: and its result is one payload per member.  Batch specs flow through
#: the sweep engine's dispatch machinery but are never cached as such.
BATCH_KIND = "replicate_batch"


def canonical(obj: Any) -> Any:
    """Normalize ``obj`` into canonical JSON-compatible data.

    Mappings become sorted dicts, sequences become lists; anything that is
    not JSON-representable raises :class:`ConfigurationError` so a
    non-declarative spec (e.g. one smuggling a callable) fails loudly at
    construction time instead of producing an unstable hash.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Mapping):
        out = {}
        for key in sorted(obj):
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"spec mapping keys must be strings, got {key!r}"
                )
            out[key] = canonical(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    raise ConfigurationError(
        f"spec values must be JSON-serializable data, got {type(obj).__name__}"
    )


def derive_seed(root_seed: int, *components: Any) -> int:
    """Derive a deterministic per-run seed from a root seed and labels.

    Stable across processes and Python versions (unlike ``hash``), so a
    parallel sweep seeds each run exactly as a serial one would.
    """
    payload = json.dumps([root_seed, canonical(list(components))])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, described entirely by data.

    Attributes
    ----------
    kind:
        Name of the registered executor that wires up and runs the spec
        (see :mod:`repro.sweep.registry`); ``"single"`` is the generic
        graph+machine+scheduler+scenario run.
    params:
        Executor parameters; must be JSON-serializable.
    seed:
        Root seed of the run's stochastic elements.
    metrics:
        Metric names the executor extracts from the finished run.
    tags:
        Free-form bookkeeping for the harness that emitted the spec
        (kernel name, parallelism, ...).  Tags are *excluded* from the
        cache key: they never influence the run itself.
    """

    kind: str = "single"
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    metrics: Tuple[str, ...] = DEFAULT_METRICS
    tags: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", canonical(self.params))
        object.__setattr__(self, "metrics", tuple(self.metrics))

    def identity(self) -> Dict[str, Any]:
        """The data that defines the run's outcome (tags excluded)."""
        return {
            "version": __version__,
            "kind": self.kind,
            "params": self.params,
            "seed": self.seed,
            "metrics": sorted(self.metrics),
        }

    def key(self) -> str:
        """Content hash of the spec — the result-cache key.

        Includes the package version, so upgrading the package invalidates
        every cached result.  Memoized per spec object: the dispatch path
        touches the key once per lease, cache probe, checkpoint line and
        commit, and a frozen spec can never hash differently twice.
        """
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        payload = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_key", digest)
        return digest

    def features(self) -> Dict[str, Any]:
        """Structural features determining the run's *cost* (not outcome).

        Excludes the seed (replicates of one cell cost the same) and the
        trace config (orthogonal bookkeeping), so the predictive
        dispatcher can transfer observed wall times across seeds.
        """
        params = {k: v for k, v in self.params.items() if k != "trace"}
        return {"kind": self.kind, "params": params}

    def cost_key(self) -> str:
        """Content hash of :meth:`features` — the cost-model key.

        Memoized like :meth:`key`: straggler checks and ETA estimation
        call this every dispatch-loop tick.
        """
        cached = self.__dict__.get("_cost_key")
        if cached is not None:
            return cached
        payload = json.dumps(
            canonical(self.features()), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_cost_key", digest)
        return digest


def place_to_data(place) -> Tuple[int, int]:
    """Serialize an ExecutionPlace for a JSON metric payload."""
    return (place.leader, place.width)


def data_to_place(data):
    """Inverse of :func:`place_to_data`."""
    from repro.machine.topology import ExecutionPlace

    leader, width = data
    return ExecutionPlace(int(leader), int(width))
