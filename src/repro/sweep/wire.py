"""Delta-encoded spec transport: intern a base spec, ship compact diffs.

Overhead-dominated sweeps (many tiny cells, the fig5-replicate regime)
send nearly identical :class:`~repro.sweep.spec.RunSpec`\\ s over and
over: replicates of one cell differ only in their seed, grid neighbours
in one or two parameter values.  This module gives both dispatch paths —
the cluster wire protocol and the local process-pool pipes — a shared
fast lane:

* the **sender** (:class:`SpecInterner`) registers one *base spec* per
  structural group, keyed by the content hash of its wire form, and
  encodes every subsequent spec as a delta against it
  (:func:`encode_delta`);
* the **receiver** (:class:`SpecDecoder`) keeps a content-addressed base
  table and rebuilds full specs (:func:`apply_delta`).  Because base ids
  are content hashes, a stale table entry can never decode to the wrong
  spec — at worst a receiver is missing a base, which is a typed,
  retryable :class:`SpecDeltaError`, never silent corruption.

Encoding is *advisory*: whenever a delta would not be smaller than the
full wire form (the first cell of a group, a structurally unrelated
spec, a batch pseudo-spec) the full form ships instead, so the fast lane
can only reduce bytes, never inflate them.  Decoded specs are rebuilt
through the ordinary ``RunSpec`` constructor, so ``spec.key()`` on the
receiver necessarily equals the sender's — the exactly-once commit
invariant keys on exactly that.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.sweep.spec import BATCH_KIND, RunSpec


def dispatch_fast_default() -> bool:
    """The dispatch fast lane's default: on unless ``REPRO_DISPATCH_FAST=0``.

    One knob for every dispatch path (cluster coordinator and worker,
    local pool): ``0`` restores the pre-fast-lane wire format and
    polling cadence for apples-to-apples benchmarking.
    """
    return os.environ.get("REPRO_DISPATCH_FAST", "1") != "0"


class SpecDeltaError(ReproError):
    """A spec delta (or base registration) could not be decoded.

    Always raised eagerly — a malformed payload fails loudly and
    retryably at decode time, it never hangs a worker or corrupts a
    rebuilt spec.
    """


#: Delta keys the decoder accepts; anything else is stream corruption.
_DELTA_FIELDS = frozenset(
    {"kind", "seed", "metrics", "params", "params_drop", "tags", "tags_drop"}
)


def spec_to_wire(spec: RunSpec) -> Dict[str, Any]:
    """Full wire form of a spec (plain JSON data)."""
    return {
        "kind": spec.kind,
        "params": dict(spec.params),
        "seed": spec.seed,
        "metrics": list(spec.metrics),
        "tags": dict(spec.tags),
    }


def spec_from_wire(data: Mapping[str, Any]) -> RunSpec:
    """Rebuild a spec from its full wire form."""
    try:
        return RunSpec(
            kind=data["kind"],
            params=data["params"],
            seed=data["seed"],
            metrics=tuple(data["metrics"]),
            tags=data.get("tags", {}),
        )
    except (KeyError, TypeError, ReproError) as exc:
        raise SpecDeltaError(f"malformed spec wire data: {exc}") from exc


def wire_json(spec: RunSpec) -> str:
    """Canonical JSON of :func:`spec_to_wire`, memoized per spec object.

    One serialization per spec per session, reused across lease frames,
    byte accounting and base-id hashing.
    """
    cached = spec.__dict__.get("_wire_json")
    if cached is not None:
        return cached
    text = json.dumps(spec_to_wire(spec), sort_keys=True, separators=(",", ":"))
    object.__setattr__(spec, "_wire_json", text)
    return text


def wire_id(spec: RunSpec) -> str:
    """Content hash of the full wire form — the base-spec id.

    Unlike ``spec.key()`` this covers *everything* on the wire (tags
    included), so two bases are interchangeable iff their wire forms are
    byte-identical.
    """
    cached = spec.__dict__.get("_wire_id")
    if cached is not None:
        return cached
    digest = hashlib.sha256(wire_json(spec).encode("utf-8")).hexdigest()
    object.__setattr__(spec, "_wire_id", digest)
    return digest


def encode_delta(base: RunSpec, spec: RunSpec) -> Dict[str, Any]:
    """Minimal diff turning ``base`` into ``spec`` (shallow on params/tags).

    Only changed fields appear; an empty dict means the specs share
    their entire wire form but for nothing at all (identical specs).
    """
    delta: Dict[str, Any] = {}
    if spec.kind != base.kind:
        delta["kind"] = spec.kind
    if spec.seed != base.seed:
        delta["seed"] = spec.seed
    if tuple(spec.metrics) != tuple(base.metrics):
        delta["metrics"] = list(spec.metrics)
    changed = {
        k: v
        for k, v in spec.params.items()
        if k not in base.params or base.params[k] != v
    }
    dropped = sorted(k for k in base.params if k not in spec.params)
    if changed:
        delta["params"] = changed
    if dropped:
        delta["params_drop"] = dropped
    tag_changed = {
        k: v
        for k, v in spec.tags.items()
        if k not in base.tags or base.tags[k] != v
    }
    tag_dropped = sorted(k for k in base.tags if k not in spec.tags)
    if tag_changed:
        delta["tags"] = tag_changed
    if tag_dropped:
        delta["tags_drop"] = tag_dropped
    return delta


def apply_delta(base: RunSpec, delta: Any) -> RunSpec:
    """Rebuild the spec ``delta`` encodes against ``base``.

    Validates shape eagerly: unknown fields, wrong types or a
    non-mapping payload raise :class:`SpecDeltaError`.
    """
    if not isinstance(delta, Mapping):
        raise SpecDeltaError(
            f"spec delta must be a mapping, got {type(delta).__name__}"
        )
    unknown = set(delta) - _DELTA_FIELDS
    if unknown:
        raise SpecDeltaError(f"unknown spec delta fields {sorted(unknown)}")
    kind = delta.get("kind", base.kind)
    if not isinstance(kind, str):
        raise SpecDeltaError(f"spec delta kind must be a string, got {kind!r}")
    seed = delta.get("seed", base.seed)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise SpecDeltaError(f"spec delta seed must be an int, got {seed!r}")
    metrics = delta.get("metrics")
    if metrics is None:
        metrics = tuple(base.metrics)
    elif isinstance(metrics, (list, tuple)) and all(
        isinstance(m, str) for m in metrics
    ):
        metrics = tuple(metrics)
    else:
        raise SpecDeltaError(
            f"spec delta metrics must be a list of strings, got {metrics!r}"
        )
    params = _patch(base.params, delta, "params", "params_drop")
    tags = _patch(base.tags, delta, "tags", "tags_drop")
    try:
        return RunSpec(
            kind=kind, params=params, seed=seed, metrics=metrics, tags=tags
        )
    except ReproError as exc:
        raise SpecDeltaError(f"spec delta rebuilds no valid spec: {exc}") from exc


def _patch(
    base: Mapping[str, Any], delta: Mapping[str, Any], set_field: str,
    drop_field: str,
) -> Dict[str, Any]:
    out = dict(base)
    changed = delta.get(set_field)
    if changed is not None:
        if not isinstance(changed, Mapping):
            raise SpecDeltaError(
                f"spec delta {set_field} must be a mapping, got {changed!r}"
            )
        out.update(changed)
    dropped = delta.get(drop_field)
    if dropped is not None:
        if not isinstance(dropped, (list, tuple)) or not all(
            isinstance(k, str) for k in dropped
        ):
            raise SpecDeltaError(
                f"spec delta {drop_field} must be a list of keys, "
                f"got {dropped!r}"
            )
        for key in dropped:
            out.pop(key, None)
    return out


@dataclass
class EncodedSpec:
    """One spec, ready for the wire.

    Exactly one of ``delta``/``full`` is set.  ``base_id`` names the
    interned base the delta applies to (``None`` for a full send outside
    any group).  ``wire_bytes`` is what actually ships, ``full_bytes``
    what a whole-spec send would have cost.
    """

    base_id: Optional[str]
    delta: Optional[Dict[str, Any]]
    full: Optional[Dict[str, Any]]
    wire_bytes: int
    full_bytes: int

    @property
    def saved_bytes(self) -> int:
        return max(0, self.full_bytes - self.wire_bytes)


class SpecInterner:
    """Sender-side base-spec table, one base per structural group.

    The first spec of each ``(kind, metrics)`` group becomes the group's
    base; every later member encodes as a delta against it unless the
    delta would not be smaller than the full form.  Batch pseudo-specs
    (:data:`~repro.sweep.spec.BATCH_KIND`) always ship whole — their
    params embed entire member specs, so a shallow diff cannot win and
    the batch already amortizes its frame over N replicates.
    """

    def __init__(self) -> None:
        #: group -> base spec
        self._group_base: Dict[Tuple[str, Tuple[str, ...]], RunSpec] = {}
        #: base_id -> base spec (what receivers must be shipped)
        self.bases: Dict[str, RunSpec] = {}

    @staticmethod
    def _group(spec: RunSpec) -> Tuple[str, Tuple[str, ...]]:
        return (spec.kind, tuple(sorted(spec.metrics)))

    def encode(self, spec: RunSpec) -> EncodedSpec:
        full_text = wire_json(spec)
        if spec.kind == BATCH_KIND:
            return EncodedSpec(
                base_id=None, delta=None, full=spec_to_wire(spec),
                wire_bytes=len(full_text), full_bytes=len(full_text),
            )
        group = self._group(spec)
        base = self._group_base.get(group)
        if base is None:
            self._group_base[group] = spec
            self.bases[wire_id(spec)] = spec
            return EncodedSpec(
                base_id=None, delta=None, full=spec_to_wire(spec),
                wire_bytes=len(full_text), full_bytes=len(full_text),
            )
        delta = encode_delta(base, spec)
        delta_text = json.dumps(delta, sort_keys=True, separators=(",", ":"))
        if len(delta_text) >= len(full_text):
            return EncodedSpec(
                base_id=None, delta=None, full=spec_to_wire(spec),
                wire_bytes=len(full_text), full_bytes=len(full_text),
            )
        return EncodedSpec(
            base_id=wire_id(base), delta=delta, full=None,
            wire_bytes=len(delta_text), full_bytes=len(full_text),
        )


class SpecDecoder:
    """Receiver-side base table; content-addressed, so never stale.

    One decoder per worker *process* is safe across reconnects and even
    coordinator restarts: a re-registered base with a matching id is
    byte-identical by construction (the id is the hash of the wire
    form), and registration verifies exactly that.
    """

    def __init__(self) -> None:
        self.bases: Dict[str, RunSpec] = {}

    def add_base(self, base_id: Any, data: Any) -> RunSpec:
        if not isinstance(base_id, str) or not base_id:
            raise SpecDeltaError(f"spec base id must be a string, got {base_id!r}")
        if not isinstance(data, Mapping):
            raise SpecDeltaError(
                f"spec base payload must be a mapping, got {type(data).__name__}"
            )
        spec = spec_from_wire(data)
        if wire_id(spec) != base_id:
            raise SpecDeltaError(
                f"spec base {base_id[:12]} fails its content check "
                "(stream corruption)"
            )
        self.bases[base_id] = spec
        return spec

    def decode(self, payload: Mapping[str, Any]) -> RunSpec:
        """Rebuild the spec of one lease payload.

        ``payload`` carries either ``{"spec": <full wire form>}`` or
        ``{"base": <id>, "delta": <diff>}``.
        """
        full = payload.get("spec")
        if full is not None:
            return spec_from_wire(full)
        base_id = payload.get("base")
        if base_id is None:
            raise SpecDeltaError("lease carries neither a spec nor a delta")
        base = self.bases.get(base_id)
        if base is None:
            raise SpecDeltaError(
                f"unknown spec base {str(base_id)[:12]} (not registered "
                "on this receiver)"
            )
        return apply_delta(base, payload.get("delta") or {})


__all__ = [
    "EncodedSpec",
    "SpecDecoder",
    "SpecDeltaError",
    "SpecInterner",
    "apply_delta",
    "dispatch_fast_default",
    "encode_delta",
    "spec_from_wire",
    "spec_to_wire",
    "wire_id",
    "wire_json",
]
