"""The parallel sweep engine with a content-addressed result cache.

:class:`SweepRunner` executes a list of :class:`RunSpec`\\ s and returns
their metric dicts in input order.  Identical specs are executed once;
results are looked up in (and written back to) an on-disk JSON cache keyed
by the spec's content hash — which includes the package version, so a
version bump invalidates everything.  Misses fan out over long-lived
worker processes; because every run is a pure function of its spec (each
worker builds its own environment and RNGs from the spec's seed),
parallel results are bit-identical to serial ones regardless of
scheduling order.

Two throughput layers sit on top of the plain fan-out:

* **Predictive dispatch** — a persistent :class:`~repro.sweep.cost.CostModel`
  learns per-spec wall times and orders pool submission longest-first, so
  the slowest run never starts last.  Advisory only: submission order
  cannot change any result (results are keyed by content hash).
* **Adaptive replication** (:meth:`SweepRunner.run_adaptive`) — replicate
  each cell across derived seeds until the confidence interval of its
  scalar metrics is tighter than the policy's target, instead of paying a
  fixed worst-case seed count everywhere.

And one robustness layer underneath (see ``docs/robustness.md``):

* a worker that **crashes** (segfault, OOM-kill, ``os._exit``) or blows a
  per-run wall-clock **timeout** is respawned and its spec retried with
  exponential backoff, up to ``max_attempts``;
* a spec whose execution raises is a *deterministic* failure — it is
  captured once (no retry) as an **error result**
  ``{"error": {"type", "message", "attempts", "kind"}}`` in place of its
  metrics, so one broken cell never aborts the sweep;
* error results are never cached or checkpointed, and they are recorded
  per run in ``manifest.json``;
* successful runs append to a per-label **checkpoint** (JSONL under
  ``<cache_dir>/checkpoints/``); ``resume=True`` replays checkpointed
  cells without recomputing them — the recovery path when a sweep
  process itself died mid-flight.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.profile.phases import phase_scope
from repro.telemetry import HEARTBEAT_TAG, ProgressEmitter, Telemetry
from repro.sweep.adaptive import (
    ADAPTIVE_KEY,
    AdaptivePolicy,
    aggregate_replicates,
    converged,
    replicate_spec,
    scalar_accumulators,
)
from repro.sweep import wire
from repro.sweep.cost import COST_MODEL_FILE, CostModel
from repro.sweep.registry import execute_spec
from repro.sweep.spec import RunSpec

#: Pipe-message tag registering a base spec with a pool worker (the
#: local-path analog of the cluster's ``spec_base`` frame).
_BASE_TAG = "__spec_base__"

#: Default cache location; overridable per-runner or via the environment.
DEFAULT_CACHE_DIR = "~/.cache/repro-sweeps"

_CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"

#: Metrics-dict key that marks a captured per-spec failure.
ERROR_KEY = "error"


def _parse_batch_runs(value) -> Optional[int]:
    """Normalize a ``batch_runs`` knob into an internal width cap.

    ``"off"``/``None``/``1`` disable batching (returns ``None``);
    ``"auto"`` batches with unlimited width (returns ``0``); an integer
    ``N >= 2`` caps each batch at ``N`` replicates.
    """
    if value is None:
        return None
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "off":
            return None
        if text == "auto":
            return 0
        try:
            value = int(text)
        except ValueError:
            raise ConfigurationError(
                f"batch_runs must be 'auto', 'off' or an integer >= 1, "
                f"got {value!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"batch_runs must be 'auto', 'off' or an integer >= 1, "
            f"got {value!r}"
        )
    if value < 1:
        raise ConfigurationError(
            f"batch_runs must be >= 1 when numeric, got {value}"
        )
    return None if value == 1 else value


def default_cache_dir() -> Path:
    """The result-cache directory honouring ``$REPRO_SWEEP_CACHE``."""
    return Path(os.environ.get(_CACHE_ENV_VAR, DEFAULT_CACHE_DIR)).expanduser()


def is_error_result(metrics: Any) -> bool:
    """Whether a sweep result is a captured failure instead of metrics.

    Failed specs resolve to ``{"error": {"type", "message", "attempts",
    "kind"}}`` where ``kind`` is ``"exception"`` (the run raised —
    deterministic, not retried), ``"crash"`` (the worker process died) or
    ``"timeout"`` (the run blew the per-run wall-clock budget).
    """
    return isinstance(metrics, dict) and isinstance(metrics.get(ERROR_KEY), dict)


def _error_result(
    etype: str, message: str, attempts: int, kind: str
) -> Dict[str, Any]:
    return {
        ERROR_KEY: {
            "type": etype,
            "message": message,
            "attempts": attempts,
            "kind": kind,
        }
    }


@dataclass
class SweepStats:
    """Bookkeeping of one :meth:`SweepRunner.run` call."""

    label: str
    specs: int = 0
    unique: int = 0
    hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    #: Adaptive replication only: distinct cells, replicates run beyond
    #: the per-cell minimum, and replicates avoided against the per-cell
    #: maximum.  All zero for plain sweeps.
    cells: int = 0
    seeds_added: int = 0
    seeds_saved: int = 0
    #: Robustness counters: specs that ended as error results, retry
    #: re-executions after worker crashes/timeouts, per-run timeouts
    #: observed, and cells replayed from a checkpoint under ``resume``.
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    resumed: int = 0
    #: Checkpoint lines skipped under ``resume`` because their cache key
    #: no longer matches the recorded identity (stale version or
    #: tampering) — see ``docs/robustness.md``.
    resumed_stale: int = 0
    #: Specs (replicates) that exhausted their retry budget on
    #: infrastructure failures; the CLI maps any of these to exit code 4.
    exhausted: int = 0
    #: Batched replication (see :mod:`repro.core.batched`): batch jobs
    #: submitted and replicates executed inside them.  ``seeds_added``
    #: and ``executed`` always count *replicates*, never batches.
    batches: int = 0
    batched_runs: int = 0
    #: Of ``batches``, how many executed under the lockstep co-advance
    #: driver (the rest ran the legacy scalar-in-turn batch path).
    lockstep_batches: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.unique if self.unique else 0.0

    def summary(self) -> str:
        text = (
            f"{self.specs} runs ({self.unique} unique): "
            f"{self.hits} cached, {self.executed} executed on "
            f"{self.jobs} worker{'s' if self.jobs != 1 else ''} "
            f"in {self.elapsed:.1f}s (hit rate {self.hit_rate:.0%})"
        )
        if self.resumed:
            text += f"; {self.resumed} resumed from checkpoint"
        if self.resumed_stale:
            text += f"; {self.resumed_stale} stale checkpoint lines skipped"
        if self.failures or self.retries or self.timeouts:
            text += (
                f"; robustness: {self.failures} failed, "
                f"{self.retries} retried, {self.timeouts} timed out"
            )
            if self.exhausted:
                text += f", {self.exhausted} exhausted retries"
        if self.cells:
            text += (
                f"; adaptive: {self.cells} cells, "
                f"+{self.seeds_added} seeds grown, "
                f"{self.seeds_saved} seeds saved"
            )
        if self.batches:
            text += (
                f"; batched: {self.batched_runs} replicates in "
                f"{self.batches} batch{'es' if self.batches != 1 else ''}"
            )
            if self.lockstep_batches:
                text += f" ({self.lockstep_batches} lockstep)"
        return text

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (feeds the sweep manifest)."""
        return {
            "label": self.label,
            "specs": self.specs,
            "unique": self.unique,
            "hits": self.hits,
            "executed": self.executed,
            "hit_rate": self.hit_rate,
            "jobs": self.jobs,
            "elapsed": self.elapsed,
            "cells": self.cells,
            "seeds_added": self.seeds_added,
            "seeds_saved": self.seeds_saved,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "resumed": self.resumed,
            "resumed_stale": self.resumed_stale,
            "exhausted": self.exhausted,
            "batches": self.batches,
            "batched_runs": self.batched_runs,
            "lockstep_batches": self.lockstep_batches,
        }


#: Stats of completed sweeps, drained by the CLI for per-figure summaries.
_STATS_LOG: List[SweepStats] = []


def pop_stats() -> List[SweepStats]:
    """Return and clear the stats accumulated since the last call."""
    drained = list(_STATS_LOG)
    _STATS_LOG.clear()
    return drained


def _worker_main(conn) -> None:
    """Long-lived pool worker: executes one assignment per message.

    An assignment is ``(key, spec, telem)``; ``telem`` is ``None`` when
    telemetry is off, else a small config mapping (heartbeat interval).
    ``spec`` is either a :class:`RunSpec` or, on the dispatch fast lane,
    a ``(base_id, delta)`` pair against a base previously registered by
    a ``(_BASE_TAG, base_id, wire_data)`` message.  A delta that cannot
    decode (a base this process never saw) kills the worker, which the
    supervisor observes as a crash: the retry goes to a fresh process
    whose bases all re-ship.
    Replies ``(key, ok, payload, wall, snap)`` where ``payload`` is the
    metrics dict on success or ``{"type", "message"}`` when the run
    raised, and ``snap`` is the worker-side metrics-registry snapshot
    (``None`` with telemetry off).  While a metered run executes, a
    :class:`~repro.telemetry.heartbeat.HeartbeatSender` thread multiplexes
    ``(HEARTBEAT_TAG, key, elapsed)`` progress pings over the same pipe
    (all sends share one lock).  Only ``Exception`` is caught —
    ``KeyboardInterrupt``/``SystemExit`` kill the process, which the
    supervisor observes as a crash and retries.
    """
    send_lock = threading.Lock()

    def _send(message) -> None:
        with send_lock:
            conn.send(message)

    bases: Dict[str, RunSpec] = {}
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        if item[0] == _BASE_TAG:
            _tag, base_id, data = item
            bases[base_id] = wire.spec_from_wire(data)
            continue
        key, spec, telem = item
        if isinstance(spec, tuple):
            base_id, delta = spec
            spec = wire.apply_delta(bases[base_id], delta)
        start = time.perf_counter()
        snap = None
        try:
            if telem:
                from repro.telemetry import HeartbeatSender
                from repro.telemetry.registry import MetricsRegistry, install

                registry = MetricsRegistry()
                previous = install(registry)
                try:
                    with HeartbeatSender(
                        _send, key,
                        float(telem.get("heartbeat_interval", 0.25)),
                    ):
                        metrics = execute_spec(spec)
                finally:
                    install(previous)
                    snap = registry.snapshot()
            else:
                metrics = execute_spec(spec)
        except Exception as exc:
            payload = (
                key,
                False,
                {"type": type(exc).__name__, "message": str(exc)},
                time.perf_counter() - start,
                snap,
            )
        else:
            payload = (key, True, metrics, time.perf_counter() - start, snap)
        try:
            _send(payload)
        except (OSError, BrokenPipeError):
            return


def _is_traced(spec: RunSpec) -> bool:
    """Whether the spec requests tracing (always bypasses the cache).

    The trace config already alters the cache key (it lives in
    ``params``), but a traced run's side effects — the exported files —
    must be regenerated even when its metrics were cached, so traced
    specs skip the cache (and the checkpoint) entirely.
    """
    return spec.params.get("trace") is not None


@dataclass
class _Job:
    """One unit of supervised work: a unique spec plus its retry state."""

    key: str
    spec: RunSpec
    attempts: int = 0
    not_before: float = 0.0


@dataclass
class _Handle:
    """A live worker process and, when busy, its current assignment."""

    proc: multiprocessing.Process
    conn: Any
    job: Optional[_Job] = None
    deadline: Optional[float] = None
    #: This worker's row in the telemetry WorkerTable.
    ident: int = -1
    #: Base-spec ids already shipped down *this* process's pipe (a
    #: respawn makes a fresh handle, so bases re-ship).
    bases_sent: Set[str] = field(default_factory=set)


@dataclass
class _BatchStats:
    """Outcome counters of one :meth:`SweepRunner._execute_unique` call."""

    hits: int = 0
    resumed: int = 0
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    exhausted: int = 0
    workers: int = 0
    batches: int = 0
    batched_runs: int = 0
    lockstep_batches: int = 0


class SweepRunner:
    """Fans :class:`RunSpec` lists out over processes, with caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``1`` runs
        in-process (no pool) unless a ``timeout`` is set, which needs
        subprocess isolation to enforce.
    cache_dir:
        Result-cache directory; default ``~/.cache/repro-sweeps`` (or
        ``$REPRO_SWEEP_CACHE``).
    use_cache:
        When False, neither reads nor writes the cache (nor persists the
        cost model — predictions still order dispatch in-memory).
    label:
        Name used in progress lines, stats and the checkpoint file name
        (e.g. the figure name).
    progress:
        Emit ``[sweep:<label>] ...`` progress lines on stderr.
    manifest_dir:
        When set, :meth:`run` writes ``manifest.json`` there: one entry
        per spec with its cache key, kind, tags, seed, package version,
        per-run wall time, attempt count, whether it was served from the
        cache/checkpoint and any captured error, plus the sweep's
        :class:`SweepStats`.
    timeout:
        Per-run wall-clock budget in seconds; a run past it is killed and
        retried.  ``None`` (default) never times runs out.
    max_attempts:
        Total attempts per spec for *infrastructure* failures (worker
        crash or timeout); past the budget the spec resolves to an error
        result.  In-run exceptions are deterministic and never retried.
    retry_backoff:
        Base wall-clock delay before re-dispatching a crashed/timed-out
        spec; attempt ``n`` waits ``retry_backoff * 2**(n-1)`` seconds.
    resume:
        Replay this label's checkpoint: previously-completed cells are
        served from ``<cache_dir>/checkpoints/<label>.jsonl`` instead of
        being recomputed.  Without ``resume`` the checkpoint is started
        afresh on each :meth:`run`.
    batch_runs:
        Batched replicate execution inside :meth:`run_adaptive` (see
        :mod:`repro.core.batched`): ``"auto"`` (default) packs each
        adaptive round's pending same-cell replicates into one batched
        run, ``"off"`` keeps every replicate scalar, and an integer
        ``N`` caps the batch width.  Cells that cannot batch (faults,
        unkeyable kernels, non-``single`` executors, traced runs) fall
        back to scalar execution; plain :meth:`run` never batches.
        Per-replicate metrics, cache entries and checkpoints are
        bit-identical either way.
    telemetry:
        A :class:`~repro.telemetry.Telemetry` hub to record into.  When
        omitted, a per-runner *disabled* hub is used — metric updates hit
        shared no-op objects and nothing is written (the zero-overhead
        contract; results are bit-identical either way).  When the hub is
        enabled, the sweep maintains live counters/gauges/histograms, a
        per-worker heartbeat table (see ``docs/observability.md``), and
        writes ``metrics.jsonl`` + ``metrics.prom`` next to the manifest.
    watch:
        Render the live terminal dashboard (ANSI, stderr) while the
        sweep runs.  Implies nothing about ``telemetry`` — harnesses
        enable both together.
    cluster:
        Route execution through the :mod:`repro.cluster` coordinator
        instead of the local pool (see ``docs/cluster.md``).  ``"inproc"``
        listens on an automatic in-process address and spawns ``jobs``
        worker threads itself; an explicit ``inproc://name`` or
        ``tcp://host:port`` address listens there and waits for external
        workers (``python -m repro.cluster.worker --connect ...``) to
        join.  Caching, checkpointing, ``resume`` and retry budgets work
        identically; results are bit-identical to a local run.
    lease_timeout / liveness_timeout:
        Cluster-only overrides for the coordinator's lease-expiry and
        worker-silence budgets (see
        :class:`~repro.cluster.coordinator.ClusterCoordinator`).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        label: str = "sweep",
        progress: bool = True,
        manifest_dir: Optional[os.PathLike] = None,
        timeout: Optional[float] = None,
        max_attempts: int = 2,
        retry_backoff: float = 0.5,
        resume: bool = False,
        batch_runs="auto",
        telemetry: Optional[Telemetry] = None,
        watch: bool = False,
        cluster: Optional[str] = None,
        lease_timeout: Optional[float] = None,
        liveness_timeout: Optional[float] = None,
    ) -> None:
        self.jobs = os.cpu_count() or 1 if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(
                f"timeout must be > 0 or None, got {timeout}"
            )
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_cache = use_cache
        self.label = label
        self.progress = progress
        self.manifest_dir = Path(manifest_dir) if manifest_dir else None
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.resume = resume
        self.cluster = cluster
        self.lease_timeout = lease_timeout
        self.liveness_timeout = liveness_timeout
        self._coordinator = None
        self._cluster_workers: List[Any] = []
        self._resumed_stale = 0
        self.last_stats: Optional[SweepStats] = None
        self.cost_model = CostModel(
            self.cache_dir / COST_MODEL_FILE if use_cache else None
        )
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(label=label, enabled=False)
        )
        if self.telemetry.out_dir is None and self.manifest_dir is not None:
            self.telemetry.out_dir = self.manifest_dir
        self.watch = watch
        self._dashboard = None
        #: Every ``[sweep:<label>]`` line flows through this emitter; the
        #: dashboard installs itself as its sink while watching.
        self._emitter = ProgressEmitter(label, enabled=progress)
        self.telemetry.progress_emitter = self._emitter
        reg = self.telemetry.registry
        self._m_specs = reg.counter(
            "sweep_specs_total", "Specs submitted to the sweep runner"
        )
        self._m_cache_hits = reg.counter(
            "sweep_cache_hits_total",
            "Unique specs served from the result cache",
        )
        self._m_cache_misses = reg.counter(
            "sweep_cache_misses_total",
            "Unique specs that had to execute (no cache/checkpoint entry)",
        )
        self._m_resumed = reg.counter(
            "sweep_resumed_total",
            "Unique specs replayed from the resume checkpoint",
        )
        self._m_runs_started = reg.counter(
            "sweep_runs_started_total",
            "Run assignments dispatched (retries re-count)",
        )
        self._m_runs_finished = reg.counter(
            "sweep_runs_finished_total",
            "Runs (replicates) that completed successfully",
        )
        self._m_failures = reg.counter(
            "sweep_failures_total", "Specs that resolved to error results"
        )
        self._m_retries = reg.counter(
            "sweep_retries_total",
            "Re-dispatches after worker crashes or timeouts",
        )
        self._m_timeouts = reg.counter(
            "sweep_timeouts_total", "Runs killed by the per-run timeout"
        )
        self._m_stragglers = reg.counter(
            "sweep_stragglers_total",
            "Busy runs flagged past their expected envelope (never killed)",
        )
        self._m_heartbeats = reg.counter(
            "sweep_heartbeats_total", "Worker heartbeat messages received"
        )
        self._m_queue_depth = reg.gauge(
            "sweep_queue_depth", "Specs waiting for a worker (incl. backoff)"
        )
        self._m_workers_busy = reg.gauge(
            "sweep_workers_busy", "Workers currently executing a run"
        )
        self._m_workers_live = reg.gauge(
            "sweep_workers_live", "Worker processes currently alive"
        )
        self._m_run_seconds = reg.histogram(
            "sweep_run_seconds",
            "Per-run wall seconds (batched runs at the replicate marginal)",
        )
        self._m_batch_width = reg.histogram(
            "sweep_batch_width",
            "Replicates packed per batched run",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        self._m_batch_fallback = reg.counter(
            "sweep_batch_fallback_total",
            "Batches whose harness failed and whose members re-ran scalar",
        )
        #: Dispatch fast lane (see docs/performance.md): delta-encode
        #: pool assignments against interned base specs.  Same counter
        #: names as the cluster coordinator — get-or-create, so a shared
        #: hub aggregates both paths.
        self._dispatch_fast = wire.dispatch_fast_default()
        self._interner = wire.SpecInterner()
        self._m_dispatch_frames = reg.counter(
            "dispatch_frames_total",
            "Messages sent on the dispatch path (lease, lease_batch and "
            "spec_base frames; pool assignments on the local path)",
        )
        self._m_dispatch_bytes = reg.counter(
            "dispatch_spec_bytes_total",
            "Encoded spec payload bytes actually shipped",
        )
        self._m_dispatch_saved = reg.counter(
            "dispatch_bytes_saved_total",
            "Spec payload bytes avoided by delta encoding",
        )
        self._m_dispatch_deltas = reg.counter(
            "dispatch_deltas_total",
            "Specs shipped as deltas against an interned base",
        )
        self._checkpoint_entries: Optional[Dict[str, Dict[str, Any]]] = None
        self._attempts: Dict[str, int] = {}
        self._sources: Dict[str, str] = {}
        #: Per-spec attempt history for the manifest: one
        #: ``{"attempt", "outcome", "wall"}`` entry per dispatch outcome.
        self._history: Dict[str, List[Dict[str, Any]]] = {}
        #: Batch width cap: None = batching off, 0 = unlimited, N = cap.
        self._batch_cap = _parse_batch_runs(batch_runs)
        #: Pseudo-spec key -> [(replicate key, replicate spec), ...] of
        #: every in-flight batch job, and replicate key -> batch width
        #: for replicates that actually executed batched (manifest).
        self._batch_members: Dict[str, List[Tuple[str, RunSpec]]] = {}
        self._batched_width: Dict[str, int] = {}
        #: Replicate key -> execution mode of its batch ("lockstep" or
        #: "scalar"), and replicate key -> why it did *not* run batched
        #: (an eligibility reason from
        #: :func:`repro.core.batched.batch_ineligible_reason`,
        #: "solo-replicate", "batch-failed", or "batching-off").  Both
        #: feed the manifest's structured ``batched`` entry.
        self._batched_mode: Dict[str, str] = {}
        self._batch_reason: Dict[str, str] = {}

    # -- cache ----------------------------------------------------------
    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._cache_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            # Unreadable or corrupt/truncated JSON: treat as a miss — the
            # run is recomputed and the entry rewritten.
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            # Parseable JSON of the wrong shape (or a hash mismatch) is
            # corruption too, not an error.
            return None
        metrics = entry.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def _cache_store(self, spec: RunSpec, key: str, metrics: Dict[str, Any]) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        entry = {"key": key, "identity": spec.identity(), "metrics": metrics}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)

    # -- checkpoint (crash-of-the-sweep-itself recovery) -----------------
    @property
    def _checkpoint_active(self) -> bool:
        return self.use_cache or self.resume

    def _checkpoint_path(self) -> Path:
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", self.label) or "sweep"
        return self.cache_dir / "checkpoints" / f"{safe}.jsonl"

    def _load_checkpoint(self) -> Dict[str, Dict[str, Any]]:
        """Parse the label's checkpoint, tolerating a torn final line.

        Every line is *validated* before it is trusted: the recorded
        identity must hash back to the recorded cache key, and its
        package version must match the running one.  A line that fails —
        a stale checkpoint from an older version, or a tampered/corrupted
        entry — is skipped and logged (counted in
        ``SweepStats.resumed_stale``) so the cell recomputes instead of
        silently reusing a result the current code would not produce.
        """
        import hashlib

        from repro._version import __version__

        entries: Dict[str, Dict[str, Any]] = {}
        stale = 0
        try:
            fh = open(self._checkpoint_path(), "r", encoding="utf-8")
        except OSError:
            return entries
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a killed sweep; skip
                if not isinstance(entry, dict):
                    continue
                key = entry.get("key")
                metrics = entry.get("metrics")
                if not (isinstance(key, str) and isinstance(metrics, dict)):
                    continue
                identity = entry.get("identity")
                if isinstance(identity, dict):
                    payload = json.dumps(
                        identity, sort_keys=True, separators=(",", ":")
                    )
                    digest = hashlib.sha256(
                        payload.encode("utf-8")
                    ).hexdigest()
                    if (
                        digest != key
                        or identity.get("version") != __version__
                    ):
                        stale += 1
                        self._log(
                            f"checkpoint line for {key[:12]} is stale "
                            f"(recorded version "
                            f"{identity.get('version')!r}); recomputing",
                            kind="retry",
                        )
                        continue
                entries[key] = metrics
        if stale:
            self._log(
                f"skipped {stale} stale checkpoint line(s); the affected "
                "cells will recompute",
                kind="retry",
            )
        self._resumed_stale += stale
        return entries

    def _checkpoint_append(
        self, spec: RunSpec, key: str, metrics: Dict[str, Any]
    ) -> None:
        if not self._checkpoint_active:
            return
        path = self._checkpoint_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "identity": spec.identity(), "metrics": metrics}
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

    def _begin_sweep(self) -> None:
        """Reset per-sweep bookkeeping; start or load the checkpoint."""
        self._attempts = {}
        self._sources = {}
        self._history = {}
        self._batch_members = {}
        self._batched_width = {}
        self._batched_mode = {}
        self._batch_reason = {}
        tele = self.telemetry
        tele.set_progress(0, 0, None)
        tele.begin()
        if self.watch and self._dashboard is None:
            from repro.telemetry.dashboard import Dashboard

            self._dashboard = Dashboard(tele)
        if self._dashboard is not None:
            self._dashboard.open()
        if self.resume:
            if self._checkpoint_entries is None:
                self._checkpoint_entries = self._load_checkpoint()
        elif self._checkpoint_active:
            try:
                self._checkpoint_path().unlink()
            except OSError:
                pass

    # -- execution ------------------------------------------------------
    def _log(self, message: str, kind: str = "info") -> None:
        self._emitter.emit(message, kind)

    def _tick(
        self,
        queue_depth: int,
        busy: int,
        live: int,
        eta: Optional[float] = None,
    ) -> None:
        """One telemetry heartbeat of the dispatch loop: gauges, progress,
        throttled JSONL flush, dashboard frame."""
        tele = self.telemetry
        self._m_queue_depth.set(queue_depth)
        self._m_workers_busy.set(busy)
        self._m_workers_live.set(live)
        tele.set_progress(tele.total, tele.done, eta)
        tele.flush()
        if self._dashboard is not None:
            self._dashboard.tick()

    def _estimate_eta(
        self,
        queued: Sequence[_Job],
        busy: Sequence[_Handle],
        workers: int,
    ) -> Optional[float]:
        """Predicted seconds to drain the sweep, from the cost EWMAs.

        Unknown specs are priced at the mean of the known predictions;
        with no known prediction at all there is no estimate.
        """
        preds = [self.cost_model.predict(job.spec) for job in queued]
        known = [p for p in preds if p is not None]
        fill = (sum(known) / len(known)) if known else None
        if preds and fill is None:
            return None
        ahead = sum((p if p is not None else fill) for p in preds)
        now = self.telemetry.now()
        running = 0.0
        for handle in busy:
            if handle.job is None:
                continue
            expected = self.cost_model.predict(handle.job.spec)
            if expected is None:
                expected = fill if fill is not None else 0.0
            try:
                elapsed = self.telemetry.workers.view(handle.ident).elapsed(now)
            except KeyError:
                elapsed = 0.0
            running += max(0.0, expected - elapsed)
        return (ahead + running) / max(workers, 1)

    def _execute_unique(
        self, unique: Dict[str, RunSpec], allow_batching: bool = False
    ) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, float], _BatchStats]:
        """Resolve every unique spec: checkpoint, cache, then fan-out.

        Returns ``(results, walls, batch_stats)``.  Submission order is
        chosen by the cost model (unknown first, then longest-first) but
        results are keyed by content hash, so the order — like the pool's
        completion order — cannot influence any returned value.

        With ``allow_batching`` (the adaptive path), pending replicates
        of one cell are packed into batched pseudo-runs; their results
        still land under the individual replicate keys.
        """
        results: Dict[str, Dict[str, Any]] = {}
        walls: Dict[str, float] = {}
        batch = _BatchStats()
        if self.resume and self._checkpoint_entries:
            for key, spec in unique.items():
                if _is_traced(spec):
                    continue
                checkpointed = self._checkpoint_entries.get(key)
                if checkpointed is not None:
                    results[key] = checkpointed
                    self._sources[key] = "checkpoint"
                    batch.resumed += 1
        if self.use_cache:
            for key, spec in unique.items():
                if _is_traced(spec) or key in results:
                    continue
                cached = self._cache_load(key)
                if cached is not None:
                    results[key] = cached
                    self._sources[key] = "cache"
        batch.hits = len(results)
        tele = self.telemetry
        tele.total += len(unique)
        tele.done += batch.hits
        self._m_cache_hits.inc(batch.hits - batch.resumed)
        self._m_resumed.inc(batch.resumed)
        pending = [
            (key, spec) for key, spec in unique.items() if key not in results
        ]
        self._m_cache_misses.inc(len(pending))
        planned_batches = planned_reps = 0
        with phase_scope("dispatch"):
            if (
                allow_batching
                and self._batch_cap is not None
                and len(pending) > 1
            ):
                pending, planned_batches, planned_reps = self._plan_batches(
                    pending
                )
            pending = self.cost_model.order(pending)

        workers = min(self.jobs, len(pending)) if pending else 0
        batch.workers = workers
        self._log(
            f"{len(unique)} unique: {batch.hits} cached"
            + (f" ({batch.resumed} resumed)" if batch.resumed else "")
            + f", {len(pending)} to execute"
            + (
                f" ({planned_reps} replicates in {planned_batches} batches)"
                if planned_batches
                else ""
            )
            + (f" on {workers} workers" if workers > 1 else "")
        )
        if self.cluster is not None:
            self._run_cluster(pending, results, walls, batch)
        elif workers > 1 or (workers == 1 and self.timeout is not None):
            self._run_supervised(pending, results, walls, batch, workers)
        else:
            self._run_inline(pending, results, walls, batch)
        if pending:
            self.cost_model.save()
        return results, walls, batch

    def _plan_batches(
        self, pending: Sequence[Tuple[str, RunSpec]]
    ) -> Tuple[List[Tuple[str, RunSpec]], int, int]:
        """Pack pending same-cell replicates into batch pseudo-jobs.

        Replicates group by cell identity (spec minus seed); groups of
        two or more eligible replicates become one batched run each
        (chunked by the width cap), everything else stays scalar.
        Returns ``(new pending, batches, replicates batched)``.
        """
        from repro.core.batched import (
            batch_group_key,
            batch_ineligible_reason,
            make_batch_spec,
        )

        scalar: List[Tuple[str, RunSpec]] = []
        groups: Dict[str, List[Tuple[str, RunSpec]]] = {}
        order: List[str] = []
        for key, spec in pending:
            reason = batch_ineligible_reason(spec)
            if reason is None:
                group = batch_group_key(spec)
                if group not in groups:
                    groups[group] = []
                    order.append(group)
                groups[group].append((key, spec))
            else:
                self._batch_reason[key] = reason
                scalar.append((key, spec))
        out = scalar
        cap = self._batch_cap if self._batch_cap else len(pending)
        n_batches = n_reps = 0
        for group in order:
            members = groups[group]
            for start in range(0, len(members), cap):
                chunk = members[start:start + cap]
                if len(chunk) < 2:
                    for chunk_key, _chunk_spec in chunk:
                        self._batch_reason[chunk_key] = "solo-replicate"
                    out.extend(chunk)
                    continue
                pseudo = make_batch_spec([spec for _, spec in chunk])
                pseudo_key = pseudo.key()
                self._batch_members[pseudo_key] = chunk
                out.append((pseudo_key, pseudo))
                n_batches += 1
                n_reps += len(chunk)
        return out, n_batches, n_reps

    def _job_width(self, job: _Job) -> int:
        """Replicates inside ``job`` (1 for a scalar spec)."""
        members = self._batch_members.get(job.key)
        return len(members) if members else 1

    def _record_success(
        self,
        job: _Job,
        metrics: Dict[str, Any],
        wall: float,
        results: Dict[str, Dict[str, Any]],
        walls: Dict[str, float],
        batch: _BatchStats,
    ) -> None:
        members = self._batch_members.pop(job.key, None)
        if members is not None:
            self._record_batch_success(
                job, members, metrics, wall, results, walls, batch
            )
            return
        results[job.key] = metrics
        walls[job.key] = wall
        self._attempts[job.key] = job.attempts + 1
        self._sources[job.key] = "executed"
        self._history.setdefault(job.key, []).append(
            {"attempt": job.attempts + 1, "outcome": "ok", "wall": wall}
        )
        self._m_runs_finished.inc()
        self._m_run_seconds.observe(wall)
        self.telemetry.done += 1
        self.cost_model.observe(job.spec, wall)
        if not _is_traced(job.spec):
            if self.use_cache:
                self._cache_store(job.spec, job.key, metrics)
            self._checkpoint_append(job.spec, job.key, metrics)

    def _record_batch_success(
        self,
        job: _Job,
        members: List[Tuple[str, RunSpec]],
        metrics: Dict[str, Any],
        wall: float,
        results: Dict[str, Dict[str, Any]],
        walls: Dict[str, float],
        batch: _BatchStats,
    ) -> None:
        """Unpack one batched run into per-replicate results.

        Each replicate is cached, checkpointed and recorded under its
        own key exactly as a scalar execution of that spec would be; the
        batch's wall time is attributed at the per-replicate marginal
        and folded into the cost model at that marginal too.
        """
        reps = metrics.get("replicates") if isinstance(metrics, dict) else None
        if not isinstance(reps, list) or len(reps) != len(members):
            reps = [
                {
                    "err": {
                        "type": "SweepBatchError",
                        "message": "malformed batch payload",
                    }
                }
            ] * len(members)
        attempts = job.attempts + 1
        width = len(members)
        marginal = wall / width
        self.cost_model.observe(job.spec, wall)
        batch.batches += 1
        mode = metrics.get("mode") if isinstance(metrics, dict) else None
        if mode not in ("lockstep", "scalar"):
            mode = "scalar"
        if mode == "lockstep":
            batch.lockstep_batches += 1
        self._m_batch_width.observe(width)
        for (rep_key, rep_spec), payload in zip(members, reps):
            self._attempts[rep_key] = attempts
            self.telemetry.done += 1
            rep_metrics = payload.get("ok") if isinstance(payload, dict) else None
            if rep_metrics is None:
                err = (payload.get("err") or {}) if isinstance(payload, dict) else {}
                etype = err.get("type", "SweepBatchError")
                message = err.get("message", "malformed batch payload")
                results[rep_key] = _error_result(
                    etype, message, attempts, "exception"
                )
                self._sources[rep_key] = "failed"
                self._history.setdefault(rep_key, []).append(
                    {"attempt": attempts, "outcome": "exception", "wall": None}
                )
                batch.failures += 1
                self._m_failures.inc()
                self._log(
                    f"run {rep_key[:12]} failed: {etype}: {message}",
                    kind="fail",
                )
                continue
            results[rep_key] = rep_metrics
            walls[rep_key] = marginal
            self._sources[rep_key] = "executed"
            self._batched_width[rep_key] = width
            self._batched_mode[rep_key] = mode
            self._history.setdefault(rep_key, []).append(
                {"attempt": attempts, "outcome": "ok", "wall": marginal}
            )
            batch.batched_runs += 1
            self._m_runs_finished.inc()
            self._m_run_seconds.observe(marginal)
            if self.use_cache:
                self._cache_store(rep_spec, rep_key, rep_metrics)
            self._checkpoint_append(rep_spec, rep_key, rep_metrics)

    def _record_exception(
        self,
        job: _Job,
        err: Dict[str, str],
        results: Dict[str, Dict[str, Any]],
        batch: _BatchStats,
        wall: Optional[float] = None,
    ) -> None:
        """A run that raised: deterministic, captured once, never cached."""
        attempts = job.attempts + 1
        results[job.key] = _error_result(
            err["type"], err["message"], attempts, "exception"
        )
        self._attempts[job.key] = attempts
        self._sources[job.key] = "failed"
        self._history.setdefault(job.key, []).append(
            {"attempt": attempts, "outcome": "exception", "wall": wall}
        )
        batch.failures += 1
        self._m_failures.inc()
        self.telemetry.done += 1
        self._log(
            f"run {job.key[:12]} failed: {err['type']}: {err['message']}",
            kind="fail",
        )

    # -- cluster execution ----------------------------------------------
    def _ensure_coordinator(self):
        """Create (once) the cluster coordinator — and, for the plain
        ``"inproc"`` mode, its in-process auto-workers."""
        if self._coordinator is not None:
            return self._coordinator
        from repro.cluster.coordinator import ClusterCoordinator

        address = self.cluster
        auto_workers = 0
        if address == "inproc":
            # Self-contained mode: the runner is its own cluster.
            address = f"inproc://sweep-{self.label}-{id(self):x}"
            auto_workers = self.jobs
        self._coordinator = ClusterCoordinator(
            address,
            telemetry=self.telemetry,
            max_attempts=self.max_attempts,
            retry_backoff=self.retry_backoff,
            run_timeout=self.timeout,
            lease_timeout=self.lease_timeout,
            liveness_timeout=self.liveness_timeout,
            # Generous drain: lingers only while reclaimed-but-alive
            # leases are outstanding, so their late duplicates are
            # observed (and suppressed) instead of orphaned.
            drain_timeout=2.0,
            cost_model=self.cost_model,
            log=self._log,
        )
        if auto_workers:
            from repro.cluster.worker import start_worker_thread

            # Auto-workers need subprocess isolation only to *enforce* a
            # per-run timeout; without one, in-thread execution is
            # cheaper and behaves identically.
            for i in range(auto_workers):
                self._cluster_workers.append(
                    start_worker_thread(
                        self._coordinator.address,
                        name=f"local-{i}",
                        capacity=1,
                        isolate=self.timeout is not None,
                        reconnect_timeout=5.0,
                    )
                )
        self._log(
            f"cluster: coordinating at {self._coordinator.address}"
            + (f" with {auto_workers} local workers" if auto_workers else
               " (waiting for workers to connect)")
        )
        return self._coordinator

    def _run_cluster(
        self,
        pending: Sequence[Tuple[str, RunSpec]],
        results: Dict[str, Dict[str, Any]],
        walls: Dict[str, float],
        batch: _BatchStats,
    ) -> None:
        """Fan pending specs out over the cluster coordinator.

        Each outcome is recorded *as it commits* (streaming, through the
        coordinator's ``on_resolved`` hook), so caching, checkpointing
        and ``--resume`` behave exactly as under the local pool: a sweep
        killed mid-flight resumes past every committed cell.  A batch
        pseudo-run whose harness fails deterministically falls back to
        scalar runs of its members, mirroring the local paths.
        """
        coord = self._ensure_coordinator()
        tele = self.telemetry
        specs_by_key: Dict[str, RunSpec] = dict(pending)
        jobs = [
            (key, spec, self._job_width(_Job(key, spec)))
            for key, spec in pending
        ]

        def on_resolved(key, out):
            spec = specs_by_key[key]
            job = _Job(key, spec, attempts=max(out.attempts - 1, 0))
            tele.registry.merge(out.snap)
            if out.status == "ok":
                self._record_success(
                    job, out.payload, out.wall, results, walls, batch
                )
                return None
            payload = out.payload or {}
            members = self._batch_members.pop(key, None)
            if out.status == "exception" and members is not None:
                # The batch harness itself failed (per-replicate errors
                # come back inside a successful payload): fall back to
                # scalar runs of every member.
                self._log(
                    f"batch {key[:12]} failed ({payload.get('type')}); "
                    f"falling back to {len(members)} scalar runs"
                )
                self._m_batch_fallback.inc()
                extras = []
                for member_key, member_spec in members:
                    self._batch_reason[member_key] = "batch-failed"
                    specs_by_key[member_key] = member_spec
                    extras.append((member_key, member_spec, 1))
                return extras
            if out.status == "exception":
                self._record_exception(
                    job, payload, results, batch, wall=out.wall
                )
                return None
            # Exhausted retry budget: every member resolves to an error
            # result, like the supervised pool's give-up path.
            width = len(members) if members else 1
            for rep_key, _rep_spec in members or [(key, spec)]:
                results[rep_key] = _error_result(
                    str(payload.get("type") or "SweepWorkerError"),
                    str(payload.get("message") or "cluster failure"),
                    out.attempts,
                    out.kind,
                )
                self._sources[rep_key] = "failed"
                self._attempts[rep_key] = out.attempts
                self._history.setdefault(rep_key, []).append(
                    {"attempt": out.attempts, "outcome": out.kind,
                     "wall": None}
                )
                batch.failures += 1
                batch.exhausted += 1
            self._m_failures.inc(width)
            tele.done += width
            return None

        def tick(queue_depth, busy, live):
            self._tick(queue_depth, busy, live)

        report = coord.execute(
            jobs,
            on_resolved=on_resolved,
            tick=tick if (tele.enabled or self._dashboard) else None,
        )
        batch.retries += report.retries
        batch.timeouts += report.timeouts
        batch.workers = max(report.peak_workers, 1)
        self._m_timeouts.inc(report.timeouts)
        self._m_retries.inc(report.retries)

    def close(self) -> None:
        """Release cluster resources (idempotent; local-pool no-op)."""
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
        for worker in self._cluster_workers:
            worker.stop()
        self._cluster_workers = []

    def _run_inline(
        self,
        pending: Sequence[Tuple[str, RunSpec]],
        results: Dict[str, Dict[str, Any]],
        walls: Dict[str, float],
        batch: _BatchStats,
    ) -> None:
        """Serial in-process execution (no timeout enforcement).

        Inline runs execute in the parent process, so when telemetry is
        on the hub's own registry is installed for their duration —
        runtime fault counters land directly, no snapshot merge needed.
        """
        from repro.telemetry.registry import install

        tele = self.telemetry
        ident = tele.workers.inline()
        previous = install(tele.registry) if tele.enabled else None
        try:
            queue = deque(pending)
            while queue:
                key, spec = queue.popleft()
                job = _Job(key, spec)
                tele.workers.assign(
                    ident,
                    key,
                    self.label,
                    attempt=1,
                    width=self._job_width(job),
                    now=tele.now(),
                    expected=self.cost_model.predict(spec),
                )
                self._m_runs_started.inc()
                start = time.perf_counter()
                try:
                    metrics = execute_spec(spec)
                except Exception as exc:
                    tele.workers.finish(ident)
                    members = self._batch_members.pop(key, None)
                    if members is not None:
                        # The batch harness itself failed (per-replicate
                        # errors come back inside a successful payload):
                        # fall back to scalar runs of every member.
                        self._log(
                            f"batch {key[:12]} failed "
                            f"({type(exc).__name__}); falling back to "
                            f"{len(members)} scalar runs"
                        )
                        self._m_batch_fallback.inc()
                        for member_key, _member_spec in members:
                            self._batch_reason[member_key] = "batch-failed"
                        queue.extend(members)
                        continue
                    self._record_exception(
                        job,
                        {"type": type(exc).__name__, "message": str(exc)},
                        results,
                        batch,
                        wall=time.perf_counter() - start,
                    )
                    self._tick(len(queue), busy=0, live=1)
                    continue
                tele.workers.finish(ident)
                self._record_success(
                    job, metrics, time.perf_counter() - start, results,
                    walls, batch,
                )
                self._tick(len(queue), busy=0, live=1)
        finally:
            if previous is not None:
                install(previous)

    def _run_supervised(
        self,
        pending: Sequence[Tuple[str, RunSpec]],
        results: Dict[str, Dict[str, Any]],
        walls: Dict[str, float],
        batch: _BatchStats,
        workers: int,
    ) -> None:
        """Crash/timeout-tolerant fan-out over long-lived workers.

        The supervisor assigns one spec at a time to each worker over a
        pipe and multiplexes on ``multiprocessing.connection.wait`` across
        result pipes *and* process sentinels, so a worker that dies
        without replying (segfault, OOM-kill, ``os._exit``) is detected
        immediately rather than hanging the sweep.  Crashed and timed-out
        specs are re-dispatched with exponential backoff up to
        ``max_attempts``; past the budget they resolve to error results.
        """
        from multiprocessing import connection as mpc

        tele = self.telemetry
        telem_cfg = (
            {"heartbeat_interval": tele.heartbeat_interval}
            if tele.enabled
            else None
        )
        todo = deque(_Job(key, spec) for key, spec in pending)
        backoff: List[_Job] = []
        idle: List[_Handle] = []
        busy: List[_Handle] = []
        total = len(pending)
        done = 0

        def _spawn() -> _Handle:
            parent, child = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            return _Handle(
                proc=proc, conn=parent, ident=tele.workers.spawn(proc.pid)
            )

        def _retire(handle: _Handle, terminate: bool) -> None:
            tele.workers.retire(handle.ident)
            try:
                handle.conn.close()
            except OSError:
                pass
            if terminate and handle.proc.is_alive():
                handle.proc.terminate()
            handle.proc.join(timeout=5.0)

        def _fault(job: _Job, kind: str, etype: str, message: str) -> None:
            """An infrastructure failure: retry with backoff, or give up."""
            nonlocal done
            job.attempts += 1
            self._attempts[job.key] = job.attempts
            if kind == "timeout":
                batch.timeouts += 1
                self._m_timeouts.inc()
            fault_wall = (
                self.timeout * self._job_width(job)
                if kind == "timeout" and self.timeout is not None
                else None
            )
            for rep_key, _rep_spec in self._batch_members.get(job.key) or [
                (job.key, job.spec)
            ]:
                self._history.setdefault(rep_key, []).append(
                    {"attempt": job.attempts, "outcome": kind,
                     "wall": fault_wall}
                )
            if job.attempts >= self.max_attempts:
                # A batch job that exhausts its budget resolves every
                # member replicate to an error result, never the pseudo
                # key (which no caller ever looks up).
                members = self._batch_members.pop(job.key, None)
                for rep_key, _rep_spec in members or [(job.key, job.spec)]:
                    results[rep_key] = _error_result(
                        etype, message, job.attempts, kind
                    )
                    self._sources[rep_key] = "failed"
                    self._attempts[rep_key] = job.attempts
                    batch.failures += 1
                    batch.exhausted += 1
                width = len(members) if members else 1
                self._m_failures.inc(width)
                tele.done += width
                done += 1
                self._log(
                    f"run {job.key[:12]}: {kind} on attempt "
                    f"{job.attempts}/{self.max_attempts}; giving up "
                    f"({message})",
                    kind="fail",
                )
            else:
                batch.retries += 1
                self._m_retries.inc()
                delay = self.retry_backoff * (2 ** (job.attempts - 1))
                job.not_before = time.monotonic() + delay
                backoff.append(job)
                self._log(
                    f"run {job.key[:12]}: {kind} on attempt "
                    f"{job.attempts}/{self.max_attempts}; retrying in "
                    f"{delay:.2f}s",
                    kind="retry",
                )

        while done < total:
            now = time.monotonic()
            ready_jobs = [j for j in backoff if j.not_before <= now]
            if ready_jobs:
                backoff[:] = [j for j in backoff if j.not_before > now]
                todo.extend(ready_jobs)

            # Top up the worker pool and hand out assignments.
            while todo and (idle or len(idle) + len(busy) < workers):
                handle = idle.pop() if idle else _spawn()
                job = todo.popleft()
                handle.job = job
                handle.deadline = (
                    # A batched run legitimately takes up to width times a
                    # scalar run's wall clock: scale its deadline to match.
                    (time.monotonic() + self.timeout * self._job_width(job))
                    if self.timeout is not None
                    else None
                )
                with phase_scope("dispatch"):
                    payload: Any = job.spec
                    base_frame = None
                    if self._dispatch_fast:
                        enc = self._interner.encode(job.spec)
                        if enc.delta is not None:
                            if enc.base_id not in handle.bases_sent:
                                base = self._interner.bases[enc.base_id]
                                base_frame = (
                                    _BASE_TAG,
                                    enc.base_id,
                                    wire.spec_to_wire(base),
                                )
                            payload = (enc.base_id, enc.delta)
                            self._m_dispatch_deltas.inc()
                        self._m_dispatch_bytes.inc(enc.wire_bytes)
                        self._m_dispatch_saved.inc(enc.saved_bytes)
                    sent = True
                    try:
                        if base_frame is not None:
                            handle.conn.send(base_frame)
                            self._m_dispatch_frames.inc()
                            handle.bases_sent.add(base_frame[1])
                        handle.conn.send((job.key, payload, telem_cfg))
                        self._m_dispatch_frames.inc()
                    except (OSError, BrokenPipeError):
                        sent = False
                if not sent:
                    # The worker died between assignments: recycle the job
                    # (not an attempt — it never started) and drop the
                    # worker; a replacement is spawned next iteration.
                    handle.job = None
                    _retire(handle, terminate=True)
                    todo.appendleft(job)
                    continue
                tele.workers.assign(
                    handle.ident,
                    job.key,
                    self.label,
                    attempt=job.attempts + 1,
                    width=self._job_width(job),
                    now=tele.now(),
                    expected=self.cost_model.predict(job.spec),
                )
                self._m_runs_started.inc()
                busy.append(handle)

            if not busy:
                if backoff:
                    pause = min(j.not_before for j in backoff) - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                continue

            wait_for: List[Any] = [h.conn for h in busy]
            wait_for += [h.proc.sentinel for h in busy]
            wait_timeout: Optional[float] = None
            deadlines = [h.deadline for h in busy if h.deadline is not None]
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - time.monotonic())
            if backoff:
                wake = max(
                    0.0, min(j.not_before for j in backoff) - time.monotonic()
                )
                wait_timeout = (
                    wake if wait_timeout is None else min(wait_timeout, wake)
                )
            if self._dashboard is not None:
                # Keep dashboard frames coming even when nothing else
                # would wake the multiplexer.
                wait_timeout = (
                    0.5 if wait_timeout is None else min(wait_timeout, 0.5)
                )
            ready = set(mpc.wait(wait_for, timeout=wait_timeout))

            still_busy: List[_Handle] = []
            for handle in busy:
                job = handle.job
                resolved = False
                if handle.conn in ready or handle.proc.sentinel in ready:
                    try:
                        while not resolved and handle.conn.poll():
                            message = handle.conn.recv()
                            if message[0] == HEARTBEAT_TAG:
                                tele.workers.heartbeat(
                                    handle.ident, tele.now()
                                )
                                self._m_heartbeats.inc()
                                continue
                            _key, ok, payload, wall, snap = message
                            handle.job = None
                            tele.registry.merge(snap)
                            tele.workers.finish(handle.ident)
                            if ok:
                                self._record_success(
                                    job, payload, wall, results, walls,
                                    batch,
                                )
                            else:
                                fallback = self._batch_members.pop(
                                    job.key, None
                                )
                                if fallback is not None:
                                    # Deterministic batch-harness failure:
                                    # re-run every member scalar instead.
                                    self._log(
                                        f"batch {job.key[:12]} failed "
                                        f"({payload.get('type')}); falling"
                                        f" back to {len(fallback)} scalar"
                                        " runs"
                                    )
                                    self._m_batch_fallback.inc()
                                    for fb_key, _fb_spec in fallback:
                                        self._batch_reason[fb_key] = (
                                            "batch-failed"
                                        )
                                    todo.extend(
                                        _Job(k, s) for k, s in fallback
                                    )
                                    total += len(fallback)
                                else:
                                    self._record_exception(
                                        job, payload, results, batch,
                                        wall=wall,
                                    )
                            done += 1
                            idle.append(handle)
                            resolved = True
                    except (EOFError, OSError):
                        pass
                    if not resolved and not handle.proc.is_alive():
                        code = handle.proc.exitcode
                        handle.job = None
                        _retire(handle, terminate=False)
                        _fault(
                            job,
                            "crash",
                            "SweepWorkerError",
                            f"worker process died (exit code {code})",
                        )
                        resolved = True
                if not resolved:
                    still_busy.append(handle)
            busy = still_busy

            # Enforce per-run deadlines on whoever is still out there.
            now = time.monotonic()
            still_busy = []
            for handle in busy:
                if handle.deadline is not None and now >= handle.deadline:
                    job = handle.job
                    handle.job = None
                    _retire(handle, terminate=True)
                    _fault(
                        job,
                        "timeout",
                        "SweepTimeout",
                        f"run exceeded the {self.timeout:g}s wall-clock "
                        "timeout",
                    )
                else:
                    still_busy.append(handle)
            busy = still_busy

            if tele.enabled:
                now = tele.now()
                for view in tele.workers.check_stragglers(now, self.timeout):
                    self._m_stragglers.inc()
                    expected = (
                        f" (expected ~{view.expected:.1f}s)"
                        if view.expected
                        else ""
                    )
                    self._log(
                        f"worker {view.ident} (pid {view.pid}) straggling "
                        f"on run {(view.key or '')[:12]}: "
                        f"{view.elapsed(now):.1f}s elapsed{expected}; "
                        "letting it finish",
                        kind="straggler",
                    )
            if tele.enabled or self._dashboard is not None:
                self._tick(
                    len(todo) + len(backoff),
                    busy=len(busy),
                    live=len(busy) + len(idle),
                    eta=self._estimate_eta(
                        list(todo) + backoff, busy, workers
                    ),
                )

            if done and done % 25 == 0:
                self._log(f"{done}/{total} resolved")

        for handle in idle:
            try:
                handle.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
            _retire(handle, terminate=False)
        for handle in busy:  # pragma: no cover - defensive
            _retire(handle, terminate=True)

    def run(self, specs: Sequence[RunSpec]) -> List[Dict[str, Any]]:
        """Execute ``specs``; returns one metrics dict per spec, in order.

        A spec that fails (raises, crashes its worker past the retry
        budget, or times out) yields an error result — see
        :func:`is_error_result` — instead of aborting the sweep.
        """
        start = time.perf_counter()
        self._begin_sweep()
        self._m_specs.inc(len(specs))
        keys = [spec.key() for spec in specs]
        unique: Dict[str, RunSpec] = {}
        for key, spec in zip(keys, specs):
            unique.setdefault(key, spec)

        self._log(f"{len(specs)} runs ({len(unique)} unique)")
        results, walls, batch = self._execute_unique(unique)

        stats = SweepStats(
            label=self.label,
            specs=len(specs),
            unique=len(unique),
            hits=batch.hits,
            executed=len(unique) - batch.hits,
            jobs=max(batch.workers, 1),
            elapsed=time.perf_counter() - start,
            failures=batch.failures,
            retries=batch.retries,
            timeouts=batch.timeouts,
            resumed=batch.resumed,
            resumed_stale=self._resumed_stale,
            exhausted=batch.exhausted,
            batches=batch.batches,
            batched_runs=batch.batched_runs,
            lockstep_batches=batch.lockstep_batches,
        )
        self._finish(stats)
        if self.manifest_dir is not None:
            self._write_manifest(specs, keys, walls, stats, results)
        return [results[key] for key in keys]

    def run_adaptive(
        self, specs: Sequence[RunSpec], policy: Optional[AdaptivePolicy]
    ) -> List[Dict[str, Any]]:
        """Variance-aware replicated execution of ``specs`` (the *cells*).

        Every distinct cell is replicated over derived seeds
        (:func:`~repro.sweep.adaptive.replicate_spec`): ``min_seeds``
        up front, then ``growth`` more per round while any scalar metric's
        relative CI exceeds ``policy.ci``, up to ``max_seeds``.  Returns
        one *aggregated* metrics dict per input spec — scalar metrics are
        means over replicates, and convergence bookkeeping sits under the
        ``"adaptive"`` key.

        Failed replicates (see :func:`is_error_result`) are excluded from
        aggregation and recorded as ``failed_replicates``; a cell whose
        every replicate failed aggregates to its first error result.

        ``policy=None`` falls back to :meth:`run` (no replication, no
        aggregation — bit-identical to a plain sweep).
        """
        if policy is None:
            return self.run(specs)
        start = time.perf_counter()
        self._begin_sweep()
        self._m_specs.inc(len(specs))
        reg = self.telemetry.registry
        m_rounds = reg.counter(
            "adaptive_rounds_total", "Adaptive replication rounds executed"
        )
        m_unconverged = reg.gauge(
            "adaptive_cells_unconverged",
            "Cells still growing seeds after the latest round",
        )
        m_max_ci = reg.gauge(
            "adaptive_max_relative_ci",
            "Widest relative CI over all cells after the latest round",
        )
        m_seeds_added = reg.counter(
            "adaptive_seeds_added_total",
            "Replicates grown beyond the per-cell minimum",
        )
        m_seeds_saved = reg.counter(
            "adaptive_seeds_saved_total",
            "Replicates avoided against the per-cell maximum",
        )
        m_ci_width = reg.histogram(
            "adaptive_ci_width",
            "Per-cell max relative CI at each convergence check",
            buckets=(0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0),
        )
        keys = [spec.key() for spec in specs]
        cells: Dict[str, RunSpec] = {}
        for key, spec in zip(keys, specs):
            cells.setdefault(key, spec)

        rep_results: Dict[str, List[Dict[str, Any]]] = {k: [] for k in cells}
        manifest_specs: List[RunSpec] = []
        manifest_keys: List[str] = []
        all_walls: Dict[str, float] = {}
        all_results: Dict[str, Dict[str, Any]] = {}
        counts: Dict[str, int] = {key: 0 for key in cells}
        total_hits = total_executed = total_unique = 0
        total_failures = total_retries = total_timeouts = total_resumed = 0
        total_exhausted = 0
        total_batches = total_batched_runs = total_lockstep = 0
        max_workers = 0

        self._log(
            f"{len(specs)} cells ({len(cells)} unique), adaptive: "
            f"ci<={policy.ci:g} @ {policy.confidence:.0%}, "
            f"seeds {policy.min_seeds}..{policy.max_seeds}"
        )
        active = list(cells.keys())
        round_no = 0
        while active:
            batch_specs: Dict[str, RunSpec] = {}
            owners: List[Tuple[str, str]] = []  # (cell key, replicate key)
            for cell_key in active:
                have = counts[cell_key]
                target = policy.next_target(have)
                for rep in range(have, target):
                    rep_spec = replicate_spec(cells[cell_key], rep)
                    rep_key = rep_spec.key()
                    batch_specs[rep_key] = rep_spec
                    owners.append((cell_key, rep_key))
                    manifest_specs.append(rep_spec)
                    manifest_keys.append(rep_key)
                counts[cell_key] = target
            round_no += 1
            m_rounds.inc()
            self._log(
                f"round {round_no}: {len(active)} cells unconverged, "
                f"{len(batch_specs)} replicates"
            )
            results, walls, batch = self._execute_unique(
                batch_specs, allow_batching=True
            )
            all_walls.update(walls)
            all_results.update(results)
            total_hits += batch.hits
            total_executed += len(batch_specs) - batch.hits
            total_unique += len(batch_specs)
            total_failures += batch.failures
            total_retries += batch.retries
            total_timeouts += batch.timeouts
            total_resumed += batch.resumed
            total_exhausted += batch.exhausted
            total_batches += batch.batches
            total_batched_runs += batch.batched_runs
            total_lockstep += batch.lockstep_batches
            max_workers = max(max_workers, batch.workers)
            for cell_key, rep_key in owners:
                rep_results[cell_key].append(results[rep_key])

            tele = self.telemetry
            still_active = []
            round_max_ci = 0.0
            for cell_key in active:
                good = [
                    r
                    for r in rep_results[cell_key]
                    if not is_error_result(r)
                ]
                accs = None
                if tele.enabled and good:
                    accs = scalar_accumulators(good)
                    rels = [
                        acc.relative_ci(policy.confidence)
                        for acc in accs.values()
                    ]
                    finite = [
                        r for r in rels if r == r and r != float("inf")
                    ]
                    if finite:
                        cell_ci = max(finite)
                        round_max_ci = max(round_max_ci, cell_ci)
                        m_ci_width.observe(cell_ci)
                if counts[cell_key] >= policy.max_seeds:
                    continue
                if not good:
                    # Every replicate failed; more seeds won't fix a
                    # broken cell, so stop growing it.
                    continue
                if accs is None:
                    accs = scalar_accumulators(good)
                if not converged(accs, policy):
                    still_active.append(cell_key)
            active = still_active
            m_unconverged.set(len(active))
            if round_max_ci:
                m_max_ci.set(round_max_ci)
            # One forced snapshot per round so the report can plot CI
            # convergence against elapsed time.
            tele.flush(force=True)

        aggregated: Dict[str, Dict[str, Any]] = {}
        for key, reps in rep_results.items():
            good = [r for r in reps if not is_error_result(r)]
            if not good:
                aggregated[key] = reps[0]
                continue
            agg = aggregate_replicates(good, policy)
            if len(good) < len(reps):
                agg[ADAPTIVE_KEY]["failed_replicates"] = len(reps) - len(good)
            aggregated[key] = agg
        stats = SweepStats(
            label=self.label,
            specs=len(specs),
            unique=total_unique,
            hits=total_hits,
            executed=total_executed,
            jobs=max(max_workers, 1),
            elapsed=time.perf_counter() - start,
            cells=len(cells),
            seeds_added=sum(
                count - policy.min_seeds for count in counts.values()
            ),
            seeds_saved=sum(
                policy.max_seeds - count for count in counts.values()
            ),
            failures=total_failures,
            retries=total_retries,
            timeouts=total_timeouts,
            resumed=total_resumed,
            resumed_stale=self._resumed_stale,
            exhausted=total_exhausted,
            batches=total_batches,
            batched_runs=total_batched_runs,
            lockstep_batches=total_lockstep,
        )
        m_seeds_added.inc(stats.seeds_added)
        m_seeds_saved.inc(stats.seeds_saved)
        self._finish(stats)
        if self.manifest_dir is not None:
            self._write_manifest(
                manifest_specs, manifest_keys, all_walls, stats, all_results
            )
        return [aggregated[key] for key in keys]

    def _finish(self, stats: SweepStats) -> None:
        self.last_stats = stats
        _STATS_LOG.append(stats)
        tele = self.telemetry
        tele.set_progress(tele.total, tele.done, 0.0 if tele.total else None)
        if self._dashboard is not None:
            # Final frame, then give stderr back before the summary line.
            self._dashboard.close()
        self._log(stats.summary())
        tele.finalize()

    def _write_manifest(
        self,
        specs: Sequence[RunSpec],
        keys: Sequence[str],
        walls: Dict[str, float],
        stats: Optional[SweepStats] = None,
        results: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> Path:
        """Write ``manifest.json`` describing every run of this sweep."""
        from repro._version import __version__

        entries = []
        for key, spec in zip(keys, specs):
            entry: Dict[str, Any] = {
                "key": key,
                "kind": spec.kind,
                "tags": dict(spec.tags),
                "seed": spec.seed,
                "version": __version__,
                "wall_time": walls.get(key),
                "cached": self._sources.get(key) in (None, "cache", "checkpoint")
                and key not in walls,
                "attempts": self._attempts.get(key, 0),
                "history": self._history.get(key, []),
            }
            # ``batched`` is structured: executed batches carry their
            # width and driver mode; everything else records *why* it
            # ran scalar ("batching-off" = never considered, e.g. a
            # plain non-adaptive sweep or ``--batch-runs off``).
            width = self._batched_width.get(key)
            if width is not None:
                entry["batched"] = {
                    "batched": True,
                    "width": width,
                    "mode": self._batched_mode.get(key, "scalar"),
                }
                entry["batch"] = width
            else:
                entry["batched"] = {
                    "batched": False,
                    "reason": self._batch_reason.get(key, "batching-off"),
                }
            result = (results or {}).get(key)
            if is_error_result(result):
                entry["error"] = result[ERROR_KEY]
            entries.append(entry)
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        path = self.manifest_dir / "manifest.json"
        payload = {
            "label": self.label,
            "version": __version__,
            "runs": entries,
        }
        if stats is not None:
            payload["stats"] = stats.as_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        return path
