"""The parallel sweep engine with a content-addressed result cache.

:class:`SweepRunner` executes a list of :class:`RunSpec`\\ s and returns
their metric dicts in input order.  Identical specs are executed once;
results are looked up in (and written back to) an on-disk JSON cache keyed
by the spec's content hash — which includes the package version, so a
version bump invalidates everything.  Misses fan out over a
``multiprocessing`` pool; because every run is a pure function of its
spec (each worker builds its own environment and RNGs from the spec's
seed), parallel results are bit-identical to serial ones regardless of
scheduling order.

Two throughput layers sit on top of the plain fan-out:

* **Predictive dispatch** — a persistent :class:`~repro.sweep.cost.CostModel`
  learns per-spec wall times and orders pool submission longest-first, so
  the slowest run never starts last.  Advisory only: submission order
  cannot change any result (results are keyed by content hash).
* **Adaptive replication** (:meth:`SweepRunner.run_adaptive`) — replicate
  each cell across derived seeds until the confidence interval of its
  scalar metrics is tighter than the policy's target, instead of paying a
  fixed worst-case seed count everywhere.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sweep.adaptive import (
    AdaptivePolicy,
    aggregate_replicates,
    converged,
    replicate_spec,
    scalar_accumulators,
)
from repro.sweep.cost import COST_MODEL_FILE, CostModel
from repro.sweep.registry import execute_spec
from repro.sweep.spec import RunSpec

#: Default cache location; overridable per-runner or via the environment.
DEFAULT_CACHE_DIR = "~/.cache/repro-sweeps"

_CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"


def default_cache_dir() -> Path:
    """The result-cache directory honouring ``$REPRO_SWEEP_CACHE``."""
    return Path(os.environ.get(_CACHE_ENV_VAR, DEFAULT_CACHE_DIR)).expanduser()


@dataclass
class SweepStats:
    """Bookkeeping of one :meth:`SweepRunner.run` call."""

    label: str
    specs: int = 0
    unique: int = 0
    hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    #: Adaptive replication only: distinct cells, replicates run beyond
    #: the per-cell minimum, and replicates avoided against the per-cell
    #: maximum.  All zero for plain sweeps.
    cells: int = 0
    seeds_added: int = 0
    seeds_saved: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.unique if self.unique else 0.0

    def summary(self) -> str:
        text = (
            f"{self.specs} runs ({self.unique} unique): "
            f"{self.hits} cached, {self.executed} executed on "
            f"{self.jobs} worker{'s' if self.jobs != 1 else ''} "
            f"in {self.elapsed:.1f}s (hit rate {self.hit_rate:.0%})"
        )
        if self.cells:
            text += (
                f"; adaptive: {self.cells} cells, "
                f"+{self.seeds_added} seeds grown, "
                f"{self.seeds_saved} seeds saved"
            )
        return text

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view (feeds the sweep manifest)."""
        return {
            "label": self.label,
            "specs": self.specs,
            "unique": self.unique,
            "hits": self.hits,
            "executed": self.executed,
            "hit_rate": self.hit_rate,
            "jobs": self.jobs,
            "elapsed": self.elapsed,
            "cells": self.cells,
            "seeds_added": self.seeds_added,
            "seeds_saved": self.seeds_saved,
        }


#: Stats of completed sweeps, drained by the CLI for per-figure summaries.
_STATS_LOG: List[SweepStats] = []


def pop_stats() -> List[SweepStats]:
    """Return and clear the stats accumulated since the last call."""
    drained = list(_STATS_LOG)
    _STATS_LOG.clear()
    return drained


def _pool_execute(payload: Tuple[str, RunSpec]) -> Tuple[str, Dict[str, Any], float]:
    """Top-level worker entry point (must be picklable).

    Returns ``(key, metrics, wall_time)`` — the per-run wall time feeds
    the sweep manifest and the cost model.
    """
    key, spec = payload
    start = time.perf_counter()
    metrics = execute_spec(spec)
    return key, metrics, time.perf_counter() - start


def _is_traced(spec: RunSpec) -> bool:
    """Whether the spec requests tracing (always bypasses the cache).

    The trace config already alters the cache key (it lives in
    ``params``), but a traced run's side effects — the exported files —
    must be regenerated even when its metrics were cached, so traced
    specs skip the cache entirely.
    """
    return spec.params.get("trace") is not None


class SweepRunner:
    """Fans :class:`RunSpec` lists out over processes, with caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``1`` runs
        in-process (no pool).
    cache_dir:
        Result-cache directory; default ``~/.cache/repro-sweeps`` (or
        ``$REPRO_SWEEP_CACHE``).
    use_cache:
        When False, neither reads nor writes the cache (nor persists the
        cost model — predictions still order dispatch in-memory).
    label:
        Name used in progress lines and stats (e.g. the figure name).
    progress:
        Emit ``[sweep:<label>] ...`` progress lines on stderr.
    manifest_dir:
        When set, :meth:`run` writes ``manifest.json`` there: one entry
        per spec with its cache key, kind, tags, seed, package version,
        per-run wall time and whether it was served from the cache, plus
        the sweep's :class:`SweepStats`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        label: str = "sweep",
        progress: bool = True,
        manifest_dir: Optional[os.PathLike] = None,
    ) -> None:
        self.jobs = os.cpu_count() or 1 if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_cache = use_cache
        self.label = label
        self.progress = progress
        self.manifest_dir = Path(manifest_dir) if manifest_dir else None
        self.last_stats: Optional[SweepStats] = None
        self.cost_model = CostModel(
            self.cache_dir / COST_MODEL_FILE if use_cache else None
        )

    # -- cache ----------------------------------------------------------
    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._cache_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            # Unreadable or corrupt/truncated JSON: treat as a miss — the
            # run is recomputed and the entry rewritten.
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            # Parseable JSON of the wrong shape (or a hash mismatch) is
            # corruption too, not an error.
            return None
        metrics = entry.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def _cache_store(self, spec: RunSpec, key: str, metrics: Dict[str, Any]) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        entry = {"key": key, "identity": spec.identity(), "metrics": metrics}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)

    # -- execution ------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.progress:
            print(f"[sweep:{self.label}] {message}", file=sys.stderr, flush=True)

    def _execute_unique(
        self, unique: Dict[str, RunSpec]
    ) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, float], int, int]:
        """Resolve every unique spec: cache, then cost-ordered fan-out.

        Returns ``(results, walls, hits, workers)``.  Submission order is
        chosen by the cost model (unknown first, then longest-first) but
        results are keyed by content hash, so the order — like the pool's
        completion order — cannot influence any returned value.
        """
        results: Dict[str, Dict[str, Any]] = {}
        walls: Dict[str, float] = {}
        if self.use_cache:
            for key, spec in unique.items():
                if _is_traced(spec):
                    continue
                cached = self._cache_load(key)
                if cached is not None:
                    results[key] = cached
        hits = len(results)
        pending = [
            (key, spec) for key, spec in unique.items() if key not in results
        ]
        pending = self.cost_model.order(pending)

        workers = min(self.jobs, len(pending)) if pending else 0
        self._log(
            f"{len(unique)} unique: {hits} cached, "
            f"{len(pending)} to execute"
            + (f" on {workers} workers" if workers > 1 else "")
        )
        if workers > 1:
            # Small chunks keep results streaming back (cache writes and
            # progress happen as runs finish) without paying one IPC
            # round-trip per run on large sweeps.
            chunksize = max(1, min(8, len(pending) // (workers * 4)))
            with multiprocessing.Pool(processes=workers) as pool:
                done = 0
                for key, metrics, wall in pool.imap_unordered(
                    _pool_execute, pending, chunksize=chunksize
                ):
                    results[key] = metrics
                    walls[key] = wall
                    self.cost_model.observe(unique[key], wall)
                    if self.use_cache and not _is_traced(unique[key]):
                        self._cache_store(unique[key], key, metrics)
                    done += 1
                    if done % 25 == 0:
                        self._log(f"{done}/{len(pending)} executed")
        else:
            for key, spec in pending:
                _, results[key], walls[key] = _pool_execute((key, spec))
                self.cost_model.observe(spec, walls[key])
                if self.use_cache and not _is_traced(spec):
                    self._cache_store(spec, key, results[key])
        if pending:
            self.cost_model.save()
        return results, walls, hits, workers

    def run(self, specs: Sequence[RunSpec]) -> List[Dict[str, Any]]:
        """Execute ``specs``; returns one metrics dict per spec, in order."""
        start = time.perf_counter()
        keys = [spec.key() for spec in specs]
        unique: Dict[str, RunSpec] = {}
        for key, spec in zip(keys, specs):
            unique.setdefault(key, spec)

        self._log(f"{len(specs)} runs ({len(unique)} unique)")
        results, walls, hits, workers = self._execute_unique(unique)

        stats = SweepStats(
            label=self.label,
            specs=len(specs),
            unique=len(unique),
            hits=hits,
            executed=len(unique) - hits,
            jobs=max(workers, 1),
            elapsed=time.perf_counter() - start,
        )
        self._finish(stats)
        if self.manifest_dir is not None:
            self._write_manifest(specs, keys, walls, stats)
        return [results[key] for key in keys]

    def run_adaptive(
        self, specs: Sequence[RunSpec], policy: Optional[AdaptivePolicy]
    ) -> List[Dict[str, Any]]:
        """Variance-aware replicated execution of ``specs`` (the *cells*).

        Every distinct cell is replicated over derived seeds
        (:func:`~repro.sweep.adaptive.replicate_spec`): ``min_seeds``
        up front, then ``growth`` more per round while any scalar metric's
        relative CI exceeds ``policy.ci``, up to ``max_seeds``.  Returns
        one *aggregated* metrics dict per input spec — scalar metrics are
        means over replicates, and convergence bookkeeping sits under the
        ``"adaptive"`` key.

        ``policy=None`` falls back to :meth:`run` (no replication, no
        aggregation — bit-identical to a plain sweep).
        """
        if policy is None:
            return self.run(specs)
        start = time.perf_counter()
        keys = [spec.key() for spec in specs]
        cells: Dict[str, RunSpec] = {}
        for key, spec in zip(keys, specs):
            cells.setdefault(key, spec)

        rep_results: Dict[str, List[Dict[str, Any]]] = {k: [] for k in cells}
        manifest_specs: List[RunSpec] = []
        manifest_keys: List[str] = []
        all_walls: Dict[str, float] = {}
        counts: Dict[str, int] = {key: 0 for key in cells}
        total_hits = total_executed = total_unique = 0
        max_workers = 0

        self._log(
            f"{len(specs)} cells ({len(cells)} unique), adaptive: "
            f"ci<={policy.ci:g} @ {policy.confidence:.0%}, "
            f"seeds {policy.min_seeds}..{policy.max_seeds}"
        )
        active = list(cells.keys())
        round_no = 0
        while active:
            batch: Dict[str, RunSpec] = {}
            owners: List[Tuple[str, str]] = []  # (cell key, replicate key)
            for cell_key in active:
                have = counts[cell_key]
                target = (
                    policy.min_seeds
                    if have == 0
                    else min(have + policy.growth, policy.max_seeds)
                )
                for rep in range(have, target):
                    rep_spec = replicate_spec(cells[cell_key], rep)
                    rep_key = rep_spec.key()
                    batch[rep_key] = rep_spec
                    owners.append((cell_key, rep_key))
                    manifest_specs.append(rep_spec)
                    manifest_keys.append(rep_key)
                counts[cell_key] = target
            round_no += 1
            self._log(
                f"round {round_no}: {len(active)} cells unconverged, "
                f"{len(batch)} replicates"
            )
            results, walls, hits, workers = self._execute_unique(batch)
            all_walls.update(walls)
            total_hits += hits
            total_executed += len(batch) - hits
            total_unique += len(batch)
            max_workers = max(max_workers, workers)
            for cell_key, rep_key in owners:
                rep_results[cell_key].append(results[rep_key])

            still_active = []
            for cell_key in active:
                if counts[cell_key] >= policy.max_seeds:
                    continue
                accs = scalar_accumulators(rep_results[cell_key])
                if not converged(accs, policy):
                    still_active.append(cell_key)
            active = still_active

        aggregated = {
            key: aggregate_replicates(reps, policy)
            for key, reps in rep_results.items()
        }
        stats = SweepStats(
            label=self.label,
            specs=len(specs),
            unique=total_unique,
            hits=total_hits,
            executed=total_executed,
            jobs=max(max_workers, 1),
            elapsed=time.perf_counter() - start,
            cells=len(cells),
            seeds_added=sum(
                count - policy.min_seeds for count in counts.values()
            ),
            seeds_saved=sum(
                policy.max_seeds - count for count in counts.values()
            ),
        )
        self._finish(stats)
        if self.manifest_dir is not None:
            self._write_manifest(manifest_specs, manifest_keys, all_walls, stats)
        return [aggregated[key] for key in keys]

    def _finish(self, stats: SweepStats) -> None:
        self.last_stats = stats
        _STATS_LOG.append(stats)
        self._log(stats.summary())

    def _write_manifest(
        self,
        specs: Sequence[RunSpec],
        keys: Sequence[str],
        walls: Dict[str, float],
        stats: Optional[SweepStats] = None,
    ) -> Path:
        """Write ``manifest.json`` describing every run of this sweep."""
        from repro._version import __version__

        entries = [
            {
                "key": key,
                "kind": spec.kind,
                "tags": dict(spec.tags),
                "seed": spec.seed,
                "version": __version__,
                "wall_time": walls.get(key),
                "cached": key not in walls,
            }
            for key, spec in zip(keys, specs)
        ]
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        path = self.manifest_dir / "manifest.json"
        payload = {
            "label": self.label,
            "version": __version__,
            "runs": entries,
        }
        if stats is not None:
            payload["stats"] = stats.as_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        return path
