"""The parallel sweep engine with a content-addressed result cache.

:class:`SweepRunner` executes a list of :class:`RunSpec`\\ s and returns
their metric dicts in input order.  Identical specs are executed once;
results are looked up in (and written back to) an on-disk JSON cache keyed
by the spec's content hash — which includes the package version, so a
version bump invalidates everything.  Misses fan out over a
``multiprocessing`` pool; because every run is a pure function of its
spec (each worker builds its own environment and RNGs from the spec's
seed), parallel results are bit-identical to serial ones regardless of
scheduling order.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sweep.registry import execute_spec
from repro.sweep.spec import RunSpec

#: Default cache location; overridable per-runner or via the environment.
DEFAULT_CACHE_DIR = "~/.cache/repro-sweeps"

_CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"


def default_cache_dir() -> Path:
    """The result-cache directory honouring ``$REPRO_SWEEP_CACHE``."""
    return Path(os.environ.get(_CACHE_ENV_VAR, DEFAULT_CACHE_DIR)).expanduser()


@dataclass
class SweepStats:
    """Bookkeeping of one :meth:`SweepRunner.run` call."""

    label: str
    specs: int = 0
    unique: int = 0
    hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.unique if self.unique else 0.0

    def summary(self) -> str:
        return (
            f"{self.specs} runs ({self.unique} unique): "
            f"{self.hits} cached, {self.executed} executed on "
            f"{self.jobs} worker{'s' if self.jobs != 1 else ''} "
            f"in {self.elapsed:.1f}s (hit rate {self.hit_rate:.0%})"
        )


#: Stats of completed sweeps, drained by the CLI for per-figure summaries.
_STATS_LOG: List[SweepStats] = []


def pop_stats() -> List[SweepStats]:
    """Return and clear the stats accumulated since the last call."""
    drained = list(_STATS_LOG)
    _STATS_LOG.clear()
    return drained


def _pool_execute(payload: Tuple[str, RunSpec]) -> Tuple[str, Dict[str, Any], float]:
    """Top-level worker entry point (must be picklable).

    Returns ``(key, metrics, wall_time)`` — the per-run wall time feeds
    the sweep manifest.
    """
    key, spec = payload
    start = time.perf_counter()
    metrics = execute_spec(spec)
    return key, metrics, time.perf_counter() - start


def _is_traced(spec: RunSpec) -> bool:
    """Whether the spec requests tracing (always bypasses the cache).

    The trace config already alters the cache key (it lives in
    ``params``), but a traced run's side effects — the exported files —
    must be regenerated even when its metrics were cached, so traced
    specs skip the cache entirely.
    """
    return spec.params.get("trace") is not None


class SweepRunner:
    """Fans :class:`RunSpec` lists out over processes, with caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``1`` runs
        in-process (no pool).
    cache_dir:
        Result-cache directory; default ``~/.cache/repro-sweeps`` (or
        ``$REPRO_SWEEP_CACHE``).
    use_cache:
        When False, neither reads nor writes the cache.
    label:
        Name used in progress lines and stats (e.g. the figure name).
    progress:
        Emit ``[sweep:<label>] ...`` progress lines on stderr.
    manifest_dir:
        When set, :meth:`run` writes ``manifest.json`` there: one entry
        per spec with its cache key, kind, tags, seed, package version,
        per-run wall time and whether it was served from the cache.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        label: str = "sweep",
        progress: bool = True,
        manifest_dir: Optional[os.PathLike] = None,
    ) -> None:
        self.jobs = os.cpu_count() or 1 if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_cache = use_cache
        self.label = label
        self.progress = progress
        self.manifest_dir = Path(manifest_dir) if manifest_dir else None
        self.last_stats: Optional[SweepStats] = None

    # -- cache ----------------------------------------------------------
    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._cache_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("key") != key:
            return None
        return entry.get("metrics")

    def _cache_store(self, spec: RunSpec, key: str, metrics: Dict[str, Any]) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        entry = {"key": key, "identity": spec.identity(), "metrics": metrics}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)

    # -- execution ------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.progress:
            print(f"[sweep:{self.label}] {message}", file=sys.stderr, flush=True)

    def run(self, specs: Sequence[RunSpec]) -> List[Dict[str, Any]]:
        """Execute ``specs``; returns one metrics dict per spec, in order."""
        start = time.perf_counter()
        keys = [spec.key() for spec in specs]
        unique: Dict[str, RunSpec] = {}
        for key, spec in zip(keys, specs):
            unique.setdefault(key, spec)

        results: Dict[str, Dict[str, Any]] = {}
        walls: Dict[str, float] = {}
        if self.use_cache:
            for key, spec in unique.items():
                if _is_traced(spec):
                    continue
                cached = self._cache_load(key)
                if cached is not None:
                    results[key] = cached
        hits = len(results)
        pending = [(key, spec) for key, spec in unique.items() if key not in results]

        workers = min(self.jobs, len(pending)) if pending else 0
        self._log(
            f"{len(specs)} runs ({len(unique)} unique): {hits} cached, "
            f"{len(pending)} to execute"
            + (f" on {workers} workers" if workers > 1 else "")
        )
        if workers > 1:
            with multiprocessing.Pool(processes=workers) as pool:
                done = 0
                for key, metrics, wall in pool.imap_unordered(
                    _pool_execute, pending
                ):
                    results[key] = metrics
                    walls[key] = wall
                    if self.use_cache and not _is_traced(unique[key]):
                        self._cache_store(unique[key], key, metrics)
                    done += 1
                    if done % 25 == 0:
                        self._log(f"{done}/{len(pending)} executed")
        else:
            for key, spec in pending:
                _, results[key], walls[key] = _pool_execute((key, spec))
                if self.use_cache and not _is_traced(spec):
                    self._cache_store(spec, key, results[key])

        elapsed = time.perf_counter() - start
        stats = SweepStats(
            label=self.label,
            specs=len(specs),
            unique=len(unique),
            hits=hits,
            executed=len(pending),
            jobs=max(workers, 1),
            elapsed=elapsed,
        )
        self.last_stats = stats
        _STATS_LOG.append(stats)
        self._log(stats.summary())
        if self.manifest_dir is not None:
            self._write_manifest(specs, keys, walls)
        return [results[key] for key in keys]

    def _write_manifest(
        self,
        specs: Sequence[RunSpec],
        keys: Sequence[str],
        walls: Dict[str, float],
    ) -> Path:
        """Write ``manifest.json`` describing every run of this sweep."""
        from repro._version import __version__

        entries = [
            {
                "key": key,
                "kind": spec.kind,
                "tags": dict(spec.tags),
                "seed": spec.seed,
                "version": __version__,
                "wall_time": walls.get(key),
                "cached": key not in walls,
            }
            for key, spec in zip(keys, specs)
        ]
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        path = self.manifest_dir / "manifest.json"
        payload = {
            "label": self.label,
            "version": __version__,
            "runs": entries,
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        return path
