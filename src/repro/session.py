"""One-call helpers wiring a full simulation session.

These are the functions most users want: build the environment, speed
model, scenario, scheduler and runtime, run to completion, and return the
:class:`~repro.runtime.executor.RunResult`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.policies.base import SchedulerPolicy
from repro.core.policies.registry import make_scheduler
from repro.errors import ConfigurationError
from repro.graph.dag import TaskGraph
from repro.graph.generators import layered_synthetic_dag
from repro.interference.base import InterferenceScenario, NullScenario
from repro.kernels import CopyKernel, MatMulKernel, StencilKernel
from repro.machine.presets import jetson_tx2
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import RunResult, SimulatedRuntime
from repro.sim.environment import Environment
from repro.trace.tracer import Tracer


def run_graph(
    graph: TaskGraph,
    machine: Machine,
    scheduler: Union[str, SchedulerPolicy],
    scenario: Optional[InterferenceScenario] = None,
    config: Optional[RuntimeConfig] = None,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """Execute ``graph`` on ``machine`` under ``scheduler`` and a scenario.

    ``scheduler`` may be a Table 1 name (``"dam-c"``) or a policy
    instance.  The interference scenario defaults to none.  Pass an
    enabled ``tracer`` (e.g. :class:`repro.trace.FullTracer`) to record
    the run's structured event stream; results stay bit-identical.
    """
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler)
    env = Environment()
    speed = SpeedModel(env, machine)
    (scenario or NullScenario()).install(env, speed, machine)
    runtime = SimulatedRuntime(
        env, machine, graph, scheduler,
        config=config, speed=speed, seed=seed, tracer=tracer,
    )
    return runtime.run()


_KERNELS = {
    "matmul": MatMulKernel,
    "copy": CopyKernel,
    "stencil": StencilKernel,
}


def quick_run(
    scheduler: str = "dam-c",
    kernel: str = "matmul",
    parallelism: int = 4,
    total_tasks: int = 400,
    machine: Optional[Machine] = None,
    scenario: Optional[InterferenceScenario] = None,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """Run the paper's synthetic layered DAG with minimal ceremony."""
    if kernel not in _KERNELS:
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; choose from {sorted(_KERNELS)}"
        )
    graph = layered_synthetic_dag(_KERNELS[kernel](), parallelism, total_tasks)
    return run_graph(
        graph,
        machine or jetson_tx2(),
        scheduler,
        scenario=scenario,
        seed=seed,
        tracer=tracer,
    )
