"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """An object was constructed or wired with invalid parameters."""


class TopologyError(ConfigurationError):
    """Invalid machine topology or execution place."""


class GraphError(ReproError):
    """Invalid task-graph structure (cycles, unknown tasks, bad edges)."""


class RuntimeStateError(ReproError):
    """The simulated runtime was driven through an illegal state change."""


class SchedulingError(ReproError):
    """A scheduling policy produced an unusable decision."""


class CommunicationError(ReproError):
    """Invalid use of the simulated MPI layer."""


class CommunicationTimeout(CommunicationError):
    """A fabric receive waited past its delivery timeout."""

    def __init__(self, dst: int, src: int, tag: int, timeout: float) -> None:
        super().__init__(
            f"recv(dst={dst}, src={src}, tag={tag}) saw no message within "
            f"{timeout} simulated seconds"
        )
        self.dst = dst
        self.src = src
        self.tag = tag
        self.timeout = timeout


class MessageDropped(CommunicationError):
    """A message exhausted its retransmit budget under an injected-loss
    fault model and was declared undeliverable."""

    def __init__(self, src: int, dst: int, tag: int, attempts: int) -> None:
        super().__init__(
            f"message {src}->{dst} (tag={tag}) dropped after {attempts} "
            f"transmission attempt(s)"
        )
        self.src = src
        self.dst = dst
        self.tag = tag
        self.attempts = attempts


class WorkerLost(RuntimeStateError):
    """A simulated worker's lease expired: the core is confirmed dead."""

    def __init__(self, core: int, crashed_at: float, detected_at: float) -> None:
        super().__init__(
            f"worker on core {core} lost (crashed at t={crashed_at:.6f}, "
            f"lease expired at t={detected_at:.6f})"
        )
        self.core = core
        self.crashed_at = crashed_at
        self.detected_at = detected_at


class TaskRetryExhausted(RuntimeStateError):
    """A task kept landing on dying workers past its retry budget."""

    def __init__(self, task_id: int, attempts: int) -> None:
        super().__init__(
            f"task {task_id} failed {attempts} time(s); retry budget exhausted"
        )
        self.task_id = task_id
        self.attempts = attempts


class SweepError(ReproError):
    """A sweep-engine run could not complete a spec."""


class SweepWorkerError(SweepError):
    """A sweep pool worker died (crashed process, torn pipe) mid-spec."""


class SweepTimeout(SweepError):
    """A sweep spec exceeded its per-run wall-clock timeout."""
