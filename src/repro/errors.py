"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """An object was constructed or wired with invalid parameters."""


class TopologyError(ConfigurationError):
    """Invalid machine topology or execution place."""


class GraphError(ReproError):
    """Invalid task-graph structure (cycles, unknown tasks, bad edges)."""


class RuntimeStateError(ReproError):
    """The simulated runtime was driven through an illegal state change."""


class SchedulingError(ReproError):
    """A scheduling policy produced an unusable decision."""


class CommunicationError(ReproError):
    """Invalid use of the simulated MPI layer."""
