"""Deterministic random-number plumbing.

Every stochastic element of a simulation (steal victim choice, DAG
generation, dataset synthesis) draws from a generator created here, so a
run is a pure function of its seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from an int seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from a seed.

    Children are independent streams (via ``spawn``) so that, e.g., each
    simulated worker has its own victim-selection stream whose draws do not
    depend on how many draws other workers made.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = make_rng(seed)
    return list(root.spawn(n))


class RngFactory:
    """Hands out named, reproducible generator streams from one root seed.

    Asking twice for the same name returns generators seeded identically, so
    components can be rebuilt without perturbing each other's streams.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._seed = 0 if seed is None else int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name`` (stable across calls)."""
        # Stable, platform-independent hash of the name mixed with the seed.
        digest = 0
        for ch in name:
            digest = (digest * 1000003 + ord(ch)) & 0xFFFFFFFF
        return np.random.default_rng((self._seed, digest))
