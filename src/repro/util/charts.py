"""Plain-text charts for experiment reports (no plotting dependencies).

Terminal-friendly renderings of the paper's figure types: horizontal bar
charts (Fig. 10), unicode sparklines for time series (Fig. 9a), and
multi-series columns (Figs. 4/7) are already covered by
:func:`repro.util.tables.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels vs {len(values)} values"
        )
    if not labels:
        raise ValueError("bar_chart needs at least one bar")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if any(v < 0 for v in values):
        raise ValueError("bar_chart values must be >= 0")
    peak = max(values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "█" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(
            f"{str(label).ljust(label_width)}  {bar} {value:,.0f}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of ``values`` (min..max normalized)."""
    if not values:
        raise ValueError("sparkline needs at least one value")
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def series_panel(
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    value_format: str = "{:.2f}",
) -> str:
    """Aligned sparklines for several named series, with min/max legends."""
    if not series:
        raise ValueError("series_panel needs at least one series")
    name_width = max(len(name) for name in series)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, values in series.items():
        values = list(values)
        lo = value_format.format(min(values))
        hi = value_format.format(max(values))
        lines.append(
            f"{name.ljust(name_width)}  {sparkline(values)}  "
            f"[min {lo}, max {hi}]"
        )
    return "\n".join(lines)
