"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from repro.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high`` and return it."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value
