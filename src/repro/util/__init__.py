"""Shared utilities: deterministic RNG, validation, tables, statistics."""

from repro.util.rng import RngFactory, make_rng, spawn_rngs
from repro.util.validation import require, require_positive, require_in_range
from repro.util.tables import format_table
from repro.util.charts import bar_chart, series_panel, sparkline
from repro.util.stats import geometric_mean, summarize, weighted_average

__all__ = [
    "RngFactory",
    "make_rng",
    "spawn_rngs",
    "require",
    "require_positive",
    "require_in_range",
    "format_table",
    "bar_chart",
    "series_panel",
    "sparkline",
    "geometric_mean",
    "summarize",
    "weighted_average",
]
