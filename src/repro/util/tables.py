"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned monospace table."""
    rendered: List[List[str]] = [[_render(v) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
