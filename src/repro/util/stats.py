"""Statistics helpers (weighted averages, summaries)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def weighted_average(old: float, new: float, new_weight: int, total_weight: int) -> float:
    """The paper's PTT folding rule generalized.

    ``updated = ((total - new_weight) * old + new_weight * new) / total``.
    With ``new_weight=1, total_weight=5`` this is the 1:4 rule of §4.1.1.
    """
    if not (0 < new_weight <= total_weight):
        raise ValueError(
            f"need 0 < new_weight <= total_weight, got {new_weight}/{total_weight}"
        )
    old_weight = total_weight - new_weight
    return (old_weight * old + new_weight * new) / total_weight


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stdev: float


def summarize(values: Sequence[float]) -> Summary:
    """Return count/mean/min/max/stdev of ``values``."""
    if not values:
        raise ValueError("summarize of empty sequence")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return Summary(n, mean, min(values), max(values), math.sqrt(var))
