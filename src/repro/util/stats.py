"""Statistics helpers (weighted averages, summaries)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def weighted_average(old: float, new: float, new_weight: int, total_weight: int) -> float:
    """The paper's PTT folding rule generalized.

    ``updated = ((total - new_weight) * old + new_weight * new) / total``.
    With ``new_weight=1, total_weight=5`` this is the 1:4 rule of §4.1.1.
    """
    if not (0 < new_weight <= total_weight):
        raise ValueError(
            f"need 0 < new_weight <= total_weight, got {new_weight}/{total_weight}"
        )
    old_weight = total_weight - new_weight
    return (old_weight * old + new_weight * new) / total_weight


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stdev: float


def summarize(values: Sequence[float]) -> Summary:
    """Return count/mean/min/max/stdev of ``values``."""
    if not values:
        raise ValueError("summarize of empty sequence")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return Summary(n, mean, min(values), max(values), math.sqrt(var))


# ---------------------------------------------------------------------------
# Streaming moments and confidence intervals (adaptive replication)
# ---------------------------------------------------------------------------

def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function ``I_x(a, b)``.

    Continued-fraction evaluation (Lentz), accurate to ~1e-12 — enough
    for confidence intervals without pulling in scipy.
    """
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
    front = math.exp(ln_beta + a * math.log(x) + b * math.log1p(-x))
    # Use the symmetry relation for faster convergence.
    if x > (a + 1.0) / (a + b + 2.0):
        return 1.0 - _betainc(b, a, 1.0 - x)
    tiny = 1e-300
    f, c, d = 1.0, 1.0, 0.0
    for i in range(0, 200):
        m = i // 2
        if i == 0:
            numerator = 1.0
        elif i % 2 == 0:
            numerator = m * (b - m) * x / ((a + 2 * m - 1) * (a + 2 * m))
        else:
            numerator = -(a + m) * (a + b + m) * x / ((a + 2 * m) * (a + 2 * m + 1))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        d = 1.0 / d
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        delta = c * d
        f *= delta
        if abs(1.0 - delta) < 1e-13:
            break
    return front * (f - 1.0) / a


def _t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    p = 0.5 * _betainc(df / 2.0, 0.5, x)
    return 1.0 - p if t > 0 else p


def t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value (e.g. 2.262 at 95%, df=9).

    Solved by bisection on the CDF — no table, no scipy.
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    target = 1.0 - (1.0 - confidence) / 2.0
    lo, hi = 0.0, 1.0
    while _t_cdf(hi, df) < target:
        hi *= 2.0
        if hi > 1e8:  # pragma: no cover - defensive
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _t_cdf(mid, df) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


class Welford:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Numerically stable single-pass moments; drives the adaptive sweep's
    CI-based stopping rule.  One-sample statistics are exact: ``mean``
    equals the sole value bit-for-bit, which the adaptive executor relies
    on for its replicates-off identity guarantee.
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        if self.count == 1:
            # Seed the mean directly so a single sample reproduces the
            # value exactly (no `0 + delta/1` rounding detour).
            self.mean = float(value)
            return
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (n-1 denominator); 0 before 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def ci_halfwidth(self, confidence: float = 0.95) -> float:
        """Half-width of the two-sided Student-t CI of the mean.

        Infinite before two samples — an unknown spread never counts as
        converged.
        """
        if self.count < 2:
            return math.inf
        sem = self.stdev / math.sqrt(self.count)
        if sem == 0.0:
            return 0.0
        return t_critical(confidence, self.count - 1) * sem

    def relative_ci(self, confidence: float = 0.95) -> float:
        """CI half-width relative to ``|mean|``; infinite when mean is 0."""
        half = self.ci_halfwidth(confidence)
        if half == 0.0:
            return 0.0
        if self.mean == 0.0:
            return math.inf
        return half / abs(self.mean)
