"""The simulated interconnect fabric.

Point-to-point semantics: a message sent from rank ``s`` to rank ``d``
occupies the directed link ``(s, d)`` for its wire time (latency +
bytes/bandwidth); messages on the same link serialize FIFO, other links
proceed independently — a reasonable model of a non-blocking switched
fabric such as the paper's FDR InfiniBand.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import CommunicationError
from repro.distributed.message import Message
from repro.machine.interconnect import Interconnect
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.resources import Store


class Fabric:
    """Message transport between ``num_ranks`` nodes."""

    def __init__(
        self,
        env: Environment,
        num_ranks: int,
        interconnect: Interconnect = Interconnect(),
    ) -> None:
        if num_ranks <= 0:
            raise CommunicationError(f"num_ranks must be positive, got {num_ranks}")
        self.env = env
        self.num_ranks = num_ranks
        self.interconnect = interconnect
        #: Mailboxes keyed by (dst, src, tag).
        self._boxes: Dict[Tuple[int, int, int], Store] = {}
        #: Next-free time of each directed link.
        self._link_free: Dict[Tuple[int, int], float] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0.0

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.num_ranks):
            raise CommunicationError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )

    def _box(self, dst: int, src: int, tag: int) -> Store:
        key = (dst, src, tag)
        box = self._boxes.get(key)
        if box is None:
            box = Store(self.env)
            self._boxes[key] = box
        return box

    def send(self, message: Message) -> Event:
        """Inject ``message``; the event fires when it is delivered.

        Local (same-rank) messages are delivered immediately; remote ones
        after the link's queue drains plus the wire time.
        """
        self._check_rank(message.src)
        self._check_rank(message.dst)
        done = Event(self.env)
        if message.src == message.dst:
            self._deliver(message)
            done.succeed(message)
            return done
        link = (message.src, message.dst)
        now = self.env.now
        start = max(now, self._link_free.get(link, now))
        wire = self.interconnect.transfer_time(message.size_bytes)
        finish = start + wire
        self._link_free[link] = finish

        def _arrive(_event: Event, message=message, done=done) -> None:
            self._deliver(message)
            done.succeed(message)

        marker = Event(self.env)
        marker._ok = True
        marker._value = None
        marker.callbacks.append(_arrive)
        self.env._queue.push(finish, 1, marker)
        return done

    def _deliver(self, message: Message) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        self._box(message.dst, message.src, message.tag).put(message)

    def recv(self, dst: int, src: int, tag: int) -> Event:
        """Event yielding the next matching message (FIFO per (src, tag))."""
        self._check_rank(dst)
        self._check_rank(src)
        return self._box(dst, src, tag).get()
