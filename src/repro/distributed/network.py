"""The simulated interconnect fabric.

Point-to-point semantics: a message sent from rank ``s`` to rank ``d``
occupies the directed link ``(s, d)`` for its wire time (latency +
bytes/bandwidth); messages on the same link serialize FIFO, other links
proceed independently — a reasonable model of a non-blocking switched
fabric such as the paper's FDR InfiniBand.

Failure semantics are opt-in and fail loudly:

* ``recv(..., timeout=...)`` (per call or fabric-wide via
  ``recv_timeout``) fails the returned event with
  :class:`~repro.errors.CommunicationTimeout` if no matching message
  arrives in time — a silently-hung ``recv`` on a mismatched tag was
  previously indistinguishable from a slow sender;
* a :class:`MessageFaultModel` injects seeded, deterministic message
  loss and delay on remote sends.  Lost transmissions are retransmitted
  (each retry re-occupies the link) up to ``max_retransmits``; past the
  budget the send event fails with :class:`~repro.errors.MessageDropped`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import (
    CommunicationError,
    CommunicationTimeout,
    ConfigurationError,
    MessageDropped,
)
from repro.distributed.message import Message
from repro.machine.interconnect import Interconnect
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.resources import Store
from repro.util.rng import SeedLike, make_rng


class MessageFaultModel:
    """Seeded drop/delay faults applied to remote transmissions.

    Each remote transmission attempt independently drops with
    probability ``drop_prob`` and, when it survives, suffers an extra
    ``delay`` seconds with probability ``delay_prob``.  Draws come from
    a private seeded generator in event order, so a given fabric
    workload replays bit-identically — chaos runs stay cacheable.

    ``retransmit_delay`` models the sender's loss-detection time (NACK
    or ack-timeout): a retransmission enters the link queue that long
    after the dropped attempt left the wire.
    """

    def __init__(
        self,
        drop_prob: float = 0.0,
        delay_prob: float = 0.0,
        delay: float = 0.0,
        max_retransmits: int = 3,
        retransmit_delay: float = 0.0,
        seed: SeedLike = 0,
    ) -> None:
        if not (0.0 <= drop_prob < 1.0):
            raise ConfigurationError(
                f"drop_prob must be in [0, 1), got {drop_prob}"
            )
        if not (0.0 <= delay_prob <= 1.0):
            raise ConfigurationError(
                f"delay_prob must be in [0, 1], got {delay_prob}"
            )
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        if max_retransmits < 0:
            raise ConfigurationError(
                f"max_retransmits must be >= 0, got {max_retransmits}"
            )
        if retransmit_delay < 0:
            raise ConfigurationError(
                f"retransmit_delay must be >= 0, got {retransmit_delay}"
            )
        self.drop_prob = drop_prob
        self.delay_prob = delay_prob
        self.delay = delay
        self.max_retransmits = max_retransmits
        self.retransmit_delay = retransmit_delay
        self._rng = make_rng(seed)

    def drops(self, message: Message) -> bool:
        """Decide whether this transmission attempt is lost."""
        if self.drop_prob == 0.0:
            return False
        return bool(self._rng.random() < self.drop_prob)

    def extra_delay(self, message: Message) -> float:
        """Extra wire delay for a surviving transmission attempt."""
        if self.delay_prob == 0.0 or self.delay == 0.0:
            return 0.0
        if self._rng.random() < self.delay_prob:
            return self.delay
        return 0.0


class Fabric:
    """Message transport between ``num_ranks`` nodes."""

    def __init__(
        self,
        env: Environment,
        num_ranks: int,
        interconnect: Interconnect = Interconnect(),
        faults: Optional[MessageFaultModel] = None,
        recv_timeout: Optional[float] = None,
    ) -> None:
        if num_ranks <= 0:
            raise CommunicationError(f"num_ranks must be positive, got {num_ranks}")
        if recv_timeout is not None and recv_timeout <= 0:
            raise ConfigurationError(
                f"recv_timeout must be > 0 or None, got {recv_timeout}"
            )
        self.env = env
        self.num_ranks = num_ranks
        self.interconnect = interconnect
        self.faults = faults
        #: Fabric-wide default receive timeout; ``None`` waits forever.
        self.recv_timeout = recv_timeout
        #: Mailboxes keyed by (dst, src, tag).
        self._boxes: Dict[Tuple[int, int, int], Store] = {}
        #: Next-free time of each directed link.
        self._link_free: Dict[Tuple[int, int], float] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0.0
        self.messages_dropped = 0
        self.retransmissions = 0

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.num_ranks):
            raise CommunicationError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )

    def _box(self, dst: int, src: int, tag: int) -> Store:
        key = (dst, src, tag)
        box = self._boxes.get(key)
        if box is None:
            box = Store(self.env)
            self._boxes[key] = box
        return box

    def _at(self, time: float, action: Callable[[Event], None]) -> None:
        """Run ``action`` at simulated ``time`` (ordinary priority)."""
        marker = Event(self.env)
        marker._ok = True
        marker._value = None
        marker.callbacks.append(action)
        self.env._queue.push(time, 1, marker)

    def send(self, message: Message) -> Event:
        """Inject ``message``; the event fires when it is delivered.

        Local (same-rank) messages are delivered immediately; remote ones
        after the link's queue drains plus the wire time.  Under a
        :class:`MessageFaultModel` the event may instead *fail* with
        :class:`~repro.errors.MessageDropped` once the retransmit budget
        is spent.
        """
        self._check_rank(message.src)
        self._check_rank(message.dst)
        done = Event(self.env)
        if message.src == message.dst:
            self._deliver(message)
            done.succeed(message)
            return done
        self._transmit(message, done, attempt=1)
        return done

    def _transmit(self, message: Message, done: Event, attempt: int) -> None:
        """One wire attempt; retries itself on an injected drop."""
        link = (message.src, message.dst)
        now = self.env.now
        start = max(now, self._link_free.get(link, now))
        wire = self.interconnect.transfer_time(message.size_bytes)
        faults = self.faults
        dropped = faults is not None and faults.drops(message)
        extra = 0.0 if dropped or faults is None else faults.extra_delay(message)
        finish = start + wire + extra
        # A dropped attempt still occupied the link for its wire time.
        self._link_free[link] = finish

        if not dropped:

            def _arrive(_event: Event, message=message, done=done) -> None:
                self._deliver(message)
                done.succeed(message)

            self._at(finish, _arrive)
            return

        self.messages_dropped += 1
        retry_at = finish + faults.retransmit_delay
        if attempt > faults.max_retransmits:

            def _fail(_event: Event, message=message, done=done,
                      attempt=attempt) -> None:
                done.fail(
                    MessageDropped(message.src, message.dst, message.tag, attempt)
                )

            self._at(retry_at, _fail)
            return

        def _retry(_event: Event, message=message, done=done,
                   attempt=attempt) -> None:
            # The budget is charged here, when the retransmission is
            # actually attempted — not at scheduling time.  A receiver
            # whose timeout fires inside the retransmit-delay window
            # must observe only the transmissions that happened.
            self.retransmissions += 1
            self._transmit(message, done, attempt + 1)

        self._at(retry_at, _retry)

    def _deliver(self, message: Message) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        self._box(message.dst, message.src, message.tag).put(message)

    def recv(
        self,
        dst: int,
        src: int,
        tag: int,
        timeout: Optional[float] = None,
    ) -> Event:
        """Event yielding the next matching message (FIFO per (src, tag)).

        ``timeout`` (falling back to the fabric-wide ``recv_timeout``)
        bounds the wait: if no message arrives within that many simulated
        seconds the event fails with
        :class:`~repro.errors.CommunicationTimeout` instead of hanging
        forever on a mismatched (src, tag) pair.
        """
        self._check_rank(dst)
        self._check_rank(src)
        if timeout is None:
            timeout = self.recv_timeout
        elif timeout <= 0:
            raise ConfigurationError(
                f"recv timeout must be > 0 or None, got {timeout}"
            )
        box = self._box(dst, src, tag)
        event = box.get()
        if timeout is not None and not event.triggered:

            def _expire(_marker: Event, event=event, box=box,
                        timeout=timeout) -> None:
                # Only fail if the get is still queued; cancel_get keeps a
                # timed-out getter from later swallowing a message meant
                # for a retried receive.
                if box.cancel_get(event):
                    event.fail(CommunicationTimeout(dst, src, tag, timeout))

            self._at(self.env.now + timeout, _expire)
        return event
