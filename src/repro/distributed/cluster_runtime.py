"""Multi-node execution: one runtime per rank on a shared clock."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.policies.base import SchedulerPolicy
from repro.core.policies.registry import make_scheduler
from repro.distributed.mpi import CommTaskBuilder, SimMpi
from repro.distributed.network import Fabric, MessageFaultModel
from repro.errors import ConfigurationError, RuntimeStateError
from repro.graph.dag import TaskGraph
from repro.interference.base import InterferenceScenario
from repro.machine.interconnect import Interconnect
from repro.machine.speed import SpeedModel
from repro.machine.topology import Machine
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import RunResult, SimulatedRuntime
from repro.sim.environment import Environment


@dataclass
class NodeHandle:
    """Everything an application builder needs to construct a node's DAG."""

    rank: int
    machine: Machine
    env: Environment
    speed: SpeedModel
    mpi: SimMpi
    comm: CommTaskBuilder
    runtime: Optional[SimulatedRuntime] = None


@dataclass
class DistributedRunResult:
    """Aggregated outcome of a multi-node run."""

    makespan: float
    tasks_completed: int
    throughput: float
    node_results: List[RunResult] = field(default_factory=list)
    messages: int = 0
    bytes_moved: float = 0.0


GraphBuilder = Callable[[NodeHandle], TaskGraph]
SchedulerLike = Union[str, Callable[[], SchedulerPolicy]]


class DistributedRuntime:
    """N node runtimes + a fabric, advanced together until all graphs finish.

    Parameters
    ----------
    machines:
        One machine per rank.
    scheduler:
        A Table 1 name or a zero-argument factory; each node gets its own
        policy instance (its own PTT), as in the paper's per-process
        runtime.
    graph_builder:
        Called once per rank with the rank's :class:`NodeHandle`; returns
        that rank's task graph (typically containing comm tasks built via
        ``handle.comm``).
    scenarios:
        Optional per-rank interference, e.g. ``{0: CorunnerInterference(...)}``
        — the paper's Fig. 10 perturbs 5 cores of node 0 only.
    message_faults:
        Optional seeded :class:`MessageFaultModel` injecting message
        drop/delay on the fabric (sends fail loudly once the retransmit
        budget is exhausted).
    recv_timeout:
        Fabric-wide delivery timeout for receives; ``None`` waits
        forever, a finite value turns a hung ``recv`` into a
        :class:`~repro.errors.CommunicationTimeout`.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        scheduler: SchedulerLike,
        graph_builder: GraphBuilder,
        interconnect: Interconnect = Interconnect(),
        scenarios: Optional[Dict[int, InterferenceScenario]] = None,
        config: Optional[RuntimeConfig] = None,
        seed: int = 0,
        env: Optional[Environment] = None,
        message_faults: Optional[MessageFaultModel] = None,
        recv_timeout: Optional[float] = None,
    ) -> None:
        if not machines:
            raise ConfigurationError("need at least one node machine")
        self.env = env or Environment()
        self.config = config or RuntimeConfig()
        self.fabric = Fabric(
            self.env,
            len(machines),
            interconnect,
            faults=message_faults,
            recv_timeout=recv_timeout,
        )
        self.handles: List[NodeHandle] = []
        self.runtimes: List[SimulatedRuntime] = []

        def _policy() -> SchedulerPolicy:
            if isinstance(scheduler, str):
                return make_scheduler(scheduler)
            return scheduler()

        scenarios = scenarios or {}
        for rank, machine in enumerate(machines):
            speed = SpeedModel(self.env, machine)
            mpi = SimMpi(self.fabric, rank)
            comm = CommTaskBuilder(self.env, speed, mpi)
            handle = NodeHandle(rank, machine, self.env, speed, mpi, comm)
            scenario = scenarios.get(rank)
            if scenario is not None:
                scenario.install(self.env, speed, machine)
            graph = graph_builder(handle)
            runtime = SimulatedRuntime(
                self.env,
                machine,
                graph,
                _policy(),
                config=self.config,
                speed=speed,
                seed=seed + rank,
                name=f"node{rank}",
            )
            handle.runtime = runtime
            self.handles.append(handle)
            self.runtimes.append(runtime)

    def run(self) -> DistributedRunResult:
        """Advance the shared clock until every node's graph finishes."""
        start = self.env.now
        for runtime in self.runtimes:
            runtime.start()
        deadline = start + self.config.max_time
        while not all(rt.finished for rt in self.runtimes):
            if len(self.env._queue) == 0:
                stuck = [rt.name for rt in self.runtimes if not rt.finished]
                raise RuntimeStateError(
                    f"distributed deadlock — nodes {stuck} have unfinished "
                    "graphs but no pending events (missing message?)"
                )
            self.env.step()
            if self.env.now > deadline:
                raise RuntimeStateError(
                    f"distributed run exceeded max_time={self.config.max_time}"
                )
        makespan = self.env.now - start
        node_results = [rt.result() for rt in self.runtimes]
        total = sum(r.tasks_completed for r in node_results)
        return DistributedRunResult(
            makespan=makespan,
            tasks_completed=total,
            throughput=(total / makespan) if makespan > 0 else 0.0,
            node_results=node_results,
            messages=self.fabric.messages_delivered,
            bytes_moved=self.fabric.bytes_delivered,
        )
