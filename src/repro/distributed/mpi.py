"""Simulated MPI layer and communication-task factories.

:class:`SimMpi` is the per-rank facade over the fabric (send/recv with
tags).  :class:`CommTaskBuilder` packages MPI operations as *communication
ops* for the task runtime: a comm op occupies its core for the protocol
work (marshalling, progress — executed through the speed model, so core
interference slows it), then performs the wire transfer and/or blocks for
the matching inbound message.  This mirrors the paper's encapsulation of
MPI calls into dedicated high-priority TAOs (§4.2.2).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.distributed.message import Message
from repro.distributed.network import Fabric
from repro.errors import CommunicationError
from repro.kernels.fixed import FixedWorkKernel
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment
from repro.sim.events import Event


class SimMpi:
    """Rank-scoped message passing over a :class:`Fabric`."""

    def __init__(self, fabric: Fabric, rank: int) -> None:
        fabric._check_rank(rank)
        self.fabric = fabric
        self.rank = rank

    @property
    def size(self) -> int:
        return self.fabric.num_ranks

    def isend(
        self, dst: int, tag: int, size_bytes: float, payload: Any = None
    ) -> Event:
        """Non-blocking send; the event fires at delivery."""
        return self.fabric.send(
            Message(self.rank, dst, tag, size_bytes, payload)
        )

    def irecv(self, src: int, tag: int) -> Event:
        """Non-blocking receive; the event yields the matching message."""
        return self.fabric.recv(self.rank, src, tag)


class CommTaskBuilder:
    """Builds ``comm_op`` callables and kernels for communication tasks.

    Parameters
    ----------
    env, speed, mpi:
        The owning node's simulation wiring.
    base_cpu_work / per_byte_cpu_work:
        Protocol-processing cost charged to the task's core:
        ``base + bytes * per_byte`` work units.  This is the part of MPI
        time that is sensitive to core interference and cache contention
        (Pellegrini et al., cited by the paper as [25]).
    memory_intensity:
        Bandwidth-bound fraction of the protocol work.
    """

    def __init__(
        self,
        env: Environment,
        speed: SpeedModel,
        mpi: SimMpi,
        base_cpu_work: float = 3.0e-5,
        per_byte_cpu_work: float = 5.0e-10,
        memory_intensity: float = 0.3,
    ) -> None:
        if base_cpu_work < 0 or per_byte_cpu_work < 0:
            raise CommunicationError("protocol costs must be >= 0")
        self.env = env
        self.speed = speed
        self.mpi = mpi
        self.base_cpu_work = base_cpu_work
        self.per_byte_cpu_work = per_byte_cpu_work
        self.memory_intensity = memory_intensity

    def comm_kernel(self, name: str, size_bytes: float) -> FixedWorkKernel:
        """The task-type kernel for a comm task of ``size_bytes``.

        ``parallel_fraction=0``: message passing is inherently single-core
        ("communication tasks utilize a single core at a time", §5.4), so
        any width search resolves to width 1.
        """
        return FixedWorkKernel(
            name,
            work=self._protocol_work(size_bytes),
            parallel_fraction=0.0,
            memory_intensity=self.memory_intensity,
        )

    def _protocol_work(self, size_bytes: float) -> float:
        return self.base_cpu_work + size_bytes * self.per_byte_cpu_work

    def _protocol_phase(self, assembly, size_bytes: float) -> Event:
        work = self.speed.begin_work(
            assembly.cores,
            self._protocol_work(size_bytes),
            memory_intensity=self.memory_intensity,
        )
        return work.done

    def exchange_op(
        self,
        peer: int,
        send_tag: int,
        recv_tag: int,
        size_bytes: float,
        payload: Any = None,
    ) -> Callable:
        """A boundary exchange: protocol work, then isend + blocking recv.

        Returns a ``comm_op`` suitable for ``task.metadata["comm_op"]``;
        the op's completion event fires when both the outbound message has
        been injected and the inbound one received.
        """

        def _op(assembly) -> Event:
            done = Event(self.env)

            def _run():
                start = self.env.now
                yield self._protocol_phase(assembly, size_bytes)
                self.mpi.isend(peer, send_tag, size_bytes, payload)
                # Billable time = local protocol + wire; the wait for the
                # peer (skew) is excluded from the value so the PTT learns
                # this core's communication speed, not the neighbour's lag.
                billable = (self.env.now - start) + (
                    self.fabric_transfer_time(size_bytes)
                )
                yield self.mpi.irecv(peer, recv_tag)
                done.succeed(billable)

            self.env.process(_run(), name=f"exchange-r{self.mpi.rank}-p{peer}")
            return done

        return _op

    def fabric_transfer_time(self, size_bytes: float) -> float:
        """Uncontended wire time of one message."""
        return self.mpi.fabric.interconnect.transfer_time(size_bytes)

    def send_op(
        self, dst: int, tag: int, size_bytes: float, payload: Any = None
    ) -> Callable:
        """A one-way send comm op (protocol work + injection)."""

        def _op(assembly) -> Event:
            done = Event(self.env)

            def _run():
                start = self.env.now
                yield self._protocol_phase(assembly, size_bytes)
                self.mpi.isend(dst, tag, size_bytes, payload)
                done.succeed(self.env.now - start)

            self.env.process(_run(), name=f"send-r{self.mpi.rank}-d{dst}")
            return done

        return _op

    def recv_op(self, src: int, tag: int, size_bytes: float) -> Callable:
        """A blocking receive comm op (wait + protocol work)."""

        def _op(assembly) -> Event:
            done = Event(self.env)

            def _run():
                yield self.mpi.irecv(src, tag)
                start = self.env.now
                yield self._protocol_phase(assembly, size_bytes)
                done.succeed(self.env.now - start)

            self.env.process(_run(), name=f"recv-r{self.mpi.rank}-s{src}")
            return done

        return _op
