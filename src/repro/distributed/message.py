"""Inter-node messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """A point-to-point message between ranks.

    ``payload`` is opaque to the fabric (applications may attach real data,
    e.g. boundary rows); only ``size_bytes`` affects timing.
    """

    src: int
    dst: int
    tag: int
    size_bytes: float
    payload: Any = None
    msg_id: int = field(default_factory=itertools.count().__next__)

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("ranks must be >= 0")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
