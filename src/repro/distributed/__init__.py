"""Distributed-memory substrate: simulated fabric, MPI layer, multi-node runtime.

The paper's second platform is a 4-node Infiniband Haswell cluster running
an MPI + XiTAO hybrid (distributed 2D heat, §4.2.2/§5.4).  Here each node
is a full :class:`~repro.runtime.executor.SimulatedRuntime` with its own
machine, speed model, scheduler and PTT, all sharing one simulation clock;
inter-node messages travel a latency/bandwidth fabric with per-link
serialization.  MPI operations appear in node DAGs as *communication
tasks* (high priority, per the paper) that occupy one core for the
protocol work plus the transfer/wait time — so interference on a core
slows communication there and the PTT learns to steer exchanges away.
"""

from repro.distributed.message import Message
from repro.distributed.network import Fabric
from repro.distributed.mpi import CommTaskBuilder, SimMpi
from repro.distributed.cluster_runtime import DistributedRuntime, NodeHandle

__all__ = [
    "Message",
    "Fabric",
    "SimMpi",
    "CommTaskBuilder",
    "DistributedRuntime",
    "NodeHandle",
]
