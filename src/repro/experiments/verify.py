"""Reproduction scorecard: check every paper claim programmatically.

Runs all harnesses and evaluates each qualitative claim of the paper's
evaluation, printing a PASS/FAIL line per claim — a one-command answer to
"does this reproduction still hold?".

    python -m repro.experiments verify [--scale 0.02]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig4_corunner import run_fig4
from repro.experiments.fig5_distribution import run_fig5
from repro.experiments.fig6_worktime import run_fig6
from repro.experiments.fig7_dvfs import run_fig7
from repro.experiments.fig8_sensitivity import run_fig8
from repro.experiments.fig9_kmeans import run_fig9
from repro.experiments.fig10_heat import run_fig10
from repro.experiments.table1_features import run_table1


@dataclass
class Claim:
    """One checkable statement from the paper."""

    artifact: str
    text: str
    holds: bool
    detail: str = ""


@dataclass
class Scorecard:
    claims: List[Claim] = field(default_factory=list)

    def add(self, artifact: str, text: str, holds: bool, detail: str = "") -> None:
        self.claims.append(Claim(artifact, text, bool(holds), detail))

    @property
    def passed(self) -> int:
        return sum(1 for c in self.claims if c.holds)

    @property
    def all_hold(self) -> bool:
        return self.passed == len(self.claims)

    def report(self) -> str:
        lines = ["Reproduction scorecard", "=" * 70]
        for claim in self.claims:
            mark = "PASS" if claim.holds else "FAIL"
            suffix = f"  [{claim.detail}]" if claim.detail else ""
            lines.append(f"[{mark}] {claim.artifact:7s} {claim.text}{suffix}")
        lines.append("=" * 70)
        lines.append(f"{self.passed}/{len(self.claims)} claims hold")
        return "\n".join(lines)


def run_verify(settings: ExperimentSettings = ExperimentSettings()) -> Scorecard:
    """Run every harness and evaluate the paper's qualitative claims."""
    card = Scorecard()

    # -- Table 1 ---------------------------------------------------------
    table1 = run_table1()
    card.add("table1", "seven schedulers with the paper's feature columns",
             len(table1.rows) == 7)

    # -- Fig 4 ------------------------------------------------------------
    fig4 = run_fig4(settings, kernels=("matmul",))
    data = fig4.throughput["matmul"]
    ps = fig4.parallelisms
    card.add(
        "fig4", "dynamic schedulers highest throughput at every parallelism",
        all(
            max(data["da"][p], data["dam-c"][p], data["dam-p"][p])
            >= max(data["rws"][p], data["fa"][p]) * 0.98
            for p in ps
        ),
    )
    card.add(
        "fig4", "RWS/FA grow with parallelism, DAM-C saturates early",
        data["rws"][ps[-1]] > 1.5 * data["rws"][ps[0]]
        and data["dam-c"][ps[1]] > 0.9 * data["dam-c"][ps[-1]],
    )
    ratios = fig4.headline_ratios("matmul")
    card.add(
        "fig4", "DAM-C well above RWS (paper: up to 3.5x)",
        ratios["dam-c/rws"] > 1.5,
        f"measured {ratios['dam-c/rws']:.2f}x",
    )
    card.add(
        "fig4", "DAM-C well above FA/FAM-C (paper: up to 1.90x/1.85x)",
        ratios["dam-c/fa"] > 1.3 and ratios["dam-c/fam-c"] > 1.3,
        f"measured {ratios['dam-c/fa']:.2f}x/{ratios['dam-c/fam-c']:.2f}x",
    )

    # Memory interference (Fig 4b): the copy co-runner scenario.
    fig4_copy = run_fig4(settings, kernels=("copy",), parallelisms=(2, 4))
    copy_data = fig4_copy.throughput["copy"]
    card.add(
        "fig4", "dynamic schedulers also win under memory interference (copy)",
        all(
            copy_data["dam-c"][p] > copy_data["rws"][p] * 0.98
            for p in (2, 4)
        ),
    )

    # -- Fig 5 ---------------------------------------------------------
    fig5 = run_fig5(settings)
    card.add(
        "fig5", "FA splits priority tasks 50/50 onto the Denver cores",
        abs(fig5.interfered_core_share("fa") - 0.5) < 0.05,
    )
    card.add(
        "fig5", "dynamic schedulers keep priority tasks off the interfered core",
        all(fig5.interfered_core_share(s) < 0.05 for s in ("da", "dam-c", "dam-p")),
    )
    card.add(
        "fig5", "RWS scatters priority tasks across all cores",
        len(fig5.distribution["rws"]) >= 6,
    )

    # -- Fig 6 ------------------------------------------------------------
    fig6 = run_fig6(settings)
    card.add(
        "fig6", "FA loads interfered core 0 most among criticality-aware policies",
        all(
            fig6.work_time["fa"][0] > fig6.work_time[s][0]
            for s in ("da", "dam-c", "dam-p")
        ),
    )
    card.add(
        "fig6", "dynamic schedulers have the smallest makespan",
        min(fig6.makespan, key=fig6.makespan.get) in ("da", "dam-c", "dam-p"),
    )

    # -- Fig 7 ---------------------------------------------------------
    fig7 = run_fig7(settings, kernels=("copy",))
    data7 = fig7.throughput["copy"]
    card.add(
        "fig7", "DA/DAM-C more resilient to DVFS than RWS at every parallelism",
        all(data7["dam-c"][p] > data7["rws"][p] * 0.95 for p in fig7.parallelisms),
    )
    card.add(
        "fig7", "DAM-P best at the lowest parallelism",
        data7["dam-p"][2] >= max(data7[s][2] for s in data7) * 0.98,
    )
    r7 = fig7.headline_ratios("copy")
    card.add(
        "fig7", "DAM-C above RWS on average (paper: ~2.2x)",
        r7["dam-c/rws"] > 1.05,
        f"measured {r7['dam-c/rws']:.2f}x",
    )

    # -- Fig 8 ---------------------------------------------------------
    fig8 = run_fig8(settings)
    card.add(
        "fig8", "weight ratio only matters for the smallest tile",
        fig8.spread(32) > 0.05 > fig8.spread(96),
        f"spread(32)={fig8.spread(32):.1%}, spread(96)={fig8.spread(96):.1%}",
    )
    card.add(
        "fig8", "1/5 fold is (near-)best at tile 32 (the paper's choice)",
        fig8.throughput[32][1] >= 0.95 * max(fig8.throughput[32].values()),
    )

    # -- Fig 9 ---------------------------------------------------------
    fig9 = run_fig9(settings)
    card.add(
        "fig9", "interference window inflates every scheduler's iterations",
        all(
            fig9.mean_iteration_time(s, True) > fig9.mean_iteration_time(s, False)
            for s in fig9.series
        ),
    )
    card.add(
        "fig9", "DAM-P/DAM-C absorb the window far better than RWS",
        fig9.mean_iteration_time("dam-p", True) < 0.9 * fig9.mean_iteration_time("rws", True)
        and fig9.mean_iteration_time("dam-c", True) < 0.9 * fig9.mean_iteration_time("rws", True),
    )

    # -- Fig 10 ------------------------------------------------------------
    fig10 = run_fig10(settings)
    r10 = fig10.headline_ratios()
    card.add(
        "fig10", "DAM-C above RWS (paper: +76%)",
        r10["dam-c/rws"] > 1.5,
        f"measured {r10['dam-c/rws']:.2f}x",
    )
    card.add(
        "fig10", "DAM-C at or above RWSM-C (paper: +17%)",
        r10["dam-c/rwsm-c"] >= 1.0,
        f"measured {r10['dam-c/rwsm-c']:.2f}x",
    )
    card.add(
        "fig10", "moldable dynamic schedulers dominate the heat workload",
        max(fig10.throughput, key=fig10.throughput.get) in ("dam-c", "dam-p"),
    )

    # -- Seed robustness (extension) -------------------------------------
    from repro.experiments.seeds import run_seeds

    sweep = run_seeds(settings, seeds=(0, 1, 2))
    card.add(
        "seeds", "RWS < FA < DAM-C ranking stable across seeds",
        sweep.ranking_stable()
        and sweep.ranking(0) == ("rws", "fa", "dam-c"),
        f"worst dam-c/rws {sweep.worst_ratio():.2f}x",
    )

    return card


if __name__ == "__main__":  # pragma: no cover
    print(run_verify().report())
