"""Command-line entry point for the experiment harnesses.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig4 --scale 0.05 --seed 1
    python -m repro.experiments all --scale 0.02 --jobs 8
    python -m repro.experiments all --scale 0.02 --no-cache
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from repro.experiments.common import ExperimentSettings
from repro.sweep import default_cache_dir, pop_stats
from repro.experiments.fig4_corunner import run_fig4
from repro.experiments.fig5_distribution import run_fig5
from repro.experiments.fig6_worktime import run_fig6
from repro.experiments.fig7_dvfs import run_fig7
from repro.experiments.fig8_sensitivity import run_fig8
from repro.experiments.fig9_kmeans import run_fig9
from repro.experiments.fig10_heat import run_fig10
from repro.experiments.seeds import run_seeds
from repro.experiments.table1_features import run_table1
from repro.experiments.verify import run_verify

_HARNESSES: Dict[str, Callable] = {
    "table1": lambda settings: run_table1(),
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "seeds": run_seeds,
    "verify": run_verify,
}


def main(argv=None) -> int:
    """CLI entry point: parse arguments, run harnesses, print reports."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_HARNESSES) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="fraction of the paper's task/iteration counts (default 0.05; "
        "1.0 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the simulation sweeps "
        "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result-cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    args = parser.parse_args(argv)

    settings = ExperimentSettings(
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs if args.jobs is not None else (os.cpu_count() or 1),
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    if args.experiment == "all":
        # "verify" re-runs every harness; keep it a separate command.
        names = sorted(n for n in _HARNESSES if n != "verify")
    else:
        names = [args.experiment]
    pop_stats()  # drop anything accumulated before this invocation
    for name in names:
        start = time.perf_counter()
        result = _HARNESSES[name](settings)
        elapsed = time.perf_counter() - start
        print(result.report())
        stats = pop_stats()
        hits = sum(s.hits for s in stats)
        unique = sum(s.unique for s in stats)
        cache_note = (
            f", cache {hits}/{unique} hits" if unique and not args.no_cache
            else ""
        )
        print(f"[{name} regenerated in {elapsed:.1f}s wall{cache_note}]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
