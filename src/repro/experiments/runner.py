"""Command-line entry point for the experiment harnesses.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig4 --scale 0.05 --seed 1
    python -m repro.experiments all --scale 0.02 --jobs 8
    python -m repro.experiments all --scale 0.02 --no-cache
    python -m repro.experiments trace fig4 --trace-out traces/
    python -m repro.experiments fig7 --trace

``trace <fig>`` re-runs one harness with structured tracing on: every
simulation exports a Chrome-trace JSON (open in Perfetto or
``chrome://tracing``) and a JSONL event stream, plus a per-sweep
``manifest.json``.  ``--trace`` does the same for a normal subcommand.
Traced runs bypass the result cache.  See ``docs/observability.md``.

Exit codes distinguish who is at fault: ``0`` success (including runs
that completed after retries), ``2`` user error (bad arguments or
configuration), ``3`` an internal crash worth a bug report, ``4`` one
or more cells exhausted their retry budget on infrastructure failures
(worker crashes/timeouts/lease expiries) — the results are incomplete
and a re-run (or ``--resume``) is warranted.  See ``docs/robustness.md``
for ``--resume``, ``--run-timeout`` and ``--max-attempts``, and
``docs/cluster.md`` for ``--cluster``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback
from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSettings
from repro.sweep import default_cache_dir, pop_stats
from repro.experiments.fig4_corunner import run_fig4
from repro.experiments.fig5_distribution import run_fig5
from repro.experiments.fig6_worktime import run_fig6
from repro.experiments.fig7_dvfs import run_fig7
from repro.experiments.fig8_sensitivity import run_fig8
from repro.experiments.fig9_kmeans import run_fig9
from repro.experiments.fig10_heat import run_fig10
from repro.experiments.fig_faults import run_chaos, run_faults
from repro.experiments.seeds import run_seeds
from repro.experiments.table1_features import run_table1
from repro.experiments.verify import run_verify

#: Exit codes: argparse itself uses 2 for bad flags; we fold every user
#: configuration mistake into the same code and reserve 3 for our bugs.
EXIT_OK = 0
EXIT_USER_ERROR = 2
EXIT_INTERNAL_ERROR = 3
#: One or more sweep cells exhausted their retry budget (crash/timeout/
#: lease-expiry): the run finished but its results are incomplete.
EXIT_EXHAUSTED = 4

_HARNESSES: Dict[str, Callable] = {
    "table1": lambda settings: run_table1(),
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig_faults": run_faults,
    "chaos": run_chaos,
    "seeds": run_seeds,
    "verify": run_verify,
}


def main(argv=None) -> int:
    """CLI entry point: parse arguments, run harnesses, print reports."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_HARNESSES) + ["all", "trace"],
        help="which artifact to regenerate ('trace <fig>' re-runs one "
        "harness with structured tracing on)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="the harness to trace (only with the 'trace' subcommand)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="fraction of the paper's task/iteration counts (default 0.05; "
        "1.0 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the simulation sweeps "
        "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result-cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="variance-aware replication: re-run each sweep cell over "
        "derived seeds until its scalar metrics' relative CI is below "
        "--ci (see docs/performance.md)",
    )
    parser.add_argument(
        "--ci",
        type=float,
        default=0.02,
        metavar="FRAC",
        help="adaptive target: relative 95%% CI half-width per cell "
        "(default 0.02 = ±2%%)",
    )
    parser.add_argument(
        "--min-seeds",
        type=int,
        default=3,
        help="adaptive: replicates every cell gets before the CI rule "
        "applies (default 3)",
    )
    parser.add_argument(
        "--max-seeds",
        type=int,
        default=12,
        help="adaptive: hard per-cell replicate budget (default 12)",
    )
    parser.add_argument(
        "--batch-runs",
        default="auto",
        metavar="{auto,off,N}",
        help="batched replicate execution under --adaptive: 'auto' packs "
        "each round's same-cell replicates into one batched run, 'off' "
        "forces scalar runs, N caps batch width (default auto; no effect "
        "without --adaptive — see docs/performance.md)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record structured traces for every run (implies --trace-out "
        "traces/ unless given; traced runs bypass the result cache)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="trace export directory (Chrome JSON + JSONL + manifest per "
        "sweep; implies --trace)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="live terminal dashboard on stderr while sweeps run (implies "
        "telemetry recording; see docs/observability.md)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="write a standalone HTML telemetry report (report.html, with "
        "sparklines) next to each sweep's manifest after the run",
    )
    parser.add_argument(
        "--report-out",
        default=None,
        metavar="DIR",
        help="telemetry artifact directory (metrics.jsonl, metrics.prom, "
        "manifest.json, report.html under DIR/<sweep>/; default "
        "telemetry/; implies --report)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock budget; a run past it is killed and "
        "retried (default: unlimited)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="attempts per run for worker crashes/timeouts before the "
        "cell is recorded as failed (default 2)",
    )
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="ADDR",
        help="execute sweeps over the cluster backend instead of the "
        "local pool: 'inproc' (self-contained), or an 'inproc://name' / "
        "'tcp://host:port' address where remote workers (python -m "
        "repro.cluster.worker --connect ADDR) join (see docs/cluster.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay cells completed by a previously interrupted sweep "
        "from its checkpoint instead of recomputing them",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile each harness (cProfile + per-phase wall-clock "
        "accounting; forces --jobs 1 and bypasses the result cache; "
        "writes phases.json / profile.collapsed / profile.pstats under "
        "--profile-out)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="DIR",
        help="profile artifact directory (default profiles/<experiment>/; "
        "implies --profile)",
    )
    args = parser.parse_args(argv)
    if args.profile_out:
        args.profile = True
    if args.report_out:
        args.report = True

    if args.experiment == "trace":
        if args.target not in _HARNESSES:
            parser.error(
                "trace needs a harness to re-run, e.g. 'trace fig4' "
                f"(choose from {', '.join(sorted(_HARNESSES))})"
            )
        args.trace = True
        names = [args.target]
    elif args.target is not None:
        parser.error("a target is only valid with the 'trace' subcommand")
    elif args.experiment == "all":
        # "verify" re-runs every harness and "chaos" is the CI smoke
        # (a strict subset of fig_faults); keep both separate commands.
        names = sorted(n for n in _HARNESSES if n not in ("verify", "chaos"))
    else:
        names = [args.experiment]
    trace_out = args.trace_out if args.trace_out else (
        "traces" if args.trace else None
    )

    if args.profile:
        # Phase accounting lives in the parent process, so profiled runs
        # are single-process; cached results would hide the work we want
        # to measure.
        jobs = 1
        use_cache = False
    else:
        jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
        use_cache = not args.no_cache
    try:
        settings = ExperimentSettings(
            scale=args.scale,
            seed=args.seed,
            jobs=jobs,
            cache_dir=args.cache_dir,
            use_cache=use_cache,
            trace_out=trace_out,
            adaptive=args.adaptive,
            ci=args.ci,
            min_seeds=args.min_seeds,
            max_seeds=args.max_seeds,
            run_timeout=args.run_timeout,
            max_attempts=args.max_attempts,
            resume=args.resume,
            cluster=args.cluster,
            batch_runs=args.batch_runs,
            watch=args.watch,
            report=args.report,
            telemetry_out=args.report_out,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USER_ERROR
    pop_stats()  # drop anything accumulated before this invocation
    total_exhausted = 0
    for name in names:
        start = time.perf_counter()
        try:
            if args.profile:
                from repro.profile import Profiler

                result, report = Profiler().run(
                    _HARNESSES[name], settings, label=name
                )
                print(report.render())
                out_dir = args.profile_out or os.path.join("profiles", name)
                paths = report.write(out_dir)
                print(f"[profile artifacts under {out_dir}/: "
                      f"{', '.join(sorted(os.path.basename(p) for p in paths.values()))}]")
            else:
                result = _HARNESSES[name](settings)
        except ConfigurationError as exc:
            # A bad knob combination the settings check couldn't see
            # (e.g. a harness rejecting a flag): the user's to fix.
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USER_ERROR
        except KeyboardInterrupt:
            print(
                f"\ninterrupted during {name}; re-run with --resume to "
                "pick up completed cells",
                file=sys.stderr,
            )
            raise
        except Exception:
            # Anything else is our bug, not the user's: say so loudly
            # and exit with a distinct code for scripts/CI.
            traceback.print_exc()
            print(
                f"internal error while regenerating {name} — this is a "
                "bug in the harness, please report it",
                file=sys.stderr,
            )
            return EXIT_INTERNAL_ERROR
        elapsed = time.perf_counter() - start
        print(result.report())
        stats = pop_stats()
        hits = sum(s.hits for s in stats)
        unique = sum(s.unique for s in stats)
        cache_note = (
            f", cache {hits}/{unique} hits" if unique and not args.no_cache
            else ""
        )
        failures = sum(s.failures for s in stats)
        failure_note = f", {failures} runs FAILED" if failures else ""
        exhausted = sum(s.exhausted for s in stats)
        total_exhausted += exhausted
        exhausted_note = (
            f" ({exhausted} exhausted their retry budget)" if exhausted
            else ""
        )
        print(
            f"[{name} regenerated in {elapsed:.1f}s wall"
            f"{cache_note}{failure_note}{exhausted_note}]"
        )
        if trace_out:
            print(
                f"[traces + manifests under {trace_out}/<sweep>/ — open the "
                ".chrome.json files in Perfetto]"
            )
        if settings.telemetry_enabled:
            tele_root = settings.telemetry_out or trace_out or "telemetry"
            artifacts = "metrics.jsonl, metrics.prom, manifest.json"
            if settings.report:
                artifacts += ", report.html"
            print(f"[telemetry under {tele_root}/<sweep>/: {artifacts}]")
        print()
    if total_exhausted:
        print(
            f"error: {total_exhausted} run(s) exhausted their retry "
            "budget — results are incomplete (re-run, or --resume to "
            "keep completed cells)",
            file=sys.stderr,
        )
        return EXIT_EXHAUSTED
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
