"""Fig. 4 — throughput under co-running interference (paper §5.1).

For each synthetic kernel (matmul, copy, stencil) and each DAG parallelism
in 2..6, run all seven schedulers on the TX2 model with the co-runner
pinned to Denver core 0 for the whole execution, and report throughput in
tasks/second.  Also derives the §5.1 headline ratios (DAM-C vs RWS / FA /
FAM-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.apps.synthetic import PAPER_TASK_COUNTS
from repro.experiments.common import (
    ExperimentSettings,
    PARALLELISMS,
    TX2_SCHEDULERS,
    speedup,
    sweep,
)
from repro.sweep import RunSpec
from repro.util.tables import format_table


@dataclass
class Fig4Result:
    """throughput[kernel][scheduler][parallelism] in tasks/s."""

    throughput: Dict[str, Dict[str, Dict[int, float]]] = field(default_factory=dict)
    parallelisms: Tuple[int, ...] = PARALLELISMS
    schedulers: Tuple[str, ...] = TX2_SCHEDULERS

    def headline_ratios(self, kernel: str = "matmul") -> Dict[str, float]:
        """Max over parallelism of DAM-C throughput ratios (paper §5.1).

        Bases that were not part of the run are skipped.
        """
        data = self.throughput[kernel]
        out: Dict[str, float] = {}
        if "dam-c" not in data:
            return out
        for base in ("rws", "fa", "fam-c"):
            if base in data:
                out[f"dam-c/{base}"] = max(
                    speedup(data["dam-c"][p], data[base][p])
                    for p in self.parallelisms
                )
        return out

    def report(self) -> str:
        blocks: List[str] = []
        for kernel, by_sched in self.throughput.items():
            rows = []
            for sched in self.schedulers:
                rows.append(
                    [sched.upper()]
                    + [by_sched[sched][p] for p in self.parallelisms]
                )
            blocks.append(
                format_table(
                    ["Scheduler"] + [f"P={p}" for p in self.parallelisms],
                    rows,
                    title=f"Fig 4 ({kernel}): throughput [tasks/s] under "
                    "co-runner on Denver core 0",
                )
            )
        ratios = self.headline_ratios()
        blocks.append(
            "Headline (matmul): "
            + "  ".join(f"{k}={v:.2f}x" for k, v in ratios.items())
            + "   [paper: dam-c/rws<=3.5x, dam-c/fa<=1.90x, dam-c/fam-c<=1.85x]"
        )
        return "\n\n".join(blocks)


def _fig4_scenario(kernel: str, live: bool) -> Dict:
    if not live:
        return {"name": "tx2_corunner", "kernel": kernel}
    # A genuinely executing co-runner chain (see repro.interference.live):
    # a matmul chain for CPU interference, a copy chain for memory
    # interference — exactly the paper's §5.1 setup.
    return {
        "name": "live_corunner",
        "core": 0,
        "kernel": "copy" if kernel == "copy" else "matmul",
    }


def fig4_spec(
    settings: ExperimentSettings,
    kernel: str,
    parallelism: int,
    scheduler: str,
    live_corunner: bool = False,
) -> RunSpec:
    """The spec of one Fig. 4 cell (also reused by the seed sweep)."""
    total = settings.task_count(PAPER_TASK_COUNTS[kernel], parallelism)
    return RunSpec(
        kind="single",
        params={
            "workload": {
                "name": "layered",
                "kernel": kernel,
                "parallelism": parallelism,
                "total": total,
            },
            "machine": "jetson_tx2",
            "scheduler": scheduler,
            "scenario": _fig4_scenario(kernel, live_corunner),
        },
        seed=settings.seed,
        metrics=("throughput",),
        tags={"kernel": kernel, "parallelism": parallelism,
              "scheduler": scheduler},
    )


def run_fig4(
    settings: ExperimentSettings = ExperimentSettings(),
    kernels: Sequence[str] = ("matmul", "copy", "stencil"),
    parallelisms: Sequence[int] = PARALLELISMS,
    schedulers: Sequence[str] = TX2_SCHEDULERS,
    live_corunner: bool = False,
) -> Fig4Result:
    """Regenerate Fig. 4(a-c).

    ``live_corunner=True`` replaces the modelled co-runner with an actual
    second application (a pinned task chain) executing through the shared
    speed model.
    """
    result = Fig4Result(
        throughput={k: {s: {} for s in schedulers} for k in kernels},
        parallelisms=tuple(parallelisms),
        schedulers=tuple(schedulers),
    )
    specs = [
        fig4_spec(settings, kernel, parallelism, sched, live_corunner)
        for kernel in kernels
        for parallelism in parallelisms
        for sched in schedulers
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "fig4")):
        tags = spec.tags
        result.throughput[tags["kernel"]][tags["scheduler"]][
            tags["parallelism"]
        ] = metrics["throughput"]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig4().report())
