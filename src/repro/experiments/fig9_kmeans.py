"""Fig. 9 — K-means under co-runner interference on a 16-core Haswell (§5.4).

RWS, DAM-C and DAM-P run the dynamic K-means DAG for 100 iterations; a
co-runner occupies socket 0 between iterations 20 and 70 (activated /
deactivated by iteration hooks, mirroring the paper's "starts a few
iterations after the start ... window for training").  Reports
per-iteration times (Fig. 9a) and cumulative execution-place counts inside
the window for RWS and DAM-P (Fig. 9b-c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import ExperimentSettings, sweep
from repro.machine.topology import ExecutionPlace
from repro.sweep import RunSpec, data_to_place
from repro.util.tables import format_table

FIG9_SCHEDULERS: Tuple[str, ...] = ("rws", "dam-c", "dam-p")


@dataclass
class Fig9Result:
    """Per-scheduler iteration series and in-window place counts."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    window: Tuple[int, int] = (20, 70)
    place_counts: Dict[str, Dict[ExecutionPlace, int]] = field(default_factory=dict)

    def mean_iteration_time(
        self, scheduler: str, inside_window: bool
    ) -> float:
        """Mean per-iteration time inside the (trimmed) interference
        window, or before it starts."""
        lo, hi = self.window
        if inside_window:
            keep = lambda it: lo + 5 <= it < hi - 5
        else:
            keep = lambda it: it < lo
        values = [t for it, t in self.series[scheduler] if keep(it)]
        return sum(values) / len(values)

    def report(self) -> str:
        rows = []
        for sched in self.series:
            rows.append(
                [
                    sched.upper(),
                    self.mean_iteration_time(sched, inside_window=False),
                    self.mean_iteration_time(sched, inside_window=True),
                ]
            )
        table = format_table(
            ["Scheduler", "Mean iter time before window [s]",
             "Mean iter time inside window [s]"],
            rows,
            title=f"Fig 9a: K-means iteration time, co-runner on socket 0 "
            f"during iterations {self.window[0]}-{self.window[1]}",
        )
        from repro.util.charts import series_panel

        panel = series_panel(
            {
                sched.upper(): [t for _i, t in sorted(series)]
                for sched, series in self.series.items()
            },
            title="Per-iteration times (sparkline over iterations):",
        )
        blocks = [table, panel]
        for sched in ("rws", "dam-p"):
            if sched not in self.place_counts:
                continue
            top = sorted(
                self.place_counts[sched].items(), key=lambda kv: -kv[1]
            )[:6]
            blocks.append(
                f"Fig 9{'b' if sched == 'rws' else 'c'} ({sched.upper()}): "
                "in-window task counts by place: "
                + "  ".join(f"{p}:{n}" for p, n in top)
            )
        return "\n\n".join(blocks)


def run_fig9(
    settings: ExperimentSettings = ExperimentSettings(),
    schedulers: Sequence[str] = FIG9_SCHEDULERS,
    iterations: int = 100,
    window: Tuple[int, int] = (20, 70),
) -> Fig9Result:
    """Regenerate Fig. 9(a-c)."""
    result = Fig9Result(window=window)
    specs = [
        RunSpec(
            kind="kmeans_window",
            params={
                "machine": "haswell16",
                "scheduler": sched,
                "iterations": iterations,
                "window": list(window),
            },
            seed=settings.seed,
            tags={"scheduler": sched},
        )
        for sched in schedulers
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "fig9")):
        sched = spec.tags["scheduler"]
        result.series[sched] = [
            (int(it), t) for it, t in metrics["iteration_series"]
        ]
        result.place_counts[sched] = {
            data_to_place(place): int(count)
            for place, count in metrics["window_place_counts"]
        }
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig9().report())
