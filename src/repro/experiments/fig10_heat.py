"""Fig. 10 — distributed 2D heat on a 4-node Haswell cluster (§5.4).

Each node is a dual-socket 10-core Haswell; the interfering matmul kernel
occupies 5 cores of node 0's socket 0 for the whole run.  MPI boundary
exchanges are high-priority communication tasks.  Reports throughput per
scheduler and the §5.4 headline ratios (DAM-C vs RWS and RWSM-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.experiments.common import (
    ExperimentSettings,
    HASWELL_SCHEDULERS,
    speedup,
    sweep,
)
from repro.sweep import RunSpec


@dataclass
class Fig10Result:
    """throughput[scheduler] in tasks/s over the whole cluster."""

    throughput: Dict[str, float] = field(default_factory=dict)

    def headline_ratios(self) -> Dict[str, float]:
        return {
            "dam-c/rws": speedup(self.throughput["dam-c"], self.throughput["rws"]),
            "dam-c/rwsm-c": speedup(
                self.throughput["dam-c"], self.throughput["rwsm-c"]
            ),
        }

    def report(self) -> str:
        from repro.util.charts import bar_chart

        chart = bar_chart(
            [s.upper() for s in self.throughput],
            list(self.throughput.values()),
            title="Fig 10: distributed 2D heat throughput [tasks/s], "
            "4 Haswell nodes, interference on 5 cores of node 0 socket 0",
        )
        ratios = self.headline_ratios()
        return (
            chart
            + "\nHeadline: "
            + "  ".join(f"{k}={v:.2f}x" for k, v in ratios.items())
            + "   [paper: dam-c/rws=1.76x, dam-c/rwsm-c=1.17x]"
        )


def run_fig10(
    settings: ExperimentSettings = ExperimentSettings(),
    schedulers: Sequence[str] = HASWELL_SCHEDULERS,
    nodes: int = 4,
    iterations: int = 30,
) -> Fig10Result:
    """Regenerate Fig. 10."""
    result = Fig10Result()
    specs = [
        RunSpec(
            kind="heat_cluster",
            params={
                "machine": "haswell_node",
                "scheduler": sched,
                "nodes": nodes,
                "iterations": iterations,
                "corunner": {
                    "node": 0,
                    "cores": [0, 1, 2, 3, 4],
                    "cpu_share": 0.5,
                    "memory_demand": 2.0,
                },
            },
            seed=settings.seed,
            tags={"scheduler": sched},
        )
        for sched in schedulers
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "fig10")):
        result.throughput[spec.tags["scheduler"]] = metrics["throughput"]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig10().report())
