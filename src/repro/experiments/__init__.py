"""Experiment harnesses: one module per paper table/figure.

Every harness returns a structured result object and can print a
paper-style report.  Run them from the command line::

    python -m repro.experiments table1
    python -m repro.experiments fig4 --scale 0.05
    python -m repro.experiments all

Scaling: the paper's runs use 10000-32000 tasks and 5 s DVFS half-periods;
the harness defaults shrink both proportionally (fewer tasks, shorter
periods) so a full figure regenerates in seconds.  Throughput — tasks per
second of *simulated* time — is insensitive to the total task count once
the PTT has trained, so scaled runs preserve the figures' shapes; pass
``--scale 1.0`` for paper-scale runs.
"""

from repro.experiments.common import ExperimentSettings
from repro.experiments.table1_features import run_table1
from repro.experiments.fig4_corunner import run_fig4
from repro.experiments.fig5_distribution import run_fig5
from repro.experiments.fig6_worktime import run_fig6
from repro.experiments.fig7_dvfs import run_fig7
from repro.experiments.fig8_sensitivity import run_fig8
from repro.experiments.fig9_kmeans import run_fig9
from repro.experiments.fig10_heat import run_fig10

__all__ = [
    "ExperimentSettings",
    "run_table1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
]
