"""Fig. 7 — throughput under DVFS interference (§5.2).

The Denver cluster alternates between its highest and lowest frequency
(square wave; the paper uses 5 s + 5 s, scaled here with the workload so
every run covers several full cycles).  Derives the §5.2 headline numbers:
DAM-C vs RWS / RWSM-C / FA / FAM-C averaged over parallelism for the copy
kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import (
    ExperimentSettings,
    PARALLELISMS,
    TX2_SCHEDULERS,
    speedup,
    sweep,
)
from repro.sweep import RunSpec
from repro.util.stats import geometric_mean
from repro.util.tables import format_table


@dataclass
class Fig7Result:
    """throughput[kernel][scheduler][parallelism] under DVFS."""

    throughput: Dict[str, Dict[str, Dict[int, float]]] = field(default_factory=dict)
    parallelisms: Tuple[int, ...] = PARALLELISMS
    schedulers: Tuple[str, ...] = TX2_SCHEDULERS

    def headline_ratios(self, kernel: str = "copy") -> Dict[str, float]:
        """Geomean over parallelism of DAM-C throughput ratios (paper §5.2).

        Bases that were not part of the run are skipped.
        """
        data = self.throughput.get(kernel, {})
        out: Dict[str, float] = {}
        if "dam-c" not in data:
            return out
        for base in ("rws", "rwsm-c", "fa", "fam-c"):
            if base in data:
                out[f"dam-c/{base}"] = geometric_mean(
                    [
                        speedup(data["dam-c"][p], data[base][p])
                        for p in self.parallelisms
                    ]
                )
        return out

    def report(self) -> str:
        blocks: List[str] = []
        for kernel, by_sched in self.throughput.items():
            rows = [
                [s.upper()] + [by_sched[s][p] for p in self.parallelisms]
                for s in self.schedulers
            ]
            blocks.append(
                format_table(
                    ["Scheduler"] + [f"P={p}" for p in self.parallelisms],
                    rows,
                    title=f"Fig 7 ({kernel}): throughput [tasks/s] under "
                    "Denver DVFS square wave",
                )
            )
        ratios = self.headline_ratios()
        blocks.append(
            "Headline (copy, geomean over P): "
            + "  ".join(f"{k}={v:.2f}x" for k, v in ratios.items())
            + "   [paper: dam-c/rws~2.2x, dam-c/rwsm-c~1.9x, "
            "dam-c/fa~1.17x, dam-c/fam-c~1.12x]"
        )
        return "\n\n".join(blocks)


def run_fig7(
    settings: ExperimentSettings = ExperimentSettings(),
    kernels: Sequence[str] = ("matmul", "copy", "stencil"),
    parallelisms: Sequence[int] = PARALLELISMS,
    schedulers: Sequence[str] = TX2_SCHEDULERS,
) -> Fig7Result:
    """Regenerate Fig. 7(a-c)."""
    result = Fig7Result(
        throughput={k: {s: {} for s in schedulers} for k in kernels},
        parallelisms=tuple(parallelisms),
        schedulers=tuple(schedulers),
    )
    wave = settings.dvfs_wave()
    scenario = {
        "name": "dvfs",
        "cores": [0, 1],
        "high_scale": wave.high_scale,
        "low_scale": wave.low_scale,
        "half_period": wave.half_period,
    }
    specs = [
        RunSpec(
            kind="single",
            params={
                "workload": {
                    "name": "layered",
                    "kernel": kernel,
                    "parallelism": parallelism,
                    "total": settings.dvfs_task_count(kernel, parallelism),
                },
                "machine": "jetson_tx2",
                "scheduler": sched,
                "scenario": scenario,
            },
            seed=settings.seed,
            metrics=("throughput",),
            tags={"kernel": kernel, "parallelism": parallelism,
                  "scheduler": sched},
        )
        for kernel in kernels
        for parallelism in parallelisms
        for sched in schedulers
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "fig7")):
        tags = spec.tags
        result.throughput[tags["kernel"]][tags["scheduler"]][
            tags["parallelism"]
        ] = metrics["throughput"]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig7().report())
