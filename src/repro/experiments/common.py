"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.policies.base import SchedulerPolicy
from repro.core.policies.registry import make_scheduler
from repro.errors import ConfigurationError
from repro.graph.dag import TaskGraph
from repro.interference.base import InterferenceScenario
from repro.interference.corunner import CorunnerInterference
from repro.interference.dvfs_events import DvfsInterference
from repro.machine.dvfs import PeriodicSquareWave
from repro.machine.topology import Machine
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import RunResult, SimulatedRuntime
from repro.machine.speed import SpeedModel
from repro.sim.environment import Environment

#: The paper's Table 1 evaluation order on the TX2.
TX2_SCHEDULERS: Tuple[str, ...] = (
    "rws", "rwsm-c", "fa", "fam-c", "da", "dam-c", "dam-p",
)

#: Schedulers evaluated on the symmetric Haswell platforms (§5.4 drops the
#: fixed-asymmetry pair because there is no static asymmetry to exploit).
HASWELL_SCHEDULERS: Tuple[str, ...] = (
    "rws", "rwsm-c", "da", "dam-c", "dam-p",
)

#: DAG parallelism sweep of Figs. 4 and 7.
PARALLELISMS: Tuple[int, ...] = (2, 3, 4, 5, 6)


@dataclass(frozen=True)
class ExperimentSettings:
    """Global scaling knobs shared by the harnesses.

    ``scale`` multiplies the paper's task counts / iteration counts;
    DVFS periods shrink by the same factor so every run still covers
    several full cycles.  ``seed`` feeds all stochastic elements.

    ``jobs``, ``cache_dir`` and ``use_cache`` configure the sweep engine
    every harness executes through (see :mod:`repro.sweep`): worker
    process count, result-cache directory, and whether cached results are
    reused at all.  The defaults — serial and uncached — keep direct
    harness calls (tests, notebooks) hermetic; the CLI turns both on.

    ``trace_out`` turns on structured tracing (see :mod:`repro.trace`):
    every run of every sweep exports Chrome-trace JSON + JSONL into
    ``<trace_out>/<label>/`` alongside a ``manifest.json``.  Traced runs
    bypass the result cache.

    ``adaptive`` switches every sweep to variance-aware replication (see
    :mod:`repro.sweep.adaptive`): each cell is re-run over derived seeds
    until the relative CI of its scalar metrics drops below ``ci``,
    bounded by ``min_seeds``/``max_seeds``.  Off by default — the plain
    path is bit-identical to a non-adaptive build.

    ``run_timeout``/``max_attempts`` bound each simulation run's
    wall-clock time and its retry budget after worker crashes or
    timeouts (see ``docs/robustness.md``); ``resume`` replays completed
    cells from the per-figure checkpoint instead of recomputing them
    after an interrupted sweep.

    ``cluster`` routes every sweep through the coordinator/worker
    cluster backend instead of the local pool (see ``docs/cluster.md``):
    ``"inproc"`` is self-contained, while an ``inproc://name`` or
    ``tcp://host:port`` address waits for external workers to join.
    Caching, checkpoints and retry budgets behave identically; results
    are bit-identical to a local run.

    ``batch_runs`` controls batched replicate execution under
    ``adaptive`` (see ``docs/performance.md``): ``"auto"`` packs each
    adaptive round's same-cell replicates into one batched run with no
    width cap, ``"off"`` forces the scalar path, and an integer string
    caps the batch width.  It only takes effect when ``adaptive`` is on
    — the plain path never replicates, so there is nothing to batch.

    ``watch``/``report``/``telemetry_out`` turn on live sweep telemetry
    (see :mod:`repro.telemetry` and ``docs/observability.md``): metrics
    counters, worker heartbeats, ``metrics.jsonl`` + ``metrics.prom``
    next to each sweep's ``manifest.json`` under
    ``<telemetry_out>/<label>/`` (default ``telemetry/``), plus the
    ``--watch`` terminal dashboard and/or the post-run ``report.html``.
    All off by default — results are bit-identical either way.
    """

    scale: float = 0.05
    seed: int = 0
    jobs: int = 1
    cache_dir: Optional[str] = None
    use_cache: bool = False
    trace_out: Optional[str] = None
    adaptive: bool = False
    ci: float = 0.02
    min_seeds: int = 3
    max_seeds: int = 12
    run_timeout: Optional[float] = None
    max_attempts: int = 2
    resume: bool = False
    cluster: Optional[str] = None
    batch_runs: str = "auto"
    watch: bool = False
    report: bool = False
    telemetry_out: Optional[str] = None

    def __post_init__(self) -> None:
        if not (0 < self.scale <= 1.0):
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch_runs not in ("auto", "off"):
            try:
                width = int(self.batch_runs)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    "batch_runs must be 'auto', 'off' or a positive "
                    f"integer, got {self.batch_runs!r}"
                ) from None
            if width < 1:
                raise ConfigurationError(
                    f"batch_runs must be >= 1, got {self.batch_runs!r}"
                )
        if self.adaptive and self.trace_out:
            raise ConfigurationError(
                "adaptive replication and tracing are mutually exclusive "
                "(a trace captures one concrete run, not a seed average)"
            )
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ConfigurationError(
                f"run_timeout must be > 0 or None, got {self.run_timeout}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.cluster is not None and (
            self.cluster != "inproc" and "://" not in self.cluster
        ):
            raise ConfigurationError(
                "cluster must be 'inproc' or a connector address like "
                f"'tcp://host:port', got {self.cluster!r}"
            )

    @property
    def telemetry_enabled(self) -> bool:
        """Whether sweeps run with live telemetry recording on."""
        return self.watch or self.report or self.telemetry_out is not None

    def adaptive_policy(self):
        """The :class:`~repro.sweep.adaptive.AdaptivePolicy` in force.

        ``None`` when adaptive replication is off — the sweep funnel
        routes through the plain (bit-identical) path.
        """
        if not self.adaptive:
            return None
        from repro.sweep import AdaptivePolicy

        return AdaptivePolicy(
            ci=self.ci, min_seeds=self.min_seeds, max_seeds=self.max_seeds
        )

    def task_count(self, paper_total: int, parallelism: int) -> int:
        return max(parallelism * 10, int(paper_total * self.scale))

    def dvfs_wave(self) -> PeriodicSquareWave:
        """The §5.2 square wave, period scaled with the workload.

        The half-period never drops below 0.5 s: each phase must stay long
        relative to task durations (milliseconds) and the PTT's adaptation
        horizon (a handful of samples), as in the paper's 5 s phases.
        """
        return PeriodicSquareWave(
            high_scale=1.0,
            low_scale=345.0 / 2035.0,
            half_period=max(0.5, 5.0 * self.scale),
        )

    def dvfs_task_count(self, kernel: str, parallelism: int) -> int:
        """Task count for the DVFS sweep: scaled, but floored so the run
        spans at least ~2 full DVFS periods at typical throughputs."""
        floors = {"matmul": 6000, "copy": 3000, "stencil": 2000}
        from repro.apps.synthetic import PAPER_TASK_COUNTS

        return max(
            floors.get(kernel, 3000),
            self.task_count(PAPER_TASK_COUNTS[kernel], parallelism),
        )

    def iterations(self, paper_iterations: int) -> int:
        return max(10, int(paper_iterations * max(self.scale, 10 / paper_iterations)))


def run_one(
    graph: TaskGraph,
    machine: Machine,
    scheduler: str | SchedulerPolicy,
    scenario: Optional[InterferenceScenario] = None,
    config: Optional[RuntimeConfig] = None,
    seed: int = 0,
    scheduler_kwargs: Optional[Dict] = None,
) -> RunResult:
    """Wire and execute a single simulation run."""
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler, **(scheduler_kwargs or {}))
    env = Environment()
    speed = SpeedModel(env, machine)
    if scenario is not None:
        scenario.install(env, speed, machine)
    runtime = SimulatedRuntime(
        env, machine, graph, scheduler, config=config, speed=speed, seed=seed
    )
    return runtime.run()


def _spec_trace_label(spec, index: int) -> str:
    """Unique, human-readable file stem for one traced spec."""
    parts = [str(spec.tags[k]) for k in sorted(spec.tags)]
    suffix = "-".join(parts) if parts else spec.kind
    return f"{index:03d}-{suffix}"


def sweep(specs, settings: ExperimentSettings, label: str):
    """Execute a harness's :class:`~repro.sweep.spec.RunSpec` list.

    All figure harnesses funnel through here so one settings object
    controls parallelism and caching everywhere.  Returns one metrics
    dict per spec, in order.  Progress lines are suppressed for plain
    serial, uncached runs (the test/notebook default).

    When ``settings.trace_out`` is set, every spec gains a ``trace``
    params entry routing its event stream to
    ``<trace_out>/<label>/<index>-<tags>.{chrome.json,jsonl}`` and the
    sweep writes a run manifest next to the exports.

    With telemetry on (``settings.watch`` / ``settings.report`` /
    ``settings.telemetry_out``) the sweep additionally records live
    metrics and worker heartbeats, writes ``metrics.jsonl`` +
    ``metrics.prom`` + ``manifest.json`` under
    ``<telemetry_out>/<label>/``, and — for ``report`` — renders
    ``report.html`` there after the run.
    """
    import os.path
    from dataclasses import replace

    from repro.sweep import SweepRunner

    manifest_dir = None
    if settings.trace_out:
        out_dir = os.path.join(settings.trace_out, label)
        manifest_dir = out_dir
        specs = [
            replace(
                spec,
                params={
                    **dict(spec.params),
                    "trace": {
                        "out_dir": out_dir,
                        "label": _spec_trace_label(spec, i),
                    },
                },
            )
            for i, spec in enumerate(specs)
        ]
    telemetry = None
    if settings.telemetry_enabled:
        from repro.telemetry import Telemetry

        if manifest_dir is None:
            manifest_dir = os.path.join(
                settings.telemetry_out or "telemetry", label
            )
        telemetry = Telemetry(label=label, enabled=True, out_dir=manifest_dir)
    runner = SweepRunner(
        jobs=settings.jobs,
        cache_dir=settings.cache_dir,
        use_cache=settings.use_cache,
        label=label,
        progress=settings.jobs > 1 or settings.use_cache
        or settings.telemetry_enabled,
        manifest_dir=manifest_dir,
        timeout=settings.run_timeout,
        max_attempts=settings.max_attempts,
        resume=settings.resume,
        cluster=settings.cluster,
        batch_runs=settings.batch_runs,
        telemetry=telemetry,
        watch=settings.watch,
    )
    try:
        results = runner.run_adaptive(specs, settings.adaptive_policy())
    finally:
        runner.close()
    if settings.report and manifest_dir is not None:
        from repro.telemetry.report import write_report

        path = write_report(manifest_dir, title=label)
        runner._log(f"report written to {path}")
    return results


def tx2_corunner(kernel_name: str) -> CorunnerInterference:
    """The §5.1 co-runner on Denver core 0: CPU-interfering matmul chain
    for matmul/stencil DAGs, memory-interfering copy chain for copy."""
    if kernel_name == "copy":
        return CorunnerInterference.copy_chain([0])
    return CorunnerInterference.matmul_chain([0])


def tx2_dvfs(settings: ExperimentSettings) -> DvfsInterference:
    """The §5.2 DVFS scenario on the Denver cluster."""
    return DvfsInterference(cores=(0, 1), wave=settings.dvfs_wave())


def speedup(numerator: float, denominator: float) -> float:
    """Throughput ratio with a guard against non-positive baselines."""
    if denominator <= 0:
        raise ConfigurationError("cannot compute speedup over non-positive base")
    return numerator / denominator
