"""fig_faults — scheduler robustness under crashes and stragglers.

Not a paper figure: the paper's environments are *dynamically
asymmetric* but never actually lose cores.  This harness pushes each
Table 1 scheduler past that boundary — a permanent Denver-core crash at
30% of its own fault-free makespan plus a straggler window on two A57
cores — and reports the makespan degradation together with the runtime's
recovery bookkeeping (workers lost, tasks retried/recovered, detection
latency).  See ``docs/robustness.md`` for the fault model.

Two phases: the fault-free baseline sweep first, because each
scheduler's crash time is derived from *its own* baseline makespan (a
fixed absolute time would hit fast schedulers after they already
finished).  Crash times are rounded so the derived specs stay
cache-stable.

``run_chaos`` is the CI chaos-smoke variant: one scheduler, a tiny DAG,
a transient crash — it *asserts* that at least one task was recovered
and that every task completed exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.apps.synthetic import PAPER_TASK_COUNTS
from repro.errors import RuntimeStateError
from repro.experiments.common import ExperimentSettings, TX2_SCHEDULERS, sweep
from repro.sweep import RunSpec, is_error_result
from repro.util.tables import format_table

#: Fraction of the fault-free makespan at which the crash lands.
CRASH_FRACTION = 0.3

#: The crashed core: Denver core 1 (core 0 hosts co-runners elsewhere).
CRASH_CORE = 1

#: Straggler window: two A57 cores at half speed mid-run.
STRAGGLER_CORES = (4, 5)
STRAGGLER_SLOWDOWN = 0.5


@dataclass
class FigFaultsResult:
    """Per-scheduler baseline vs faulted makespan plus recovery stats."""

    baseline: Dict[str, float] = field(default_factory=dict)
    faulted: Dict[str, Dict[str, float]] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    schedulers: Sequence[str] = TX2_SCHEDULERS

    def degradation(self, sched: str) -> float:
        return self.faulted[sched]["makespan"] / self.baseline[sched]

    def report(self) -> str:
        rows: List[List] = []
        for sched in self.schedulers:
            if sched in self.failed:
                rows.append([sched.upper(), "failed:", self.failed[sched],
                             "", "", "", ""])
                continue
            stats = self.faulted[sched]
            rows.append([
                sched.upper(),
                self.baseline[sched],
                stats["makespan"],
                f"{self.degradation(sched):.2f}x",
                int(stats["workers_lost"]),
                int(stats["tasks_retried"]),
                stats["recovery_latency"],
            ])
        table = format_table(
            ["Scheduler", "Clean [s]", "Faulted [s]", "Degradation",
             "Lost", "Retried", "Detect [s]"],
            rows,
            title=f"fig_faults: permanent crash of core {CRASH_CORE} at "
            f"{CRASH_FRACTION:.0%} of each scheduler's clean makespan "
            f"+ {STRAGGLER_SLOWDOWN:g}x straggler on cores "
            f"{list(STRAGGLER_CORES)}",
        )
        note = (
            "Every faulted run still completes its full DAG: the lease "
            "detector reclaims the dead core's queues and retries its "
            "in-flight tasks elsewhere (exactly-once commit)."
        )
        return table + "\n" + note


def _workload(settings: ExperimentSettings, parallelism: int = 4) -> Dict:
    total = settings.task_count(PAPER_TASK_COUNTS["matmul"], parallelism)
    return {
        "name": "layered",
        "kernel": "matmul",
        "parallelism": parallelism,
        "total": total,
    }


def baseline_spec(settings: ExperimentSettings, scheduler: str) -> RunSpec:
    """The scheduler's fault-free run (sets its crash schedule)."""
    return RunSpec(
        kind="single",
        params={
            "workload": _workload(settings),
            "machine": "jetson_tx2",
            "scheduler": scheduler,
            "scenario": None,
        },
        seed=settings.seed,
        metrics=("makespan", "tasks_completed"),
        tags={"scheduler": scheduler, "phase": "baseline"},
    )


def fault_plan_params(clean_makespan: float) -> Dict:
    """The declarative fault plan derived from a clean makespan.

    Times are rounded to microseconds so the spec (and thus its cache
    key) is stable against float noise in the baseline.
    """
    crash_at = round(CRASH_FRACTION * clean_makespan, 6)
    straggle_at = round(0.45 * clean_makespan, 6)
    straggle_for = round(0.35 * clean_makespan, 6)
    return {
        "crashes": [[CRASH_CORE, crash_at, None]],
        "stragglers": [
            [list(STRAGGLER_CORES), straggle_at, straggle_for,
             STRAGGLER_SLOWDOWN]
        ],
    }


def faulted_spec(
    settings: ExperimentSettings, scheduler: str, clean_makespan: float
) -> RunSpec:
    """The same run under the crash + straggler plan derived from
    ``clean_makespan``."""
    return RunSpec(
        kind="single",
        params={
            "workload": _workload(settings),
            "machine": "jetson_tx2",
            "scheduler": scheduler,
            "scenario": {"name": "faults", **fault_plan_params(clean_makespan)},
        },
        seed=settings.seed,
        metrics=(
            "makespan",
            "tasks_completed",
            "workers_lost",
            "tasks_retried",
            "tasks_recovered",
            "recovery_latency",
        ),
        tags={"scheduler": scheduler, "phase": "faulted"},
    )


def run_faults(
    settings: ExperimentSettings = ExperimentSettings(),
    schedulers: Sequence[str] = TX2_SCHEDULERS,
) -> FigFaultsResult:
    """Regenerate the fig_faults robustness comparison."""
    result = FigFaultsResult(schedulers=tuple(schedulers))
    base_specs = [baseline_spec(settings, sched) for sched in schedulers]
    for spec, metrics in zip(
        base_specs, sweep(base_specs, settings, "fig_faults-baseline")
    ):
        sched = spec.tags["scheduler"]
        if is_error_result(metrics):
            result.failed[sched] = metrics["error"]["message"]
        else:
            result.baseline[sched] = metrics["makespan"]

    fault_specs = [
        faulted_spec(settings, sched, result.baseline[sched])
        for sched in schedulers
        if sched in result.baseline
    ]
    for spec, metrics in zip(
        fault_specs, sweep(fault_specs, settings, "fig_faults")
    ):
        sched = spec.tags["scheduler"]
        if is_error_result(metrics):
            result.failed[sched] = metrics["error"]["message"]
        else:
            result.faulted[sched] = metrics
    return result


# ----------------------------------------------------------------------
# CI chaos smoke
# ----------------------------------------------------------------------


@dataclass
class ChaosResult:
    """Outcome of the chaos smoke: one fault-injected run, verified."""

    scheduler: str
    total_tasks: int
    makespan: float
    fault_stats: Dict[str, float] = field(default_factory=dict)

    def report(self) -> str:
        stats = self.fault_stats
        return (
            f"chaos smoke [{self.scheduler}]: {self.total_tasks} tasks "
            f"completed exactly once under a transient crash "
            f"(makespan {self.makespan:.4f}s; "
            f"{int(stats.get('workers_lost', 0))} worker lost, "
            f"{int(stats.get('workers_recovered', 0))} recovered, "
            f"{int(stats.get('tasks_recovered', 0))} tasks re-dispatched, "
            f"detection latency "
            f"{stats.get('recovery_latency_mean', 0.0):.5f}s)"
        )


def run_chaos(
    settings: ExperimentSettings = ExperimentSettings(),
    scheduler: str = "dam-c",
) -> ChaosResult:
    """One tiny fault-injected run, with hard assertions.

    Used by CI as a chaos smoke: a transient crash of core
    :data:`CRASH_CORE` lands at 30% of the clean makespan and heals at
    80%.  The run must still complete every task, must have detected the
    lost worker, and must have recovered at least one task — otherwise a
    :class:`~repro.errors.RuntimeStateError` fails the build.
    """
    (base,) = sweep(
        [baseline_spec(settings, scheduler)], settings, "chaos-baseline"
    )
    if is_error_result(base):
        raise RuntimeStateError(
            f"chaos baseline failed: {base['error']['message']}"
        )
    clean = base["makespan"]
    crash_at = round(CRASH_FRACTION * clean, 6)
    heal_after = round(0.5 * clean, 6)
    spec = RunSpec(
        kind="single",
        params={
            "workload": _workload(settings),
            "machine": "jetson_tx2",
            "scheduler": scheduler,
            "scenario": {
                "name": "faults",
                "crashes": [[CRASH_CORE, crash_at, heal_after]],
            },
        },
        seed=settings.seed,
        metrics=("makespan", "tasks_completed", "fault_stats"),
        tags={"scheduler": scheduler, "phase": "chaos"},
    )
    (metrics,) = sweep([spec], settings, "chaos")
    if is_error_result(metrics):
        raise RuntimeStateError(
            f"chaos run failed: {metrics['error']['message']}"
        )
    total = spec.params["workload"]["total"]
    stats = metrics["fault_stats"]
    if metrics["tasks_completed"] != total:
        raise RuntimeStateError(
            f"chaos run lost tasks: {metrics['tasks_completed']}/{total} "
            "completed — exactly-once recovery is broken"
        )
    if stats.get("workers_lost", 0) < 1:
        raise RuntimeStateError(
            "chaos run never detected the injected crash "
            f"(fault_stats={stats})"
        )
    if stats.get("tasks_recovered", 0) < 1:
        raise RuntimeStateError(
            "chaos run recovered no tasks — the crash landed on an idle "
            f"core; retune CRASH_FRACTION (fault_stats={stats})"
        )
    return ChaosResult(
        scheduler=scheduler,
        total_tasks=total,
        makespan=metrics["makespan"],
        fault_stats=stats,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_faults().report())
