"""Fig. 5 — distribution of priority tasks over execution places (§5.1).

Matmul synthetic DAG, DAG parallelism 2, co-runner on Denver core 0: for
each scheduler, the fraction of high-priority tasks executed at each
execution place — the pie charts of Fig. 5 as a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.apps.synthetic import PAPER_TASK_COUNTS
from repro.experiments.common import ExperimentSettings, TX2_SCHEDULERS, sweep
from repro.machine.topology import ExecutionPlace
from repro.sweep import RunSpec, data_to_place
from repro.util.tables import format_table


@dataclass
class Fig5Result:
    """distribution[scheduler][place] -> fraction of priority tasks."""

    distribution: Dict[str, Dict[ExecutionPlace, float]] = field(default_factory=dict)

    def interfered_core_share(self, scheduler: str, core: int = 0) -> float:
        """Fraction of priority tasks whose place includes ``core``."""
        total = 0.0
        for place, fraction in self.distribution[scheduler].items():
            if place.leader <= core < place.leader + place.width:
                total += fraction
        return total

    def report(self) -> str:
        rows: List[list] = []
        for sched, dist in self.distribution.items():
            top = sorted(dist.items(), key=lambda kv: -kv[1])[:4]
            rows.append(
                [
                    sched.upper(),
                    "  ".join(f"{p}:{v:.1%}" for p, v in top),
                    f"{self.interfered_core_share(sched):.1%}",
                ]
            )
        return format_table(
            ["Scheduler", "Top execution places (share of priority tasks)",
             "On interfered core 0"],
            rows,
            title="Fig 5: priority-task distribution, matmul P=2, "
            "co-runner on Denver core 0",
        )


def run_fig5(
    settings: ExperimentSettings = ExperimentSettings(),
    schedulers: Sequence[str] = TX2_SCHEDULERS,
    parallelism: int = 2,
) -> Fig5Result:
    """Regenerate Fig. 5(a-g)."""
    result = Fig5Result()
    total = settings.task_count(PAPER_TASK_COUNTS["matmul"], parallelism)
    specs = [
        RunSpec(
            kind="single",
            params={
                "workload": {
                    "name": "layered",
                    "kernel": "matmul",
                    "parallelism": parallelism,
                    "total": total,
                },
                "machine": "jetson_tx2",
                "scheduler": sched,
                "scenario": {"name": "tx2_corunner", "kernel": "matmul"},
            },
            seed=settings.seed,
            metrics=("priority_place_distribution",),
            tags={"scheduler": sched},
        )
        for sched in schedulers
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "fig5")):
        result.distribution[spec.tags["scheduler"]] = {
            data_to_place(place): fraction
            for place, fraction in metrics["priority_place_distribution"]
        }
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig5().report())
