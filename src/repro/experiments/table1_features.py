"""Table 1 — feature summary of all evaluated schedulers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.policies.registry import scheduler_feature_rows
from repro.util.tables import format_table

HEADERS = (
    "Name",
    "[A]symmetry awareness",
    "[M]oldability",
    "Priority placement",
)


@dataclass(frozen=True)
class Table1Result:
    rows: Tuple[tuple, ...]

    def report(self) -> str:
        return format_table(
            HEADERS, self.rows, title="Table 1: scheduler feature summary"
        )


def run_table1() -> Table1Result:
    """Regenerate the Table 1 feature matrix from the policy classes."""
    return Table1Result(rows=tuple(scheduler_feature_rows()))


if __name__ == "__main__":  # pragma: no cover
    print(run_table1().report())
