"""Fig. 6 — cumulative per-core kernel work time (§5.1).

Same run as Fig. 5: for each scheduler, the seconds each core spent inside
kernels (excluding runtime activity and idleness), plus the total.
FA should show the largest time on interfered core 0 ("the highest
execution time on core 0"); dynamic schedulers shift work to core 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.apps.synthetic import PAPER_TASK_COUNTS
from repro.experiments.common import ExperimentSettings, TX2_SCHEDULERS, sweep
from repro.sweep import RunSpec
from repro.util.tables import format_table


@dataclass
class Fig6Result:
    """work_time[scheduler][core] -> seconds; makespan[scheduler]."""

    work_time: Dict[str, Dict[int, float]] = field(default_factory=dict)
    makespan: Dict[str, float] = field(default_factory=dict)

    def total(self, scheduler: str) -> float:
        return sum(self.work_time[scheduler].values())

    def report(self) -> str:
        cores = sorted(next(iter(self.work_time.values())).keys())
        rows: List[list] = []
        for sched, by_core in self.work_time.items():
            rows.append(
                [sched.upper()]
                + [by_core[c] for c in cores]
                + [self.total(sched), self.makespan[sched]]
            )
        return format_table(
            ["Scheduler"] + [f"Core {c}" for c in cores] + ["Total", "Makespan"],
            rows,
            title="Fig 6: per-core kernel work time [s], matmul P=2, "
            "co-runner on Denver core 0",
        )


def run_fig6(
    settings: ExperimentSettings = ExperimentSettings(),
    schedulers: Sequence[str] = TX2_SCHEDULERS,
    parallelism: int = 2,
) -> Fig6Result:
    """Regenerate Fig. 6."""
    result = Fig6Result()
    total = settings.task_count(PAPER_TASK_COUNTS["matmul"], parallelism)
    specs = [
        RunSpec(
            kind="single",
            params={
                "workload": {
                    "name": "layered",
                    "kernel": "matmul",
                    "parallelism": parallelism,
                    "total": total,
                },
                "machine": "jetson_tx2",
                "scheduler": sched,
                "scenario": {"name": "tx2_corunner", "kernel": "matmul"},
            },
            seed=settings.seed,
            metrics=("core_busy", "makespan"),
            tags={"scheduler": sched},
        )
        for sched in schedulers
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "fig6")):
        sched = spec.tags["scheduler"]
        result.work_time[sched] = {
            int(core): busy for core, busy in metrics["core_busy"].items()
        }
        result.makespan[sched] = metrics["makespan"]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig6().report())
