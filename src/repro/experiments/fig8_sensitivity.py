"""Fig. 8 — PTT weight-ratio x matmul tile-size sensitivity (§5.3).

Sweeps the PTT folding weight (1/5 .. 5/5, where k/5 means the new sample
gets weight k out of 5) against matmul tile sizes 32/64/80/96 under the
co-runner scenario, running DAM-C.  Execution-time observations carry a
clock-granularity noise term, which is what makes heavy new-sample weights
hurt for very short tasks (tile 32) while larger tiles stay insensitive —
the paper's stated reason for adopting the 1:4 rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import ExperimentSettings, sweep
from repro.sweep import RunSpec
from repro.util.tables import format_table

#: Paper sweep values.
TILE_SIZES: Tuple[int, ...] = (32, 64, 80, 96)
NEW_WEIGHTS: Tuple[int, ...] = (1, 2, 3, 4, 5)


@dataclass
class Fig8Result:
    """throughput[tile][new_weight] for DAM-C (weights are k of 5)."""

    throughput: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def spread(self, tile: int) -> float:
        """(best - worst) / best across weight ratios at a tile size."""
        values = list(self.throughput[tile].values())
        return (max(values) - min(values)) / max(values)

    def best_weight(self, tile: int) -> int:
        by_weight = self.throughput[tile]
        return max(by_weight, key=lambda w: by_weight[w])

    def report(self) -> str:
        weights = sorted(next(iter(self.throughput.values())))
        rows: List[list] = []
        for tile, by_weight in self.throughput.items():
            rows.append(
                [tile]
                + [by_weight[w] for w in weights]
                + [f"{self.spread(tile):.1%}", f"{self.best_weight(tile)}/5"]
            )
        return format_table(
            ["Tile"] + [f"{w}/5" for w in weights] + ["Spread", "Best"],
            rows,
            title="Fig 8: DAM-C throughput [tasks/s] vs PTT weight ratio "
            "and matmul tile size (co-runner on core 0)",
        )


def run_fig8(
    settings: ExperimentSettings = ExperimentSettings(),
    tiles: Sequence[int] = TILE_SIZES,
    new_weights: Sequence[int] = NEW_WEIGHTS,
    parallelism: int = 4,
    measurement_noise: float = 1.5e-4,
) -> Fig8Result:
    """Regenerate Fig. 8."""
    result = Fig8Result(throughput={t: {} for t in tiles})
    total = settings.task_count(32000, parallelism)
    specs = [
        RunSpec(
            kind="single",
            params={
                "workload": {
                    "name": "layered",
                    "kernel": "matmul",
                    "parallelism": parallelism,
                    "total": total,
                    "tile": tile,
                },
                "machine": "jetson_tx2",
                "scheduler": "dam-c",
                "scheduler_kwargs": {
                    "ptt_new_weight": weight,
                    "ptt_total_weight": 5,
                },
                "scenario": {"name": "tx2_corunner", "kernel": "matmul"},
                "config": {"measurement_noise": measurement_noise},
            },
            seed=settings.seed,
            metrics=("throughput",),
            tags={"tile": tile, "weight": weight},
        )
        for tile in tiles
        for weight in new_weights
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "fig8")):
        result.throughput[spec.tags["tile"]][spec.tags["weight"]] = metrics[
            "throughput"
        ]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig8().report())
