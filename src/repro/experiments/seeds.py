"""Seed-robustness check: is the scheduler ranking stable across seeds?

The paper reports single runs; a reproduction should show its conclusions
do not hinge on one random-stealing trajectory.  This harness re-runs the
Fig. 4 matmul row (parallelism 2, the most contended configuration) under
several seeds and reports the per-seed ranking plus the worst-case
DAM-C/RWS ratio.

    python -m repro.experiments seeds [--scale 0.02]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from dataclasses import replace

from repro.experiments.common import ExperimentSettings, speedup, sweep
from repro.experiments.fig4_corunner import fig4_spec
from repro.util.tables import format_table

DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2, 3, 4)
SCHEDULERS: Tuple[str, ...] = ("rws", "fa", "dam-c")


@dataclass
class SeedSweepResult:
    """throughput[seed][scheduler] for the fixed configuration."""

    throughput: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def ranking(self, seed: int) -> Tuple[str, ...]:
        by_seed = self.throughput[seed]
        return tuple(sorted(by_seed, key=by_seed.get))

    def ranking_stable(self) -> bool:
        rankings = {self.ranking(seed) for seed in self.throughput}
        return len(rankings) == 1

    def worst_ratio(self, top: str = "dam-c", base: str = "rws") -> float:
        return min(
            speedup(by_seed[top], by_seed[base])
            for by_seed in self.throughput.values()
        )

    def report(self) -> str:
        rows: List[list] = []
        for seed, by_seed in self.throughput.items():
            rows.append(
                [seed]
                + [by_seed[s] for s in SCHEDULERS]
                + [" < ".join(r.upper() for r in self.ranking(seed))]
            )
        table = format_table(
            ["Seed"] + [s.upper() for s in SCHEDULERS] + ["Ranking"],
            rows,
            title="Seed robustness: matmul P=2 under co-runner on core 0",
        )
        return (
            table
            + f"\nRanking stable across seeds: {self.ranking_stable()}"
            + f"\nWorst-case dam-c/rws: {self.worst_ratio():.2f}x"
        )


def run_seeds(
    settings: ExperimentSettings = ExperimentSettings(),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallelism: int = 2,
) -> SeedSweepResult:
    """Run the seed sweep."""
    result = SeedSweepResult(throughput={seed: {} for seed in seeds})
    specs = [
        fig4_spec(
            replace(settings, seed=seed), "matmul", parallelism, sched
        )
        for seed in seeds
        for sched in SCHEDULERS
    ]
    for spec, metrics in zip(specs, sweep(specs, settings, "seeds")):
        result.throughput[spec.seed][spec.tags["scheduler"]] = metrics[
            "throughput"
        ]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_seeds().report())
