"""Setup shim: this offline environment lacks the `wheel` package, so PEP 660
editable installs are unavailable; this enables pip's legacy `develop` path."""
from setuptools import setup

setup()
